//! Offline vendored mini `serde_json`.
//!
//! Renders the mini-serde [`Value`] tree to JSON text and parses it back.
//! Finite floats round-trip exactly: Rust's `Display` for `f64` emits the
//! shortest decimal string that reparses to the same bits, and the parser
//! feeds number literals straight to `str::parse::<f64>`.

pub use serde::Value;

use serde::{DeError, Serialize};
use std::fmt;

/// Error type covering both serialization and parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Convert `value` to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            out.push_str(&f.to_string());
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "-5", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(json, back);
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 53.1, 9.39, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f, back, "via {s}");
        }
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["c"], "x");
    }

    #[test]
    fn rejects_non_finite() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
