//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Implemented with hand-rolled parsing over `proc_macro::TokenStream`
//! (neither `syn` nor `quote` is available offline). Supports the shapes
//! this workspace actually derives:
//!
//! * structs with named fields (no generics),
//! * enums with unit, tuple, and struct variants (no generics),
//!
//! and encodes them the way serde's default externally-tagged JSON
//! representation does, so snapshots stay interchangeable with real serde:
//! unit variant → `"Name"`, newtype variant → `{"Name": payload}`,
//! tuple variant → `{"Name": [..]}`, struct variant → `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant_name, variant_kind)` pairs.
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    /// Tuple variant with this arity.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_serialize(&p).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_deserialize(&p).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "mini-serde derive does not support generic type `{name}`"
            ));
        }
    }

    // The body is the last brace group (skips any `where` clause tokens).
    let body = tokens
        .iter()
        .skip(i)
        .filter_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.clone()),
            _ => None,
        })
        .last();
    let body = match body {
        Some(g) => g,
        None => {
            return Err(format!(
                "mini-serde derive supports only brace-bodied structs/enums; `{name}` has none"
            ))
        }
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body.stream())?),
        "enum" => Shape::Enum(parse_variants(body.stream())?),
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Parsed { name, shape })
}

/// Parse `field: Type, ...` inside a struct (or struct-variant) body,
/// returning the field names. Commas inside generic argument lists are
/// skipped by tracking `<`/`>` depth (`->` is recognized and ignored).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' && !prev_dash {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        i += 1;
                        break;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        variants.push((name, kind));
    }
    Ok(variants)
}

/// Count elements of a tuple-variant payload (top-level commas + 1),
/// ignoring commas nested in generic argument lists.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    let mut saw_any = false;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    for (idx, t) in tokens.iter().enumerate() {
        saw_any = true;
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' && !prev_dash {
                angle_depth -= 1;
            } else if c == ',' && angle_depth == 0 && idx + 1 < tokens.len() {
                arity += 1;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    if saw_any {
        arity
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "::serde::Value::object_from_pairs(vec![{}])",
                pairs.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::object_from_pairs(vec![({v:?}, ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::object_from_pairs(vec![({v:?}, ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({f:?}, ::serde::Serialize::to_value({f}))"))
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::object_from_pairs(vec![({v:?}, ::serde::Value::object_from_pairs(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__from_field(__v, {f:?})?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("{v:?} => return ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "{v:?} => return ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!(
                                "::serde::Deserialize::from_value(&__items[{k}])?"
                            ))
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __payload))?;\n\
                                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{v}({}));\n\
                             }}",
                            elems.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__from_field(__payload, {f:?})?"))
                            .collect();
                        Some(format!(
                            "{v:?} => return ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::std::option::Option::Some((__tag, __payload)) = __v.as_variant() {{\n\
                     match __tag {{ {tagged_arms} _ => {{}} }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown {name} variant: {{:?}}\", __v)))",
                unit_arms = unit_arms.join(" "),
                tagged_arms = tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
