//! Offline vendored mini-serde.
//!
//! The real `serde` crate cannot be fetched in this build environment, so
//! this crate provides an API-compatible subset built around a concrete
//! JSON-like [`Value`] tree instead of serde's visitor architecture:
//!
//! * [`Serialize`] / [`Deserialize`] traits (plus `de::DeserializeOwned`),
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate (structs with named fields; enums with unit, tuple
//!   and struct variants, encoded the same way serde's default "externally
//!   tagged" representation encodes them),
//! * impls for the primitive / std types the workspace uses.
//!
//! The sibling `serde_json` vendored crate renders [`Value`] to JSON text
//! and parses it back. Round-tripping is exact for finite floats because
//! Rust's `Display` for `f64` prints the shortest string that reparses to
//! the same bits.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{DeError, Value};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde (`for<'de> Deserialize<'de>` bounds in downstream code); this mini
/// implementation always copies out of the tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization helper traits, mirroring `serde::de`.
pub mod de {
    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

/// Fetch a struct field from an object `Value`, treating a missing key as
/// `Null` (so `Option` fields default to `None`). Used by derived code.
#[doc(hidden)]
pub fn __from_field<T: for<'de> Deserialize<'de>>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
        }
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}
impl<'de> Deserialize<'de> for &'static str {
    // Real serde compiles derives over borrowed str fields and fails only
    // when such a field is actually deserialized from owned data; this impl
    // reproduces that effective behavior for `&'static str` fields.
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Err(DeError::new(
            "cannot deserialize into a borrowed &'static str; use String",
        ))
    }
}
impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}
impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
impl<'de, T: for<'d> Deserialize<'d>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {got}")))
    }
}
impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}
impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::from_value(v)?.into())
    }
}

macro_rules! de_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:literal))*) => {$(
        impl<'de, $($name: for<'d> Deserialize<'d>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}
