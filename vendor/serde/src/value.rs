//! The JSON-like value tree at the center of the vendored mini-serde.

use std::fmt;

/// A JSON-like tree. Objects preserve insertion order (derived structs
/// serialize fields in declaration order, like real serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or any signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build an object from `(key, value)` pairs (derived-code helper).
    pub fn object_from_pairs<K: Into<String>>(pairs: Vec<(K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// For a single-key object `{variant: payload}` (serde's externally
    /// tagged enum encoding), return `(variant, payload)`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable without loss.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) => u64::try_from(i).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable without loss.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) => i64::try_from(u).ok(),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow the array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! eq_unsigned {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}
eq_unsigned!(u8, u16, u32, u64, usize);

macro_rules! eq_signed {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}
eq_signed!(i8, i16, i32, i64, isize);

/// Deserialization error for the vendored mini-serde.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Create an error with a pre-formatted message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
