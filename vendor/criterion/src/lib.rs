//! Offline vendored criterion shim.
//!
//! Keeps `criterion_group!`/`criterion_main!` bench targets compiling and
//! runnable without the real criterion crate. Each benchmark closure is
//! executed for a few timed iterations and the mean wall-clock time is
//! printed — useful as a smoke test and a rough number, with none of
//! criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Run `f` for a few timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then the timed iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_mean = Some(start.elapsed() / self.iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(self.iters, &id.to_string(), f);
        self
    }
}

/// A group of related benchmarks (`sample_size`, `measurement_time`, and
/// `throughput` are accepted for API compatibility; the shim's iteration
/// count is fixed).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(self.criterion.iters, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            self.criterion.iters,
            &format!("{}/{}", self.name, id),
            |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(iters: u32, label: &str, mut f: F) {
    let mut b = Bencher {
        iters,
        last_mean: None,
    };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("bench {label}: ~{mean:?}/iter (vendored shim, {iters} iters)"),
        None => println!("bench {label}: no timing recorded"),
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion = $crate::Criterion::default();
            $( $target(&mut __criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
