//! The single construction point for every synchronization primitive the
//! pool uses (lint rule R7 enforces this).
//!
//! By default these are re-exports of the real `std` types — zero-cost.
//! Compiled with `RUSTFLAGS="--cfg loomlite"` (via
//! `cargo xtask check-concurrency`), they alias to the `loomlite` model
//! checker's shims instead, so the *same* pool source in `lib.rs` runs
//! under the controlled scheduler that `vendor/rayon/src/models.rs`
//! explores. Pool code must never name `std::sync` / `std::thread`
//! directly — only through this module — or a real-run/model-run
//! behaviour split could hide exactly the bugs the checker exists to
//! find.

#[cfg(not(loomlite))]
pub use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loomlite))]
pub use std::sync::{Mutex, MutexGuard, OnceLock};
#[cfg(not(loomlite))]
pub use std::thread;

#[cfg(loomlite)]
pub use loomlite::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loomlite)]
pub use loomlite::sync::{Mutex, MutexGuard, OnceLock};
#[cfg(loomlite)]
pub use loomlite::thread;
