//! Driver for the pool's concurrency model check.
//!
//! Invoked by `cargo xtask check-concurrency`, which compiles this crate
//! with `RUSTFLAGS="--cfg loomlite"` so the pool's synchronization shims
//! route through the `loomlite` controlled scheduler. Runs every model in
//! `rayon::models`, prints a per-model schedule report, and fails unless
//! (a) no model found a failing interleaving and (b) the total number of
//! distinct schedules explored meets `--min-total` (default 10000).

#[cfg(not(loomlite))]
fn main() {
    eprintln!(
        "loomlite_check was compiled without --cfg loomlite; \
         run it via `cargo xtask check-concurrency`."
    );
    std::process::exit(2);
}

#[cfg(loomlite)]
fn main() {
    model_mode::run();
}

#[cfg(loomlite)]
mod model_mode {
    use loomlite::{Config, Report};
    use rayon::models;

    struct Args {
        min_total: usize,
        dfs: usize,
        random: usize,
    }

    fn parse_args() -> Args {
        let mut args = Args {
            min_total: 10_000,
            dfs: 4_000,
            random: 3_000,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    // lint: allow(R1): CLI misuse should abort with context.
                    .unwrap_or_else(|| panic!("{name} requires an integer argument"))
            };
            match flag.as_str() {
                "--min-total" => args.min_total = take("--min-total"),
                "--dfs" => args.dfs = take("--dfs"),
                "--random" => args.random = take("--random"),
                other => {
                    eprintln!("unknown flag {other}; expected --min-total/--dfs/--random N");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    fn report_line(name: &str, r: &Report) -> String {
        format!(
            "model {name}: distinct={} dfs={} random_runs={} exhausted={} — {}",
            r.distinct_schedules,
            r.dfs_schedules,
            r.random_runs,
            r.exhausted,
            if r.passed() { "ok" } else { "FAILED" }
        )
    }

    pub fn run() {
        let args = parse_args();
        let cfg = Config {
            max_schedules: args.dfs,
            random_schedules: args.random,
            ..Config::default()
        };
        let models: [(&str, fn(&Config) -> Report); 8] = [
            ("pool_push_steal_merge", models::pool_push_steal_merge),
            (
                "pool_push_steal_merge_wide",
                models::pool_push_steal_merge_wide,
            ),
            ("nested_par_iter", models::nested_par_iter),
            ("nested_par_iter_wide", models::nested_par_iter_wide),
            ("channel_gather_fanout", models::channel_gather_fanout),
            (
                "channel_gather_writeback_order",
                models::channel_gather_writeback_order,
            ),
            ("set_num_threads_race", models::set_num_threads_race),
            ("env_override_precedence", models::env_override_precedence),
        ];

        let mut total = 0usize;
        let mut failed = false;
        for (name, model) in models {
            let report = model(&cfg);
            println!("{}", report_line(name, &report));
            total += report.distinct_schedules;
            if let Some(failure) = report.failure {
                failed = true;
                eprintln!("  failure: {}", failure.message);
                eprintln!("  failing schedule (replayable): {:?}", failure.schedule);
            }
        }

        println!(
            "total distinct schedules: {total} (minimum required {})",
            args.min_total
        );
        if failed {
            eprintln!("concurrency check: FAIL (failing interleaving found)");
            std::process::exit(1);
        }
        if total < args.min_total {
            eprintln!(
                "concurrency check: FAIL (only {total} distinct schedules, need {})",
                args.min_total
            );
            std::process::exit(1);
        }
        println!("concurrency check: PASS");
    }
}
