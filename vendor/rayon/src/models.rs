//! Concurrency models explored by `cargo xtask check-concurrency`.
//!
//! Only compiled under `--cfg loomlite`, where [`crate::shim`] aliases
//! every pool synchronization primitive to the `loomlite` controlled
//! scheduler. Each model runs the *real* pool code (`pool::map_in_order`,
//! `pool::set_num_threads`, `pool::current_num_threads`) under permuted
//! thread interleavings and asserts the invariants the paper pipeline
//! depends on: index-ordered merges, no lost or duplicated work items,
//! and coherent thread-count precedence.
//!
//! The schedule spaces here are far larger than DFS alone can exhaust;
//! the driver (`loomlite_check`) bounds the DFS phase and tops up with
//! seeded randomized schedules, then enforces a minimum total of
//! distinct interleavings across all models.

use loomlite::{explore, Config, Report};

use crate::pool;

/// The deque push/steal + merge protocol: two workers (one spawned, the
/// caller inline) drain a chunked queue of three items and write results
/// into index slots. Every interleaving must produce the exact serial
/// output — any lost, duplicated, or reordered item changes the vector.
pub fn pool_push_steal_merge(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(2);
        let out = pool::map_in_order(vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(
            out,
            vec![10, 20, 30],
            "merge lost, duplicated, or reordered a work item"
        );
    })
}

/// Nested `par_iter`: an inner `map_in_order` issued from inside a worker
/// must run inline (the `IN_POOL` protocol) and still merge in order, and
/// the outer merge must remain index-exact.
pub fn nested_par_iter(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(2);
        let grid = vec![vec![1u32, 2], vec![3, 4]];
        let out = pool::map_in_order(grid, |row| pool::map_in_order(row, |v| v + 1));
        assert_eq!(
            out,
            vec![vec![2, 3], vec![4, 5]],
            "nested merge lost, duplicated, or reordered a work item"
        );
    })
}

/// Wider push/steal instance: three workers (two spawned, the caller
/// inline) over six chunks. The schedule space here is far too large to
/// exhaust — this model exists to soak the bounded-DFS + randomized
/// phases in distinct interleavings of real contention.
pub fn pool_push_steal_merge_wide(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(3);
        let out = pool::map_in_order((1u64..=6).collect(), |x| x * 10);
        assert_eq!(
            out,
            vec![10, 20, 30, 40, 50, 60],
            "merge lost, duplicated, or reordered a work item"
        );
    })
}

/// Wider nested instance: three outer workers, each issuing an inline
/// nested map. Soaks the `IN_POOL` inline-serialization protocol under a
/// large interleaving space.
pub fn nested_par_iter_wide(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(3);
        let grid = vec![vec![1u32, 2], vec![3, 4], vec![5, 6]];
        let out = pool::map_in_order(grid, |row| pool::map_in_order(row, |v| v + 1));
        assert_eq!(
            out,
            vec![vec![2, 3], vec![4, 5], vec![6, 7]],
            "nested merge lost, duplicated, or reordered a work item"
        );
    })
}

/// The memory controller's per-app gather fan-out (`parallel_channels`):
/// workers probe *shared immutable* committed state through *local
/// copies* of each slot's cache — never the slot itself — and return
/// `(app, refreshed)` tuples. Every interleaving must produce exactly the
/// sequential gather's answers: shared-read + local-write is the whole
/// reason the parallel path can claim bit-identity.
pub fn channel_gather_fanout(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(2);
        // Committed timing state, read-only during the gather.
        let committed: Vec<u64> = vec![3, 1, 4];
        // Per-app probe caches, copied into each worker.
        let caches: Vec<u64> = vec![10, 20, 30];
        let seq: Vec<(usize, u64)> = caches
            .iter()
            .enumerate()
            .map(|(app, &c)| (app, c + committed[app]))
            .collect();
        let shared = &committed;
        let work: Vec<(usize, u64)> = caches.iter().copied().enumerate().collect();
        let out = pool::map_in_order(work, |(app, cache)| {
            let mut local = cache; // local copy, never the shared slot
            local += shared[app];
            (app, local)
        });
        assert_eq!(
            out, seq,
            "parallel gather must be bit-identical to the sequential scan"
        );
    })
}

/// The gather's write-back half: refreshed caches come back from the pool
/// and are committed *sequentially in input order* by the caller. Three
/// workers over four apps soak the steal order; the final cache vector
/// must be the one a sequential pass produces regardless of which worker
/// computed which slot.
pub fn channel_gather_writeback_order(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(3);
        let mut caches = vec![0u64; 4];
        let refreshed =
            pool::map_in_order((0..4usize).collect(), |app| (app, (app as u64 + 1) * 7));
        for (app, c) in refreshed {
            caches[app] = c;
        }
        assert_eq!(
            caches,
            vec![7, 14, 21, 28],
            "write-back must land refreshed caches in input order"
        );
    })
}

/// Concurrent `set_num_threads` calls racing each other: the override
/// must end up holding one of the written values (no torn or stale
/// zero-from-nowhere state), and a parallel map issued afterwards must
/// still merge correctly whichever write won.
pub fn set_num_threads_race(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(2);
        loomlite::thread::scope(|s| {
            s.spawn(|| pool::set_num_threads(4));
            pool::set_num_threads(1);
        });
        let n = pool::current_num_threads();
        assert!(
            n == 1 || n == 4,
            "override must hold one racing write, got {n}"
        );
        let out = pool::map_in_order(vec![7u64, 8], |x| x + 1);
        assert_eq!(out, vec![8, 9], "pool broken after thread-count race");
    })
}

/// The pinned precedence protocol: a reader racing a `set_num_threads`
/// call must observe either the pre-existing automatic value or the new
/// override — never anything else — and once the writer is joined the
/// override must win unconditionally (even though the environment value
/// is already cached in `ENV_THREADS`).
pub fn env_override_precedence(cfg: &Config) -> Report {
    explore(cfg, || {
        pool::set_num_threads(0);
        let auto = pool::current_num_threads();
        loomlite::thread::scope(|s| {
            s.spawn(|| pool::set_num_threads(3));
            let n = pool::current_num_threads();
            assert!(
                n == auto || n == 3,
                "racing reader saw {n}, expected {auto} or 3"
            );
        });
        assert_eq!(
            pool::current_num_threads(),
            3,
            "set_num_threads after env caching must win"
        );
        pool::set_num_threads(0);
    })
}
