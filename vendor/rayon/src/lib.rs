//! Offline vendored rayon shim.
//!
//! The real rayon cannot be fetched in this build environment. This shim
//! keeps the `par_iter()` / `into_par_iter()` call sites compiling by
//! returning ordinary sequential iterators — every adapter and `collect`
//! then comes from `std::iter::Iterator`. Correctness is identical;
//! parallel speedup is forfeited until the real dependency is restorable.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// `.par_iter()` on slices and vectors (sequential fallback).
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'data;

        /// Iterate by reference ("in parallel").
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` on owned collections and ranges (sequential
    /// fallback).
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;

        /// Iterate by value ("in parallel").
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}
