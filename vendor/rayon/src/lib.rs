//! Offline vendored rayon stand-in backed by a real thread pool.
//!
//! The real rayon cannot be fetched in this build environment, so this
//! crate implements the small `par_iter()` / `into_par_iter()` surface the
//! workspace uses on top of a dependency-free `std::thread` scoped pool:
//!
//! * **Chunked self-scheduling** — the input is split into chunks sized for
//!   `4 × threads` slots; workers pop chunks from a shared deque, so a slow
//!   item (one scheme simulating longer than the others) does not leave the
//!   remaining workers idle.
//! * **Deterministic merge** — every result is written to its input's index
//!   slot and the merged output is read back in index order, so parallel
//!   output is bit-identical to a sequential `iter().map().collect()`.
//! * **Thread-count control** — `RAYON_NUM_THREADS` caps the pool just
//!   like real rayon; [`pool::set_num_threads`] overrides it in-process
//!   (benchmarks compare a forced 1-thread baseline against the pool).
//! * **Nested calls serialize** — a `par_iter` issued from inside a worker
//!   runs inline on that worker, so nested sweeps (`run_grid` →
//!   `run_schemes`) cannot oversubscribe the machine or deadlock.
//!
//! Panics from the mapped closure propagate to the caller when the scope
//! joins, matching rayon's behaviour.
//!
//! # Concurrency verification
//!
//! Every synchronization primitive is constructed through [`shim`], which
//! compiles to plain `std` types normally and to the `loomlite` model
//! checker's controlled-scheduler types under `--cfg loomlite`. The
//! models in [`models`] replay the pool's deque push/steal, thread-count
//! override, and nested-`par_iter` protocols under permuted thread
//! interleavings (`cargo xtask check-concurrency`), asserting
//! index-ordered merge integrity and that no work item is ever lost,
//! duplicated, or reordered. See `DESIGN.md` §10 and `UNSAFE_AUDIT.md`.

pub mod shim;

#[cfg(loomlite)]
pub mod models;

pub mod pool {
    //! The scoped worker pool executing every parallel iterator.

    use std::collections::VecDeque;

    use crate::shim::{thread, AtomicUsize, Mutex, MutexGuard, OnceLock, Ordering};

    /// In-process override: 0 = defer to the environment/hardware.
    static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

    /// Parsed `RAYON_NUM_THREADS` (read once; 0 = unset/invalid).
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();

    /// Cached hardware parallelism. `available_parallelism()` is a
    /// syscall on Linux; callers on hot paths (the memory controller's
    /// per-tick gather) query the pool width every tick, so the answer
    /// must not cost a kernel round-trip.
    static HW_THREADS: OnceLock<usize> = OnceLock::new();

    thread_local! {
        /// Set while this thread is executing pool work; nested parallel
        /// iterators observe it and run inline.
        static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Clears [`IN_POOL`] when a worker exits its run loop — including by
    /// unwinding. Without the drop guard, a panicking mapped closure
    /// would leave the caller thread's flag set forever, silently
    /// serializing every later `par_iter` on that thread (found by audit,
    /// pinned by `panic_does_not_leak_worker_context`).
    struct WorkerFlagReset;

    impl Drop for WorkerFlagReset {
        fn drop(&mut self) {
            IN_POOL.with(|flag| flag.set(false));
        }
    }

    /// Force the pool width for subsequent parallel iterators (process
    /// wide). `1` serializes, `0` restores the automatic choice
    /// (`RAYON_NUM_THREADS`, else the hardware parallelism).
    ///
    /// # Precedence (pinned by `override_beats_cached_env`)
    ///
    /// A non-zero override **always** wins over `RAYON_NUM_THREADS`, even
    /// when the environment value was already read and cached: the cache
    /// only backs the `0`/unset fallback path. Calling
    /// `set_num_threads(0)` re-exposes the cached environment value (the
    /// environment is intentionally *not* re-read mid-process).
    pub fn set_num_threads(n: usize) {
        OVERRIDE.store(n, Ordering::SeqCst);
    }

    /// The number of threads the next parallel iterator will use.
    pub fn current_num_threads() -> usize {
        let forced = OVERRIDE.load(Ordering::SeqCst);
        if forced != 0 {
            return forced;
        }
        let env = *ENV_THREADS.get_or_init(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(0)
        });
        if env != 0 {
            return env;
        }
        *HW_THREADS.get_or_init(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Whether the calling thread is currently inside a pool worker (so a
    /// nested `par_iter` would run inline). Exposed for the panic-leak
    /// regression tests; not part of the real rayon API.
    pub fn in_worker_context() -> bool {
        IN_POOL.with(std::cell::Cell::get)
    }

    /// Ignore lock poisoning: a panicked worker already aborts the whole
    /// scope, so the data behind the lock is never observed afterwards.
    fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Map `items` through `f` on the pool, returning results in input
    /// order (bit-identical to the sequential map).
    pub fn map_in_order<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 || IN_POOL.with(std::cell::Cell::get) {
            return items.into_iter().map(f).collect();
        }

        // Chunked deque: ~4 chunks per worker for load balance.
        let chunk_len = n.div_ceil(threads * 4).max(1);
        let mut chunks: VecDeque<(usize, Vec<T>)> = VecDeque::new();
        let mut items = items.into_iter();
        let mut start = 0usize;
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            let len = chunk.len();
            chunks.push_back((start, chunk));
            start += len;
        }
        let queue = Mutex::new(chunks);
        // One slot per input; each is written exactly once, so the per-slot
        // locks are uncontended.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let worker = |queue: &Mutex<VecDeque<(usize, Vec<T>)>>, slots: &[Mutex<Option<R>>]| {
            IN_POOL.with(|flag| flag.set(true));
            // Reset the flag on every exit path, including unwinding.
            let _reset = WorkerFlagReset;
            loop {
                let job = lock_unpoisoned(queue).pop_front();
                let Some((base, chunk)) = job else { break };
                for (offset, item) in chunk.into_iter().enumerate() {
                    let out = f(item);
                    *lock_unpoisoned(&slots[base + offset]) = Some(out);
                }
            }
        };

        thread::scope(|scope| {
            for _ in 1..threads {
                scope.spawn(|| worker(&queue, &slots));
            }
            // The calling thread is the last worker; the scope joins the
            // spawned ones (re-raising any worker panic) before returning.
            worker(&queue, &slots);
        });

        slots
            .into_iter()
            .map(|slot| {
                lock_unpoisoned(&slot)
                    .take()
                    .expect("every slot is filled exactly once")
            })
            .collect()
    }

    /// In-place variant of [`map_in_order`]: run `f` on every item of a
    /// *borrowed* mutable slice, writing results into the items
    /// themselves. Steady-state callers (the memory controller's per-tick
    /// candidate gather) keep their item buffers alive across calls, so —
    /// unlike `map_in_order`, which consumes a freshly built `Vec` and
    /// returns another — this entry point needs no per-call item clone and
    /// no result vector. The only transient allocation is the small chunk
    /// deque (`≈ 4 × threads` entries of `(usize, len)`).
    ///
    /// Items are disjoint `&mut` chunks handed out through the same
    /// `Mutex<VecDeque>` self-scheduling protocol as `map_in_order`;
    /// because each chunk is processed by exactly one worker and results
    /// land in the items, the outcome is bit-identical to a sequential
    /// `items.iter_mut().for_each(f)` regardless of thread count.
    pub fn for_each_mut<T, F>(items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let n = items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 || IN_POOL.with(std::cell::Cell::get) {
            items.iter_mut().for_each(f);
            return;
        }

        let chunk_len = n.div_ceil(threads * 4).max(1);
        let mut chunks: VecDeque<&mut [T]> = VecDeque::new();
        let mut rest = items;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push_back(head);
            rest = tail;
        }
        let queue = Mutex::new(chunks);

        let worker = |queue: &Mutex<VecDeque<&mut [T]>>| {
            IN_POOL.with(|flag| flag.set(true));
            // Reset the flag on every exit path, including unwinding.
            let _reset = WorkerFlagReset;
            loop {
                let job = lock_unpoisoned(queue).pop_front();
                let Some(chunk) = job else { break };
                for item in chunk {
                    f(item);
                }
            }
        };

        thread::scope(|scope| {
            for _ in 1..threads {
                scope.spawn(|| worker(&queue));
            }
            // The calling thread is the last worker; the scope joins the
            // spawned ones (re-raising any worker panic) before returning.
            worker(&queue);
        });
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    use crate::pool;

    /// A pending parallel map over owned items.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Execute the map on the pool and collect the ordered results.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            pool::map_in_order(self.items, self.f).into_iter().collect()
        }
    }

    /// A parallel iterator over a materialized item list.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Queue a map to run on the pool.
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// `.par_iter()` on slices and vectors.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type.
        type Item: 'data;

        /// Iterate by reference in parallel.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;

        /// Iterate by value in parallel.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;

        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(all(test, not(loomlite)))]
mod tests {
    use super::pool;
    use super::prelude::*;

    #[test]
    fn map_in_order_matches_sequential() {
        let xs: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x * 3 + 1).collect();
        let par: Vec<u64> = xs.par_iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_mut_matches_sequential() {
        let mut seq: Vec<u64> = (0..1000).collect();
        seq.iter_mut().for_each(|x| *x = *x * 3 + 1);
        for forced in [0, 1, 4] {
            pool::set_num_threads(forced);
            let mut par: Vec<u64> = (0..1000).collect();
            pool::for_each_mut(&mut par, |x| *x = *x * 3 + 1);
            assert_eq!(seq, par, "forced={forced}");
        }
        pool::set_num_threads(0);
    }

    #[test]
    fn for_each_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        pool::for_each_mut(&mut empty, |x| *x += 1);
        assert!(empty.is_empty());
        let mut one = [7u32];
        pool::for_each_mut(&mut one, |x| *x += 1);
        assert_eq!(one, [8]);
    }

    #[test]
    fn for_each_mut_runs_inline_inside_worker() {
        // A nested for_each_mut issued from a pool worker must serialize
        // inline (same discipline as nested par_iter), so it cannot
        // deadlock on the shared pool.
        pool::set_num_threads(4);
        let grid: Vec<Vec<u32>> = (0..8)
            .map(|i| (0..8).map(|j| i * 8 + j).collect())
            .collect();
        let out: Vec<Vec<u32>> = grid
            .par_iter()
            .map(|row| {
                let mut inner = row.clone();
                pool::for_each_mut(&mut inner, |v| *v += 1);
                inner
            })
            .collect();
        pool::set_num_threads(0);
        let expect: Vec<Vec<u32>> = grid
            .iter()
            .map(|row| row.iter().map(|&v| v + 1).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn into_par_iter_on_range() {
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<usize> = (0..17usize).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallel_iterators_serialize_inline() {
        let grid: Vec<Vec<u32>> = (0..8)
            .map(|i| (0..8).map(|j| i * 8 + j).collect())
            .collect();
        let out: Vec<Vec<u32>> = grid
            .par_iter()
            .map(|row| row.par_iter().map(|&v| v + 1).collect())
            .collect();
        let expect: Vec<Vec<u32>> = grid
            .iter()
            .map(|row| row.iter().map(|&v| v + 1).collect())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn forced_thread_counts_agree() {
        let xs: Vec<u64> = (0..257).collect();
        pool::set_num_threads(1);
        let one: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
        pool::set_num_threads(4);
        let four: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
        pool::set_num_threads(0);
        assert_eq!(one, four);
    }

    #[test]
    fn override_beats_cached_env() {
        // Cache whatever the environment says first, then pin the chosen
        // precedence: a later in-process override must win over the cached
        // environment value, and clearing the override must fall back to
        // exactly the cached behaviour.
        let cached = pool::current_num_threads();
        pool::set_num_threads(5);
        assert_eq!(
            pool::current_num_threads(),
            5,
            "set_num_threads after env caching must win"
        );
        pool::set_num_threads(0);
        assert_eq!(
            pool::current_num_threads(),
            cached,
            "clearing the override must restore the cached env/hardware value"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        pool::set_num_threads(2);
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<u32> = (0..64).collect();
            let _: Vec<u32> = xs
                .par_iter()
                .map(|&x| if x == 33 { panic!("boom") } else { x })
                .collect();
        });
        pool::set_num_threads(0);
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn panic_does_not_leak_worker_context() {
        // Regression test for the audit finding F1 (see UNSAFE_AUDIT.md):
        // a mapped-closure panic on the calling thread used to leave the
        // IN_POOL thread-local set, silently serializing every later
        // par_iter on that thread. Every item panics so the caller-side
        // worker is guaranteed to hit the unwind path.
        pool::set_num_threads(2);
        let result = std::panic::catch_unwind(|| {
            let xs: Vec<u32> = (0..8).collect();
            let _: Vec<u32> = xs.par_iter().map(|&_x| -> u32 { panic!("boom") }).collect();
        });
        pool::set_num_threads(0);
        assert!(result.is_err());
        assert!(
            !pool::in_worker_context(),
            "IN_POOL must be reset after a panicking parallel map"
        );
        // And the pool must still work normally afterwards.
        let xs: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x + 7).collect();
        let par: Vec<u64> = xs.par_iter().map(|&x| x + 7).collect();
        assert_eq!(seq, par);
    }
}
