//! Offline vendored mini-proptest.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and `prop_map`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test's module path and name (fully
//! reproducible, no persistence files needed), and failing cases are
//! reported without shrinking.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation and failure plumbing for `proptest!`.

    /// Splitmix64-based RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (module path + test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case is skipped, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }
}

use test_runner::TestRng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps simulation-heavy suites
        // fast while still exercising a broad input spread.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy` is object-safe enough for `Box<dyn Strategy>` use if needed.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical parameterless strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a `proptest!` body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Discard the current case (counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Mirrors the real `proptest!` item form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, ys in prop::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u64 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= (__config.cases as u64) * 100 + 1000,
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let __vals = $crate::Strategy::generate(&__strategy, &mut __rng);
                let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($arg,)+) = __vals;
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {} of {} failed in {}: {}",
                            __accepted + 1,
                            __config.cases,
                            stringify!($name),
                            __msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_honored(v in prop::collection::vec((0u64..4, any::<bool>()), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30, "got {n}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 3..=3);
        let a = strat.generate(&mut TestRng::from_name("x"));
        let b = strat.generate(&mut TestRng::from_name("x"));
        assert_eq!(a, b);
    }
}
