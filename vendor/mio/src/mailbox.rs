//! Cross-thread handoff into an event loop, with wake deduplication.
//!
//! The reactor's acceptor pushes new connections (and any other thread
//! pushes commands) into a worker's `Mailbox`; the worker drains it when
//! its [`Waker`](crate::Waker) fires. The interesting part is the flag
//! protocol that keeps wakes *coalesced* (a burst of pushes costs one
//! pipe write) without ever *losing* one:
//!
//! * **push**: enqueue under the lock, release the lock, then
//!   `swap(true)` the wake-pending flag — only the transition
//!   false→true fires the wake callback.
//! * **drain**: clear the flag **before** taking the lock and draining.
//!
//! Clear-before-drain is load-bearing. If drain cleared the flag *after*
//! emptying the queue, a producer could enqueue between the drain and the
//! clear, observe the flag still true, skip its wake — and the item would
//! sit unobserved until an unrelated wake happened by. With
//! clear-before-drain, any push after the clear either lands before the
//! lock (drained now) or fires a fresh wake (drained next time). Both
//! orders are explored exhaustively by the loomlite models in
//! `models.rs` (`cargo xtask check-concurrency`); the shims in
//! [`crate::shim`] make this file's real code run under the checker.

use std::collections::VecDeque;

use crate::shim::{AtomicBool, Mutex, Ordering};

/// A multi-producer, single-drainer queue with wake deduplication.
#[derive(Debug)]
pub struct Mailbox<T> {
    queue: Mutex<VecDeque<T>>,
    wake_pending: AtomicBool,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<T> {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            wake_pending: AtomicBool::new(false),
        }
    }

    /// Enqueue `item`; invoke `wake` only when no wake is already
    /// pending (so a burst of pushes wakes the consumer once).
    pub fn push<W: FnOnce()>(&self, item: T, wake: W) {
        {
            let mut q = self
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            q.push_back(item);
        }
        // The guard is dropped before waking: the woken consumer must be
        // able to take the lock immediately instead of bouncing off the
        // producer.
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            wake();
        }
    }

    /// Move everything queued into `out` (appended, FIFO). Called by the
    /// consumer after its waker fires; clears the wake-pending flag
    /// *before* draining (see module docs for why that order is the
    /// correct one).
    pub fn drain(&self, out: &mut Vec<T>) {
        self.wake_pending.store(false, Ordering::SeqCst);
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        out.extend(q.drain(..));
    }

    /// Queue length (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// True when nothing is queued (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
