//! Cross-thread wakeup for a blocked [`Poller::poll`](crate::Poller::poll).
//!
//! A nonblocking `UnixStream` pair: the receive half is registered in the
//! poller like any other fd; [`Waker::wake`] writes one byte from any
//! thread, making the receive half readable and the wait return. Wakes
//! coalesce naturally — once the pipe holds unread bytes, further writes
//! either append or hit `WouldBlock`, both of which still leave the fd
//! readable exactly once per [`WakeRx::drain`].
//!
//! The byte-level coalescing here is the *mechanism*; the reactor's
//! at-most-one-wake-per-drain *protocol* lives in [`crate::Mailbox`],
//! whose flag discipline is model-checked under loomlite.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// The sending half: cheap to clone, callable from any thread.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

/// The receiving half: owned by the event-loop thread, registered in its
/// poller under a reserved token.
#[derive(Debug)]
pub struct WakeRx {
    rx: UnixStream,
}

/// Create a connected waker pair.
pub fn wake_pair() -> io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeRx { rx }))
}

impl Waker {
    /// Make the paired poller's current (or next) wait return. Never
    /// blocks: a full pipe means enough wakes are already pending, which
    /// is success, not failure.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => self.wake(),
            Err(e) => Err(e),
        }
    }

    /// A second handle to the same waker (for handing to another
    /// producer thread).
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

impl WakeRx {
    /// The fd to register in the poller (readable interest).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consume every pending wake byte so the (level-triggered) poller
    /// stops reporting the waker readable until the next wake.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return, // sender half gone: nothing more to drain
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: fully drained
            }
        }
    }
}
