//! Driver for the reactor mailbox/wakeup concurrency model check.
//!
//! Invoked by `cargo xtask check-concurrency` (alongside the pool's
//! `loomlite_check`), which compiles this crate with
//! `RUSTFLAGS="--cfg loomlite"` so the mailbox's synchronization shims
//! route through the `loomlite` controlled scheduler. Runs every model in
//! `mio::models`, prints a per-model schedule report, and fails unless
//! (a) no model found a failing interleaving and (b) the total number of
//! distinct schedules explored meets `--min-total` (default 10000).

#[cfg(not(loomlite))]
fn main() {
    eprintln!(
        "mio_loomlite_check was compiled without --cfg loomlite; \
         run it via `cargo xtask check-concurrency`."
    );
    std::process::exit(2);
}

#[cfg(loomlite)]
fn main() {
    model_mode::run();
}

#[cfg(loomlite)]
mod model_mode {
    use loomlite::{Config, Report};
    use mio::models;

    struct Args {
        min_total: usize,
        dfs: usize,
        random: usize,
    }

    fn parse_args() -> Args {
        let mut args = Args {
            min_total: 10_000,
            dfs: 4_000,
            random: 3_000,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    // lint: allow(R1): CLI misuse should abort with context.
                    .unwrap_or_else(|| panic!("{name} requires an integer argument"))
            };
            match flag.as_str() {
                "--min-total" => args.min_total = take("--min-total"),
                "--dfs" => args.dfs = take("--dfs"),
                "--random" => args.random = take("--random"),
                other => {
                    eprintln!("unknown flag {other}; expected --min-total/--dfs/--random N");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    fn report_line(name: &str, r: &Report) -> String {
        format!(
            "model {name}: distinct={} dfs={} random_runs={} exhausted={} — {}",
            r.distinct_schedules,
            r.dfs_schedules,
            r.random_runs,
            r.exhausted,
            if r.passed() { "ok" } else { "FAILED" }
        )
    }

    pub fn run() {
        let args = parse_args();
        let cfg = Config {
            max_schedules: args.dfs,
            random_schedules: args.random,
            ..Config::default()
        };
        let models: [(&str, fn(&Config) -> Report); 4] = [
            ("mailbox_no_lost_wakeup", models::mailbox_no_lost_wakeup),
            ("mailbox_wake_dedup", models::mailbox_wake_dedup),
            (
                "registration_handoff_fifo",
                models::registration_handoff_fifo,
            ),
            ("shutdown_vs_push", models::shutdown_vs_push),
        ];

        let mut total = 0usize;
        let mut failed = false;
        for (name, model) in models {
            let report = model(&cfg);
            println!("{}", report_line(name, &report));
            total += report.distinct_schedules;
            if let Some(failure) = report.failure {
                failed = true;
                eprintln!("  failure: {}", failure.message);
                eprintln!("  failing schedule (replayable): {:?}", failure.schedule);
            }
        }

        println!(
            "total distinct schedules: {total} (minimum required {})",
            args.min_total
        );
        if failed {
            eprintln!("reactor concurrency check: FAIL (failing interleaving found)");
            std::process::exit(1);
        }
        if total < args.min_total {
            eprintln!(
                "reactor concurrency check: FAIL (only {total} distinct schedules, need {})",
                args.min_total
            );
            std::process::exit(1);
        }
        println!("reactor concurrency check: PASS");
    }
}
