//! A hashed timer wheel for the reactor's epoch ticks and idle sweeps.
//!
//! Deadlines are quantized to a fixed tick; each slot of the wheel holds
//! the timers whose deadline-tick hashes there (`deadline % slots`).
//! Advancing the wheel visits at most one full rotation of slots no
//! matter how long the loop slept, and entries that hash into a visited
//! slot but belong to a later rotation are retained — the classic
//! hierarchical-wheel overflow case handled by per-entry deadline checks
//! instead of cascading levels (the reactor schedules a handful of
//! recurring timers, not millions).
//!
//! All methods take an explicit `now` (`*_at`) or default it to
//! `Instant::now()`, so tests drive the wheel deterministically.

use std::time::{Duration, Instant};

use crate::poller::Token;

#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    deadline_tick: u64,
    token: Token,
}

/// A single-level hashed timer wheel.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<TimerEntry>>,
    start: Instant,
    /// Next tick index to process (everything below has been drained).
    cursor: u64,
    /// Earliest armed deadline tick, `None` when the wheel is empty.
    next_deadline: Option<u64>,
    armed: usize,
}

impl TimerWheel {
    /// A wheel with the given tick quantum and slot count. Sub-tick
    /// precision does not exist by design: every deadline rounds *up* to
    /// the next tick boundary so timers never fire early.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        let slots = slots.max(1);
        TimerWheel {
            tick: if tick.is_zero() {
                Duration::from_millis(1)
            } else {
                tick
            },
            slots: (0..slots).map(|_| Vec::new()).collect(),
            start: Instant::now(),
            cursor: 0,
            next_deadline: None,
            armed: 0,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Arm a timer to fire `after` from now.
    pub fn schedule(&mut self, after: Duration, token: Token) {
        self.schedule_at(Instant::now(), after, token)
    }

    /// Arm a timer to fire `after` from `now` (deterministic form).
    pub fn schedule_at(&mut self, now: Instant, after: Duration, token: Token) {
        let now_tick = self.tick_index(now);
        // Round up and fire at least one tick out: a timer never fires in
        // the tick it was armed in.
        let after_ticks = after.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as u64;
        let deadline_tick = now_tick + after_ticks.max(1);
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(TimerEntry {
            deadline_tick,
            token,
        });
        self.armed += 1;
        self.next_deadline = Some(match self.next_deadline {
            Some(d) => d.min(deadline_tick),
            None => deadline_tick,
        });
    }

    /// How long [`Poller::poll`](crate::Poller::poll) may block before the
    /// earliest timer is due; `None` when nothing is armed.
    pub fn next_timeout(&self) -> Option<Duration> {
        self.next_timeout_at(Instant::now())
    }

    /// Deterministic form of [`TimerWheel::next_timeout`].
    pub fn next_timeout_at(&self, now: Instant) -> Option<Duration> {
        let deadline_tick = self.next_deadline?;
        let tick_ns = self.tick.as_nanos().min(u64::MAX as u128) as u64;
        let due = self.start + Duration::from_nanos(tick_ns.saturating_mul(deadline_tick));
        Some(due.saturating_duration_since(now))
    }

    /// Collect every timer due by now into `out` (appended, firing order
    /// by slot rotation). Expired timers are disarmed; recurring behaviour
    /// is the caller re-scheduling from its handler.
    pub fn poll_expired(&mut self, out: &mut Vec<Token>) {
        self.poll_expired_at(Instant::now(), out)
    }

    /// Deterministic form of [`TimerWheel::poll_expired`].
    pub fn poll_expired_at(&mut self, now: Instant, out: &mut Vec<Token>) {
        let now_tick = self.tick_index(now);
        if self.armed == 0 {
            self.cursor = now_tick + 1;
            return;
        }
        if now_tick < self.cursor {
            return;
        }
        // One full rotation visits every slot; sleeping longer than a
        // rotation cannot require visiting a slot twice.
        let span = (now_tick - self.cursor + 1).min(self.slots.len() as u64);
        let nslots = self.slots.len() as u64;
        let mut fired = 0usize;
        for i in 0..span {
            let slot = ((self.cursor + i) % nslots) as usize;
            self.slots[slot].retain(|e| {
                if e.deadline_tick <= now_tick {
                    out.push(e.token);
                    fired += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.cursor = now_tick + 1;
        self.armed -= fired;
        if fired > 0 {
            // Lazy min-rebuild: O(armed) over the handful of live timers.
            self.next_deadline = self.slots.iter().flatten().map(|e| e.deadline_tick).min();
        }
    }

    fn tick_index(&self, now: Instant) -> u64 {
        (now.saturating_duration_since(self.start).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }
}
