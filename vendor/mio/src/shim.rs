//! The single construction point for every synchronization primitive the
//! reactor crate uses (lint rule R7 enforces this).
//!
//! By default these are re-exports of the real `std` types — zero-cost.
//! Compiled with `RUSTFLAGS="--cfg loomlite"` (via
//! `cargo xtask check-concurrency`), they alias to the `loomlite` model
//! checker's shims instead, so the *same* mailbox/wake-dedup source in
//! `mailbox.rs` runs under the controlled scheduler that
//! `vendor/mio/src/models.rs` explores. Reactor code must never name
//! `std::sync` / `std::thread` directly — only through this module — or a
//! real-run/model-run behaviour split could hide exactly the lost-wakeup
//! bugs the checker exists to find.

#[cfg(not(loomlite))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loomlite))]
pub use std::sync::{Mutex, MutexGuard};
#[cfg(not(loomlite))]
pub use std::thread;

#[cfg(loomlite)]
pub use loomlite::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(loomlite)]
pub use loomlite::sync::{Mutex, MutexGuard};
#[cfg(loomlite)]
pub use loomlite::thread;
