//! Raw readiness syscalls, hand-declared so the crate stays
//! dependency-free (the build environment has no `libc` crate to pull
//! from; see vendor/README.md).
//!
//! Two backends, both *level-triggered* so they are observably identical
//! to the layer above:
//!
//! * [`epoll`] — Linux only; O(ready) wakeups, the production backend.
//! * [`pollfds`] — `poll(2)`, available on every unix; O(registered) per
//!   wait, the portable fallback and the cross-check in tests.
//!
//! Everything `unsafe` in the crate lives in this file: the four syscall
//! invocations and one fd-ownership transfer, each individually justified
//! and inventoried in `UNSAFE_AUDIT.md`.

use std::io;

/// epoll backend (Linux).
#[cfg(target_os = "linux")]
pub mod epoll {
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    /// `EPOLLIN`: the fd is readable.
    pub const EPOLLIN: u32 = 0x001;
    /// `EPOLLOUT`: the fd is writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// `EPOLLERR`: error condition (always reported, never requested).
    pub const EPOLLERR: u32 = 0x008;
    /// `EPOLLHUP`: hangup (always reported, never requested).
    pub const EPOLLHUP: u32 = 0x010;
    /// `EPOLLRDHUP`: peer shut down the write half.
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Kernel ABI mirror of `struct epoll_event`. On x86/x86_64 the
    /// kernel declares it packed (no padding between `events` and
    /// `data`); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        /// Ready-mask (`EPOLL*` bits).
        pub events: u32,
        /// Caller-chosen cookie, returned verbatim (we store the token).
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// Create a close-on-exec epoll instance.
    pub fn create() -> io::Result<OwnedFd> {
        // SAFETY: epoll_create1 reads no pointers; it either returns a
        // fresh fd or -1 with errno set.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the kernel just handed us this fd and nothing else owns
        // it, so transferring ownership to OwnedFd (closed on drop) is
        // sound and leak-free.
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    fn ctl(ep: &OwnedFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live stack value for the duration of the call
        // and epoll_ctl only reads it; `ep` is a live epoll fd (borrowed
        // OwnedFd) and `fd` is the caller's open descriptor.
        let rc = unsafe { epoll_ctl(ep.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Register `fd` with the given ready-mask and cookie.
    pub fn add(ep: &OwnedFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        ctl(ep, EPOLL_CTL_ADD, fd, events, data)
    }

    /// Change an existing registration's ready-mask / cookie.
    pub fn modify(ep: &OwnedFd, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        ctl(ep, EPOLL_CTL_MOD, fd, events, data)
    }

    /// Remove a registration. The event argument is ignored by modern
    /// kernels but must still be a valid pointer (pre-2.6.9 ABI quirk).
    pub fn delete(ep: &OwnedFd, fd: RawFd) -> io::Result<()> {
        ctl(ep, EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness; fills `buf` from the front, returns how many
    /// entries are valid. `timeout_ms < 0` blocks indefinitely.
    pub fn wait(ep: &OwnedFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        // SAFETY: `buf` is a live, writable slice of initialized entries;
        // the kernel writes at most `buf.len()` of them and the return
        // value bounds how many we read back.
        let rc = unsafe {
            epoll_wait(
                ep.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// `poll(2)` backend (portable fallback, any unix).
pub mod pollfds {
    use std::io;

    /// `POLLIN`: the fd is readable.
    pub const POLLIN: i16 = 0x001;
    /// `POLLOUT`: the fd is writable.
    pub const POLLOUT: i16 = 0x004;
    /// `POLLERR`: error condition (revents only).
    pub const POLLERR: i16 = 0x008;
    /// `POLLHUP`: hangup (revents only).
    pub const POLLHUP: i16 = 0x010;

    /// ABI mirror of `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// The descriptor to watch (negative entries are skipped by the
        /// kernel, which we use for tombstoned registrations).
        pub fd: i32,
        /// Requested events (`POLLIN` / `POLLOUT`).
        pub events: i16,
        /// Returned ready events.
        pub revents: i16,
    }

    // `nfds_t` is `unsigned long` on the unix platforms this builds for,
    // which matches `usize` on both LP64 and ILP32.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// Wait for readiness on every entry; returns how many entries have a
    /// non-zero `revents`. `timeout_ms < 0` blocks indefinitely.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a live, writable slice; poll reads `events`
        // and writes `revents` for exactly `fds.len()` entries.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// Clamp an optional duration to the millisecond timeout `poll(2)` and
/// `epoll_wait(2)` take: `None` → block (-1), sub-millisecond → 1 (never
/// busy-spin a 0 ms timeout the caller meant as "a little while").
pub fn timeout_ms(timeout: Option<std::time::Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis();
                ms.clamp(1, i32::MAX as u128) as i32
            }
        }
    }
}

/// Retry classification: `EINTR` means "poll again", not "fail the loop".
pub fn is_interrupt(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted
}
