//! Concurrency models for the reactor's wakeup/registration handoff,
//! explored by `cargo xtask check-concurrency`.
//!
//! Only compiled under `--cfg loomlite`, where [`crate::shim`] aliases the
//! mailbox's synchronization primitives to the `loomlite` controlled
//! scheduler. Each model runs the *real* [`Mailbox`](crate::Mailbox)
//! code under permuted interleavings and asserts the invariants the
//! bwpartd reactor depends on: no connection handoff is ever lost, wakes
//! deduplicate, FIFO order survives the drain, and a shutdown racing a
//! push still recovers every item as long as the loop follows its
//! "drain once more after observing shutdown" discipline.
//!
//! The models simulate the [`Waker`](crate::Waker) pipe with a shimmed
//! counter: the pipe itself is kernel state loomlite cannot schedule, and
//! its only protocol-visible effect is "the consumer eventually runs
//! after `wake()`", which the counter captures exactly.

use loomlite::{explore, Config, Report};

use crate::mailbox::Mailbox;
use crate::shim::{thread, AtomicBool, AtomicUsize, Mutex, Ordering};

/// Drain the mailbox once per signalled wake, the way the reactor loop
/// does after `epoll` reports the waker readable.
fn consume_wakes(mb: &Mailbox<u32>, wakes: &AtomicUsize, got: &mut Vec<u32>) {
    while wakes.swap(0, Ordering::SeqCst) > 0 {
        mb.drain(got);
    }
}

/// Two producers race a consumer; afterwards the reactor discipline
/// (one drain per pending wake) must have recovered both items — any
/// interleaving that strands an item in the queue with no wake pending
/// is exactly the lost-wakeup bug clear-before-drain exists to prevent.
pub fn mailbox_no_lost_wakeup(cfg: &Config) -> Report {
    explore(cfg, || {
        let mb = Mailbox::new();
        let wakes = AtomicUsize::new(0);
        let drained = Mutex::new(Vec::new());
        thread::scope(|s| {
            s.spawn(|| {
                mb.push(1u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
            s.spawn(|| {
                mb.push(2u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
            s.spawn(|| {
                let mut got = Vec::new();
                consume_wakes(&mb, &wakes, &mut got);
                drained
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(got);
            });
        });
        let mut got = drained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect::<Vec<_>>();
        // Producers are done: wakes still pending get their drains now.
        consume_wakes(&mb, &wakes, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "mailbox lost (or duplicated) an item");
        assert!(mb.is_empty(), "item stranded with no wake pending");
    })
}

/// With no consumer clearing the flag, a burst of pushes must wake
/// exactly once — the dedup half of the protocol.
pub fn mailbox_wake_dedup(cfg: &Config) -> Report {
    explore(cfg, || {
        let mb = Mailbox::new();
        let wakes = AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|| {
                mb.push(1u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
            s.spawn(|| {
                mb.push(2u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
            s.spawn(|| {
                mb.push(3u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
        });
        assert_eq!(
            wakes.load(Ordering::SeqCst),
            1,
            "wake deduplication broke: a burst must cost one wake"
        );
        let mut got = Vec::new();
        mb.drain(&mut got);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    })
}

/// Registration handoff: the acceptor pushes two connection tokens in
/// order while the worker races drains; FIFO order must survive any
/// interleaving (the reactor relies on it to install connections in
/// accept order).
pub fn registration_handoff_fifo(cfg: &Config) -> Report {
    explore(cfg, || {
        let mb = Mailbox::new();
        let wakes = AtomicUsize::new(0);
        let drained = Mutex::new(Vec::new());
        thread::scope(|s| {
            s.spawn(|| {
                mb.push(10u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                });
                mb.push(20u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                });
            });
            s.spawn(|| {
                let mut got = Vec::new();
                consume_wakes(&mb, &wakes, &mut got);
                drained
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(got);
            });
        });
        let mut got = drained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect::<Vec<_>>();
        consume_wakes(&mb, &wakes, &mut got);
        assert_eq!(got, vec![10, 20], "handoff lost, duplicated, or reordered");
    })
}

/// A push racing shutdown: whichever order the flags land in, the
/// reactor's exit path (observe shutdown → drain the mailbox one final
/// time) must still recover the in-flight connection.
pub fn shutdown_vs_push(cfg: &Config) -> Report {
    explore(cfg, || {
        let mb = Mailbox::new();
        let wakes = AtomicUsize::new(0);
        let shutdown = AtomicBool::new(false);
        let drained = Mutex::new(Vec::new());
        thread::scope(|s| {
            s.spawn(|| {
                mb.push(7u32, || {
                    wakes.fetch_add(1, Ordering::SeqCst);
                })
            });
            s.spawn(|| shutdown.store(true, Ordering::SeqCst));
            s.spawn(|| {
                // The worker loop: serve wakes until shutdown is seen,
                // then drain once more (the exit-path discipline).
                let mut got = Vec::new();
                if !shutdown.load(Ordering::SeqCst) {
                    consume_wakes(&mb, &wakes, &mut got);
                }
                mb.drain(&mut got);
                drained
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(got);
            });
        });
        let mut got = drained
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect::<Vec<_>>();
        // The join point models the reactor's final post-loop drain.
        mb.drain(&mut got);
        assert_eq!(got, vec![7], "shutdown race dropped an in-flight handoff");
    })
}
