//! Offline vendored `mio` stand-in: the readiness substrate for the
//! `bwpartd` reactor (see DESIGN.md §16).
//!
//! The real `mio` crate cannot be fetched in this build environment, so
//! this crate provides the API subset the service needs, dependency-free
//! (raw syscall declarations instead of `libc`):
//!
//! * [`Poller`] / [`Events`] / [`Token`] / [`Interest`] — level-triggered
//!   readiness selection; `epoll(7)` on Linux, portable `poll(2)`
//!   fallback, runtime-selectable so tests cross-check the two.
//! * [`Waker`] / [`WakeRx`] — cross-thread wakeup of a blocked poll via a
//!   nonblocking socketpair.
//! * [`TimerWheel`] — hashed-wheel deadlines for epoch ticks and idle
//!   sweeps, with deterministic `*_at` forms for tests.
//! * [`Mailbox`] — multi-producer handoff into an event loop with
//!   wake-deduplication; its flag protocol is model-checked under
//!   `loomlite` (`cargo xtask check-concurrency` runs
//!   `mio_loomlite_check`, see `src/models.rs`).
//!
//! Scope notes, in the spirit of the other vendored stand-ins: no
//! edge-triggered mode (the reactor drains to `WouldBlock` anyway, which
//! makes level-triggered observationally identical and keeps the `poll`
//! fallback a true drop-in), no Windows, no `mio::net` wrappers (the
//! reactor registers `std::net` sockets by raw fd).

pub mod shim;

mod mailbox;
#[cfg(loomlite)]
pub mod models;
mod poller;
mod sys;
mod timer;
mod waker;

pub use mailbox::Mailbox;
pub use poller::{Backend, Event, Events, Interest, Poller, Token};
pub use timer::TimerWheel;
pub use waker::{wake_pair, WakeRx, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    /// Accept + data readiness, reregistration to writable, and
    /// deregistration, identically on every backend.
    #[test]
    fn readiness_accept_read_write_cycle() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let mut events = Events::with_capacity(16);

            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let lfd = {
                use std::os::fd::AsRawFd;
                listener.as_raw_fd()
            };
            poller.register(lfd, Token(1), Interest::READABLE).unwrap();

            // Nothing ready yet: a short wait times out empty.
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious readiness");

            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| e.token() == Token(1) && e.is_readable()),
                "{backend:?}: accept readiness not reported"
            );

            let (stream, _) = listener.accept().unwrap();
            stream.set_nonblocking(true).unwrap();
            let sfd = {
                use std::os::fd::AsRawFd;
                stream.as_raw_fd()
            };
            poller.register(sfd, Token(2), Interest::READABLE).unwrap();

            client.write_all(b"ping").unwrap();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| e.token() == Token(2) && e.is_readable()),
                "{backend:?}: data readiness not reported"
            );
            let mut buf = [0u8; 8];
            let n = (&stream).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");

            // A connected socket with an empty send buffer is writable.
            poller
                .reregister(sfd, Token(3), Interest::WRITABLE)
                .unwrap();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events
                    .iter()
                    .any(|e| e.token() == Token(3) && e.is_writable()),
                "{backend:?}: write readiness not reported"
            );

            poller.deregister(sfd).unwrap();
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                !events.iter().any(|e| e.token() == Token(3)),
                "{backend:?}: deregistered fd still reported"
            );
        }
    }

    /// A waker fired from another thread interrupts a long poll, and
    /// draining stops the (level-triggered) re-reporting.
    #[test]
    fn waker_wakes_blocked_poll() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let mut events = Events::with_capacity(4);
            let (waker, rx) = wake_pair().unwrap();
            poller
                .register(rx.fd(), Token(0), Interest::READABLE)
                .unwrap();

            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake().unwrap();
                waker
            });
            let t0 = Instant::now();
            poller
                .poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "{backend:?}: poll did not wake"
            );
            assert!(events.iter().any(|e| e.token() == Token(0)));

            let waker = t.join().unwrap();
            // Coalescing: many wakes, one readable edge, drained once.
            for _ in 0..100 {
                waker.wake().unwrap();
            }
            rx.drain();
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: drained waker still readable"
            );
        }
    }

    #[test]
    fn timer_wheel_fires_in_deadline_order_across_rotations() {
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 8);
        let t0 = Instant::now();
        // 12 ticks out wraps the 8-slot wheel; 3 ticks out does not.
        wheel.schedule_at(t0, tick * 12, Token(12));
        wheel.schedule_at(t0, tick * 3, Token(3));
        assert_eq!(wheel.len(), 2);

        // Earliest deadline governs the poll timeout.
        let next = wheel.next_timeout_at(t0).unwrap();
        assert!(next <= tick * 3 && next > Duration::ZERO);

        let mut fired = Vec::new();
        wheel.poll_expired_at(t0 + tick * 2, &mut fired);
        assert!(fired.is_empty(), "fired early");

        wheel.poll_expired_at(t0 + tick * 5, &mut fired);
        assert_eq!(fired, vec![Token(3)], "same-slot later rotation leaked");

        // Sleeping far past both deadlines still fires the wrapped entry
        // exactly once.
        wheel.poll_expired_at(t0 + tick * 40, &mut fired);
        assert_eq!(fired, vec![Token(3), Token(12)]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout_at(t0 + tick * 40), None);
    }

    #[test]
    fn timer_wheel_never_fires_in_arming_tick() {
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 4);
        let t0 = Instant::now();
        wheel.schedule_at(t0, Duration::ZERO, Token(9));
        let mut fired = Vec::new();
        wheel.poll_expired_at(t0, &mut fired);
        assert!(fired.is_empty(), "zero-delay timer fired in its own tick");
        wheel.poll_expired_at(t0 + tick, &mut fired);
        assert_eq!(fired, vec![Token(9)]);
    }

    #[test]
    fn mailbox_fifo_and_wake_dedup() {
        let mb = Mailbox::new();
        let mut wakes = 0usize;
        mb.push(1, || wakes += 1);
        mb.push(2, || wakes += 1);
        mb.push(3, || wakes += 1);
        assert_eq!(wakes, 1, "burst must coalesce to one wake");
        assert_eq!(mb.len(), 3);
        let mut got = Vec::new();
        mb.drain(&mut got);
        assert_eq!(got, vec![1, 2, 3]);
        assert!(mb.is_empty());
        // After a drain the next push wakes again.
        mb.push(4, || wakes += 1);
        assert_eq!(wakes, 2);
    }
}
