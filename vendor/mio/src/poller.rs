//! The readiness selector: one `Poller` per event-loop thread.
//!
//! Both backends are **level-triggered**: a fd that is still readable is
//! reported again on the next wait. The layer above (the bwpartd reactor)
//! drains every readiness edge to `WouldBlock` anyway — the discipline
//! edge-triggered epoll would force — so the two backends are observably
//! identical and the portable fallback is a true drop-in, not a
//! lower-fidelity mode.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use crate::sys;

/// Opaque per-registration cookie, echoed back on every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness classes a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Combine two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest {
            readable: self.readable || other.readable,
            writable: self.writable || other.writable,
        }
    }

    /// Does this interest include readability?
    pub const fn is_readable(self) -> bool {
        self.readable
    }

    /// Does this interest include writability?
    pub const fn is_writable(self) -> bool {
        self.writable
    }
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    hup: bool,
}

impl Event {
    /// The registration's cookie.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Reading will not block (includes error/hangup conditions, which a
    /// read surfaces as `Ok(0)` or an error — exactly what the caller's
    /// drain loop wants to observe).
    pub fn is_readable(&self) -> bool {
        self.readable || self.error || self.hup
    }

    /// Writing will not block (includes error conditions so a doomed
    /// connection fails fast on its next write instead of hanging).
    pub fn is_writable(&self) -> bool {
        self.writable || self.error
    }

    /// An error condition was reported for the fd.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer hung up.
    pub fn is_hup(&self) -> bool {
        self.hup
    }
}

/// Reusable event buffer for [`Poller::poll`].
#[derive(Debug, Default)]
pub struct Events {
    items: Vec<Event>,
}

impl Events {
    /// An empty buffer with room for `cap` events per wait (the epoll
    /// backend reads at most `cap` kernel events per call; `poll` reports
    /// everything ready regardless).
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            items: Vec::with_capacity(cap.max(1)),
        }
    }

    /// Iterate the events from the most recent wait.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.items.iter()
    }

    /// Number of events from the most recent wait.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the most recent wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)` — O(ready) wakeups.
    Epoll,
    /// Portable `poll(2)` — O(registered) per wait.
    Poll,
}

/// One live registration in the `poll(2)` backend.
#[derive(Debug, Clone, Copy)]
struct PollReg {
    fd: RawFd,
    token: Token,
    interest: Interest,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll {
        ep: std::os::fd::OwnedFd,
        buf: Vec<sys::epoll::EpollEvent>,
    },
    Poll {
        regs: Vec<PollReg>,
        fds: Vec<sys::pollfds::PollFd>,
    },
}

/// A readiness selector. Owned by exactly one event-loop thread
/// (`&mut self` everywhere); cross-thread signalling goes through
/// [`crate::Waker`] + [`crate::Mailbox`] instead of sharing the poller.
pub struct Poller {
    imp: Imp,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

impl Poller {
    /// A poller on the platform's best backend (epoll on Linux, `poll(2)`
    /// elsewhere).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// A poller on an explicit backend (tests cross-check the two).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poller {
                imp: Imp::Epoll {
                    ep: sys::epoll::create()?,
                    buf: Vec::new(),
                },
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
            Backend::Poll => Ok(Poller {
                imp: Imp::Poll {
                    regs: Vec::new(),
                    fds: Vec::new(),
                },
            }),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { .. } => Backend::Epoll,
            Imp::Poll { .. } => Backend::Poll,
        }
    }

    /// Start watching `fd`. The fd must be (and stay) valid until
    /// [`Poller::deregister`]; registering the same fd twice is an error
    /// on the epoll backend and rejected for parity on the poll backend.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { ep, .. } => sys::epoll::add(ep, fd, epoll_mask(interest), token.0 as u64),
            Imp::Poll { regs, .. } => {
                if regs.iter().any(|r| r.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                regs.push(PollReg {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Change an existing registration's token/interest.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { ep, .. } => {
                sys::epoll::modify(ep, fd, epoll_mask(interest), token.0 as u64)
            }
            Imp::Poll { regs, .. } => match regs.iter_mut().find(|r| r.fd == fd) {
                Some(r) => {
                    r.token = token;
                    r.interest = interest;
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "fd is not registered",
                )),
            },
        }
    }

    /// Stop watching `fd`. Must happen before the fd is closed (epoll
    /// auto-removes closed fds, `poll` would report them as errors — the
    /// explicit call keeps the backends equivalent).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { ep, .. } => sys::epoll::delete(ep, fd),
            Imp::Poll { regs, .. } => {
                let before = regs.len();
                regs.retain(|r| r.fd != fd);
                if regs.len() == before {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "fd is not registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Wait for readiness, filling `events` (cleared first). A timeout
    /// with nothing ready and an `EINTR` both return `Ok` with empty
    /// events — the caller's loop re-enters either way.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = sys::timeout_ms(timeout);
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { ep, buf } => {
                buf.resize(
                    events.items.capacity().max(64),
                    sys::epoll::EpollEvent { events: 0, data: 0 },
                );
                let n = match sys::epoll::wait(ep, buf, ms) {
                    Ok(n) => n,
                    Err(e) if sys::is_interrupt(&e) => 0,
                    Err(e) => return Err(e),
                };
                for ev in &buf[..n] {
                    // Copy out of the (possibly packed) ABI struct before
                    // testing bits.
                    let mask = ev.events;
                    let data = ev.data;
                    events.items.push(Event {
                        token: Token(data as usize),
                        readable: mask & (sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP) != 0,
                        writable: mask & sys::epoll::EPOLLOUT != 0,
                        error: mask & sys::epoll::EPOLLERR != 0,
                        hup: mask & (sys::epoll::EPOLLHUP | sys::epoll::EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
            Imp::Poll { regs, fds } => {
                fds.clear();
                fds.extend(regs.iter().map(|r| sys::pollfds::PollFd {
                    fd: r.fd,
                    events: poll_mask(r.interest),
                    revents: 0,
                }));
                let n = match sys::pollfds::wait(fds, ms) {
                    Ok(n) => n,
                    Err(e) if sys::is_interrupt(&e) => 0,
                    Err(e) => return Err(e),
                };
                if n == 0 {
                    return Ok(());
                }
                for (reg, fd) in regs.iter().zip(fds.iter()) {
                    let re = fd.revents;
                    if re == 0 {
                        continue;
                    }
                    events.items.push(Event {
                        token: reg.token,
                        readable: re & sys::pollfds::POLLIN != 0,
                        writable: re & sys::pollfds::POLLOUT != 0,
                        error: re & sys::pollfds::POLLERR != 0,
                        hup: re & sys::pollfds::POLLHUP != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut m = sys::epoll::EPOLLRDHUP;
    if interest.is_readable() {
        m |= sys::epoll::EPOLLIN;
    }
    if interest.is_writable() {
        m |= sys::epoll::EPOLLOUT;
    }
    m
}

fn poll_mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.is_readable() {
        m |= sys::pollfds::POLLIN;
    }
    if interest.is_writable() {
        m |= sys::pollfds::POLLOUT;
    }
    m
}
