//! Offline vendored mini-rand.
//!
//! API-compatible with the slice of `rand 0.8` this workspace uses:
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, `Rng::gen` for a few primitives, and `rngs::{SmallRng, StdRng}`.
//! Both RNGs are the same xorshift64* generator seeded through splitmix64 —
//! statistically fine for synthetic workload generation, not for crypto.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a uniform value of `T` (full integer range; `[0,1)` floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable without parameters (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

/// Types uniformly sampleable from a bounded range. Keeping [`SampleRange`]
/// generic over this trait (rather than writing per-type range impls) lets
/// integer-literal inference unify `0..1000` with the comparison context,
/// exactly as real rand's `SampleUniform`/`SampleRange` pair does.
pub trait SampleUniform: Sized + Copy {
    /// Draw uniformly from `[lo, hi)` or, when `inclusive`, `[lo, hi]`.
    fn sample_bounded<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounded<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounded<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let u = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A range that knows how to sample itself (mirrors `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_bounded(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_bounded(*self.start(), *self.end(), true, rng)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast non-cryptographic RNG (xorshift64* over a splitmix64-
    /// expanded seed).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step guarantees a non-zero, well-mixed state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// "Standard" RNG; same engine as [`SmallRng`] in this vendored build.
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let seq_a: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "unit samples should cover both tails");
    }
}
