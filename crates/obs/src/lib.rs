//! `bwpart-obs` — zero-cost observability for the bwpart stack.
//!
//! Three pieces (see DESIGN.md §12 "Observability architecture"):
//!
//! * **[`Registry`]** — named atomic [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (p50/p95/p99), snapshot-able at any time
//!   without stopping writers, with Prometheus-text and typed-JSON
//!   ([`MetricsSnapshot`]) rendering.
//! * **[`Tracer`]** — a bounded ring buffer of trace events with Chrome
//!   trace-event JSON export (`chrome://tracing` / Perfetto), supporting
//!   deterministic cycle-domain events and wall-clock RAII spans.
//! * **The macro layer** — [`obs_count!`], [`obs_gauge!`], [`obs_hist!`]
//!   and [`obs_span!`]. With the `trace` cargo feature enabled they expand
//!   to a null-check plus one relaxed atomic op against pre-resolved
//!   handles; **without it they expand to nothing at all**, so the
//!   per-cycle simulator hot path carries zero observability code. The
//!   `cfg` is evaluated against *this* crate's features, so consumers
//!   need no features of their own — enabling `bwpart-obs/trace` anywhere
//!   in the build graph turns instrumentation on everywhere.
//!
//! Hot-path discipline (enforced by lint rule R9): per-cycle code in
//! `crates/dram` and `crates/mc` must instrument exclusively through
//! these macros over an `Option<Box<Hooks>>` of pre-resolved handles —
//! never by calling the registry (a mutex + map lookup) directly.

mod registry;
mod trace;

pub use registry::{
    bucket_index, bucket_lower, bucket_upper, Counter, CounterSample, Gauge, GaugeSample,
    Histogram, HistogramSample, MetricsSnapshot, Registry, HIST_BUCKETS,
};
pub use trace::{EventPhase, SpanGuard, TraceEvent, Tracer};

/// Increment a pre-resolved [`Counter`] field on an optional hooks struct.
///
/// `obs_count!(self.obs, row_hits)` → `self.obs.as_deref()` null-check +
/// `Counter::inc`; `obs_count!(self.obs, cycles, n)` adds `n`. Expands to
/// nothing without the `trace` feature (arguments are not evaluated).
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! obs_count {
    ($hooks:expr, $field:ident) => {{
        if let Some(__obs_h) = ($hooks).as_deref() {
            __obs_h.$field.inc();
        }
    }};
    ($hooks:expr, $field:ident, $n:expr) => {{
        if let Some(__obs_h) = ($hooks).as_deref() {
            __obs_h.$field.add($n);
        }
    }};
}

/// Disabled form of [`obs_count!`]: expands to nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! obs_count {
    ($($tt:tt)*) => {
        ()
    };
}

/// Set a pre-resolved [`Gauge`] field on an optional hooks struct:
/// `obs_gauge!(self.obs, queue_depth, v)`. The value expression is only
/// evaluated when hooks are attached; expands to nothing without the
/// `trace` feature.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! obs_gauge {
    ($hooks:expr, $field:ident, $v:expr) => {{
        if let Some(__obs_h) = ($hooks).as_deref() {
            __obs_h.$field.set($v);
        }
    }};
}

/// Disabled form of [`obs_gauge!`]: expands to nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! obs_gauge {
    ($($tt:tt)*) => {
        ()
    };
}

/// Record into a pre-resolved [`Histogram`] field on an optional hooks
/// struct: `obs_hist!(self.obs, latency, v)`. Expands to nothing without
/// the `trace` feature.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! obs_hist {
    ($hooks:expr, $field:ident, $v:expr) => {{
        if let Some(__obs_h) = ($hooks).as_deref() {
            __obs_h.$field.record($v);
        }
    }};
}

/// Disabled form of [`obs_hist!`]: expands to nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! obs_hist {
    ($($tt:tt)*) => {
        ()
    };
}

/// Open a wall-clock RAII span on an `Option<&Tracer>` for the rest of
/// the enclosing scope: `obs_span!(tracer_opt, "epoch");`. Expands to
/// nothing without the `trace` feature.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! obs_span {
    ($tracer:expr, $name:expr) => {
        let __obs_span_guard = ($tracer).map(|__obs_t| __obs_t.span($name));
    };
}

/// Disabled form of [`obs_span!`]: expands to nothing.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! obs_span {
    ($($tt:tt)*) => {};
}

/// True when this build carries live instrumentation (the `trace`
/// feature); lets callers (and the bench guardrail) report which mode
/// they measured.
pub const fn trace_enabled() -> bool {
    cfg!(feature = "trace")
}

#[cfg(test)]
mod macro_tests {
    use crate::{Counter, Gauge, Histogram, Registry, Tracer};

    /// A consumer-shaped hooks struct: pre-resolved handles.
    #[derive(Debug, Clone)]
    #[allow(dead_code)] // fields are only read via the trace-feature macros
    struct Hooks {
        hits: Counter,
        depth: Gauge,
        lat: Histogram,
    }

    #[test]
    fn macros_compile_in_both_feature_states() {
        let reg = Registry::new();
        let obs: Option<Box<Hooks>> = Some(Box::new(Hooks {
            hits: reg.counter("hits_total"),
            depth: reg.gauge("depth"),
            lat: reg.histogram("lat"),
        }));
        obs_count!(obs, hits);
        obs_count!(obs, hits, 4);
        obs_gauge!(obs, depth, 2.5);
        obs_hist!(obs, lat, 10.0);
        assert!(obs.is_some(), "macros must not consume the hooks");
        let tracer = Tracer::new(8);
        {
            obs_span!(Some(&tracer), "scope");
        }
        if crate::trace_enabled() {
            assert_eq!(reg.counter("hits_total").get(), 5);
            assert!((reg.gauge("depth").get() - 2.5).abs() < 1e-12);
            assert_eq!(reg.histogram("lat").count(), 1);
            assert_eq!(tracer.len(), 1);
        } else {
            // Zero-cost: nothing was evaluated, nothing recorded.
            assert_eq!(reg.counter("hits_total").get(), 0);
            assert_eq!(tracer.len(), 0);
        }
    }

    #[test]
    fn detached_hooks_record_nothing() {
        let obs: Option<Box<Hooks>> = None;
        obs_count!(obs, hits);
        obs_gauge!(obs, depth, 1.0);
        obs_hist!(obs, lat, 1.0);
        // `obs` must stay usable (macros take it by reference).
        assert!(obs.is_none());
    }
}
