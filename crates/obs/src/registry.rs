//! The metrics registry: named atomic counters, gauges and log-bucketed
//! histograms, snapshot-able at any time without stopping writers.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! of the registered cells, so instrumentation sites resolve their metric
//! once (cold, at attach time) and then touch a single atomic on the hot
//! path. Every load/store uses `Relaxed`: metrics are monotone event
//! counts and last-writer-wins samples, not synchronization — a snapshot
//! may observe a momentarily torn *set* of metrics (counter A from cycle
//! N, counter B from cycle N+1) but never a torn value.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        // hb: none needed — a counter is a commutative event tally; readers
        // only ever fold the final/loaded value, never synchronize on it.
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // hb: none needed — commutative tally, as in `inc`.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // hb: none needed — a snapshot read of a monotone tally.
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins sampled value (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Overwrite the sample.
    #[inline]
    pub fn set(&self, v: f64) {
        // hb: none needed — last-writer-wins sample; the store is the whole
        // protocol and readers accept any published value.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current sample.
    pub fn get(&self) -> f64 {
        // hb: none needed — reads a single self-contained sample.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Smallest power-of-two octave the histogram resolves; anything at or
/// below `2^MIN_EXP` (including zero, negatives and NaN) lands in the
/// underflow bucket.
const MIN_EXP: i32 = -64;
/// One past the largest resolved octave; `2^MAX_EXP` and above (including
/// `+inf`) land in the overflow bucket.
const MAX_EXP: i32 = 64;
/// Sub-buckets per octave (top two mantissa bits → relative error ≤ 25%).
const SUBDIV: usize = 4;
/// Total bucket count: underflow + resolved range + overflow.
pub const HIST_BUCKETS: usize = 2 + (MAX_EXP - MIN_EXP) as usize * SUBDIV;

/// Map a recorded value to its bucket index, branch-free on the common
/// path: the f64 exponent plus the top two mantissa bits select one of
/// [`SUBDIV`] geometric sub-buckets per power-of-two octave.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0; // underflow: zero, negatives, NaN
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp >= MAX_EXP {
        return HIST_BUCKETS - 1;
    }
    let sub = ((bits >> 50) & 0x3) as usize;
    1 + (exp - MIN_EXP) as usize * SUBDIV + sub
}

/// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
pub fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    if i >= HIST_BUCKETS - 1 {
        return (MAX_EXP as f64).exp2();
    }
    let k = i - 1;
    let oct = MIN_EXP + (k / SUBDIV) as i32;
    (oct as f64).exp2() * (1.0 + (k % SUBDIV) as f64 / SUBDIV as f64)
}

/// Exclusive upper bound of bucket `i` (`+inf` for the overflow bucket).
pub fn bucket_upper(i: usize) -> f64 {
    if i >= HIST_BUCKETS - 1 {
        return f64::INFINITY;
    }
    if i == 0 {
        return (MIN_EXP as f64).exp2();
    }
    let k = i - 1;
    let oct = MIN_EXP + (k / SUBDIV) as i32;
    (oct as f64).exp2() * (1.0 + (k % SUBDIV + 1) as f64 / SUBDIV as f64)
}

#[derive(Debug)]
struct HistCells {
    buckets: Vec<AtomicU64>, // HIST_BUCKETS cells
    count: AtomicU64,
    /// Sum of recorded values in milli-units (`v * 1000` rounded), so the
    /// accumulation stays a single `fetch_add` instead of a CAS loop.
    sum_milli: AtomicU64,
}

/// A log-bucketed histogram: geometric buckets spanning `2^-64..2^64`
/// with four sub-buckets per octave, plus underflow/overflow. Quantiles
/// are read from a lock-free snapshot of the buckets and are exact to
/// within one bucket (≤ 25% relative error in the resolved range).
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: Arc::new(HistCells {
                buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_milli: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        let idx = bucket_index(v);
        if let Some(cell) = self.cells.buckets.get(idx) {
            // hb: none needed — independent commutative tallies; a reader
            // folding mid-record sees a value the writer passed through.
            cell.fetch_add(1, Ordering::Relaxed);
        }
        // hb: none needed — same commutative-tally argument.
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        let milli = if v.is_finite() && v > 0.0 {
            (v * 1000.0).round().min(u64::MAX as f64 / 2.0) as u64
        } else {
            0
        };
        // hb: none needed — same commutative-tally argument.
        self.cells.sum_milli.fetch_add(milli, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // hb: none needed — snapshot read of a monotone tally.
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Approximate sum of recorded observations (milli-unit resolution;
    /// non-finite and non-positive values contribute zero).
    pub fn sum(&self) -> f64 {
        // hb: none needed — snapshot read of a monotone tally.
        self.cells.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing the order statistic — except the overflow bucket, whose
    /// lower bound is returned so the result stays finite. Returns 0 when
    /// nothing was recorded.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .cells
            .buckets
            .iter()
            // hb: none needed — per-bucket snapshot reads; quantiles
            // tolerate a bucket vector spanning a few in-flight records.
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == HIST_BUCKETS - 1 {
                    bucket_lower(i)
                } else {
                    bucket_upper(i)
                };
            }
        }
        bucket_lower(HIST_BUCKETS - 1)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named-metric registry. Cloning shares the underlying table, so one
/// registry can be attached to many components; registration takes a
/// short mutex, but registered handles bypass it entirely.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    table: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn table(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned table means a panic elsewhere while registering; the
        // map itself is still structurally sound, so keep serving it.
        self.table
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Get or register the counter `name`. If `name` is already registered
    /// as a different kind, a detached (unregistered) handle is returned
    /// rather than panicking — the mismatch shows up as a frozen metric.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Get or register the gauge `name` (kind mismatch: detached handle).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Get or register the histogram `name` (kind mismatch: detached
    /// handle).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.table().is_empty()
    }

    /// Snapshot every metric without stopping writers. Values are loaded
    /// with `Relaxed` atomics: each individual value is untorn, the set as
    /// a whole is a point-in-time approximation.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let t = self.table();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in t.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSample {
                    name: name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                }),
            }
        }
        snap
    }
}

/// A counter's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (may carry `{label="value"}` suffixes verbatim).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A gauge's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name (may carry `{label="value"}` suffixes verbatim).
    pub name: String,
    /// Last sampled value.
    pub value: f64,
}

/// A histogram's summary at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Approximate sum of observations (milli-unit resolution).
    pub sum: f64,
    /// Median (bucket-upper-bound estimator).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Point-in-time view of a [`Registry`], ordered by metric name — the
/// typed-JSON payload of the bwpartd `Metrics` reply.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-ordered.
    pub counters: Vec<CounterSample>,
    /// All gauges, name-ordered.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format.
    /// Histograms are rendered summary-style (`_count`, `_sum`, and
    /// `{quantile="..."}` sample lines).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let base = base_name(&c.name);
            out.push_str(&format!("# TYPE {base} counter\n{} {}\n", c.name, c.value));
        }
        for g in &self.gauges {
            let base = base_name(&g.name);
            out.push_str(&format!(
                "# TYPE {base} gauge\n{} {}\n",
                g.name,
                fmt_f64(g.value)
            ));
        }
        for h in &self.histograms {
            let base = base_name(&h.name);
            out.push_str(&format!("# TYPE {base} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!("{base}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
            }
            out.push_str(&format!("{base}_sum {}\n", fmt_f64(h.sum)));
            out.push_str(&format!("{base}_count {}\n", h.count));
        }
        out
    }
}

/// The metric name before any `{label}` suffix.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Prometheus-safe float formatting (`+Inf`/`-Inf`/`NaN` spellings).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("mc_ticks_total");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Re-resolving by name shares the same cell.
        assert_eq!(reg.counter("mc_ticks_total").get(), 10);
    }

    #[test]
    fn gauge_last_writer_wins() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth");
        g.set(3.0);
        g.set(-1.5);
        assert!((g.get() - -1.5).abs() < 1e-12);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.inc();
        let g = reg.gauge("x"); // wrong kind: detached
        g.set(42.0);
        assert_eq!(reg.counter("x").get(), 1, "registered counter untouched");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_nest() {
        let mut prev = -1.0f64;
        for i in 0..HIST_BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(lo >= prev, "lower bounds monotone at {i}");
            assert!(hi > lo, "bucket {i} non-empty");
            prev = lo;
            if i + 1 < HIST_BUCKETS {
                assert!(
                    (bucket_lower(i + 1) - hi).abs() <= hi * 1e-12,
                    "buckets {i}/{} tile the line",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn bucket_index_respects_bounds() {
        for v in [
            0.0,
            -3.5,
            f64::NAN,
            1e-300,
            0.75,
            1.0,
            1.49,
            2.0,
            1234.5,
            1e300,
            f64::INFINITY,
        ] {
            let i = bucket_index(v);
            assert!(i < HIST_BUCKETS);
            if v.is_finite() && v > 0.0 && i > 0 && i < HIST_BUCKETS - 1 {
                assert!(bucket_lower(i) <= v && v < bucket_upper(i), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_order() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Bucket estimator: within 25% of the exact order statistic.
        assert!((p50 - 500.0).abs() / 500.0 < 0.26, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.26, "p99={p99}");
        assert!((h.sum() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert!((h.quantile(0.99) - 0.0).abs() < 1e-12);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_is_name_ordered_and_complete() {
        let reg = Registry::new();
        reg.counter("b_total").add(2);
        reg.gauge("a_gauge").set(1.25);
        reg.histogram("c_hist").record(4.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.counters[0].name, "b_total");
        assert_eq!(snap.counters[0].value, 2);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("reqs_total{app=\"lbm\"}").add(7);
        reg.gauge("util").set(0.5);
        reg.histogram("lat_us").record(10.0);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter\n"));
        assert!(text.contains("reqs_total{app=\"lbm\"} 7\n"));
        assert!(text.contains("# TYPE util gauge\nutil 0.5\n"));
        assert!(text.contains("# TYPE lat_us summary\n"));
        assert!(text.contains("lat_us{quantile=\"0.99\"}"));
        assert!(text.contains("lat_us_count 1\n"));
    }

    #[test]
    fn writers_race_snapshot_without_tearing() {
        let reg = Registry::new();
        let c = reg.counter("racing_total");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        // Snapshots mid-race must see monotone values.
        let mut last = 0u64;
        for _ in 0..100 {
            let v = reg.counter("racing_total").get();
            assert!(v >= last);
            last = v;
        }
        for t in threads {
            // lint: allow(R1): test-only join
            t.join().expect("writer thread");
        }
        assert_eq!(c.get(), 40_000);
    }
}
