//! The event tracer: a bounded ring buffer of trace events plus a Chrome
//! trace-event JSON exporter (loadable in `chrome://tracing` and Perfetto).
//!
//! Two timestamp domains coexist:
//!
//! * **Cycle domain** — deterministic simulation events recorded with an
//!   explicit timestamp ([`Tracer::complete_at`], [`Tracer::instant_at`],
//!   [`Tracer::counter_at`]). One simulated cycle is exported as one
//!   microsecond on the viewer timeline, so exports are bit-reproducible
//!   across runs (the golden-file test relies on this).
//! * **Wall-clock domain** — RAII spans ([`Tracer::span`], usually via the
//!   `obs_span!` macro) measured with [`std::time::Instant`] relative to
//!   tracer creation, for profiling the host-side cost of cold paths.
//!
//! The ring is bounded: once `capacity` events are held, each push evicts
//! the oldest event and bumps [`Tracer::dropped`] — tracing can never grow
//! memory without bound, matching the "observability must not change the
//! system" rule the rest of the subsystem follows.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// A complete event (`"ph":"X"`): a named interval with a duration.
    Complete,
    /// An instant event (`"ph":"i"`, thread-scoped).
    Instant,
    /// A counter event (`"ph":"C"`): a named sampled value, rendered by
    /// the viewers as a stacked time-series track.
    Counter,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (track label in the viewer).
    pub name: String,
    /// Phase (complete / instant / counter).
    pub ph: EventPhase,
    /// Timestamp in viewer microseconds (simulation events: cycles).
    pub ts: u64,
    /// Duration in viewer microseconds (complete events only).
    pub dur: u64,
    /// Thread/track id (simulation events: app or channel index).
    pub tid: u64,
    /// Sampled value (counter events only).
    pub value: Option<f64>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// The bounded event tracer. Cloning shares the ring, so one tracer can
/// collect events from many components.
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: Arc<Mutex<Ring>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(65_536)
    }
}

impl Tracer {
    /// A tracer holding at most `capacity` events (oldest evicted first).
    /// A zero capacity is bumped to 1 so pushes stay well-defined.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            ring: Arc::new(Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            })),
            epoch: Instant::now(),
        }
    }

    fn ring(&self) -> MutexGuard<'_, Ring> {
        // A poisoned ring means a panic mid-push elsewhere; the deque is
        // still structurally sound, so keep tracing.
        self.ring
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn push(&self, ev: TraceEvent) {
        let mut r = self.ring();
        if r.events.len() >= r.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back(ev);
    }

    /// Record a complete event (`"X"`) with explicit cycle-domain
    /// timestamps: `[ts, ts + dur)`.
    pub fn complete_at(&self, name: &str, tid: u64, ts: u64, dur: u64) {
        self.push(TraceEvent {
            name: name.to_string(),
            ph: EventPhase::Complete,
            ts,
            dur,
            tid,
            value: None,
        });
    }

    /// Record an instant event (`"i"`) at an explicit cycle timestamp.
    pub fn instant_at(&self, name: &str, tid: u64, ts: u64) {
        self.push(TraceEvent {
            name: name.to_string(),
            ph: EventPhase::Instant,
            ts,
            dur: 0,
            tid,
            value: None,
        });
    }

    /// Record a counter sample (`"C"`) at an explicit cycle timestamp —
    /// the per-app share time-series tracks are built from these.
    pub fn counter_at(&self, name: &str, tid: u64, ts: u64, value: f64) {
        self.push(TraceEvent {
            name: name.to_string(),
            ph: EventPhase::Counter,
            ts,
            dur: 0,
            tid,
            value: Some(value),
        });
    }

    /// Start a wall-clock span; the interval is recorded when the guard
    /// drops. Usually invoked through `obs_span!` so it compiles away
    /// without the `trace` feature.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Events currently held (dropped events excluded).
    pub fn len(&self) -> usize {
        self.ring().events.len()
    }

    /// True when no event is held.
    pub fn is_empty(&self) -> bool {
        self.ring().events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring().dropped
    }

    /// Copy out the held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring().events.iter().cloned().collect()
    }

    /// Export the held events as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form both `chrome://tracing` and
    /// Perfetto accept). Deterministic given deterministic events.
    pub fn export_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&ev.name, &mut out);
            out.push_str("\",\"ph\":\"");
            out.push_str(match ev.ph {
                EventPhase::Complete => "X",
                EventPhase::Instant => "i",
                EventPhase::Counter => "C",
            });
            out.push_str("\",\"ts\":");
            out.push_str(&ev.ts.to_string());
            if ev.ph == EventPhase::Complete {
                out.push_str(",\"dur\":");
                out.push_str(&ev.dur.to_string());
            }
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&ev.tid.to_string());
            match ev.ph {
                EventPhase::Instant => out.push_str(",\"s\":\"t\""),
                EventPhase::Counter => {
                    let v = ev.value.unwrap_or(0.0);
                    let v = if v.is_finite() { v } else { 0.0 };
                    out.push_str(",\"args\":{\"value\":");
                    out.push_str(&format!("{v}"));
                    out.push('}');
                }
                EventPhase::Complete => {}
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    fn elapsed_us(&self) -> u64 {
        // Saturating cast: a span outliving 2^64 µs is not a real case.
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// RAII wall-clock span: records a complete event on drop, timed from the
/// owning tracer's creation instant.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.tracer.elapsed_us();
        let dur = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            ph: EventPhase::Complete,
            ts: end.saturating_sub(dur),
            dur,
            tid: 0,
            value: None,
        });
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_drops_oldest() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.instant_at("e", 0, i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn cycle_domain_events_are_deterministic() {
        let mk = || {
            let t = Tracer::new(16);
            t.complete_at("epoch", 0, 100, 50);
            t.counter_at("share[0]", 0, 100, 0.25);
            t.instant_at("repartition", 1, 150);
            t.export_chrome_json()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn export_shape_contains_required_fields() {
        let t = Tracer::new(8);
        t.complete_at("win\"dow", 2, 10, 5);
        t.counter_at("q", 1, 11, 3.5);
        t.instant_at("mark", 0, 12);
        let json = t.export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":5"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3.5}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\\\"dow"), "name escaped: {json}");
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Tracer::new(8);
        {
            let _g = t.span("cold-path");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "cold-path");
        assert_eq!(evs[0].ph, EventPhase::Complete);
    }

    #[test]
    fn clone_shares_the_ring() {
        let a = Tracer::new(8);
        let b = a.clone();
        b.instant_at("x", 0, 1);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn non_finite_counter_values_export_as_zero() {
        let t = Tracer::new(4);
        t.counter_at("bad", 0, 1, f64::NAN);
        assert!(t.export_chrome_json().contains("\"value\":0"));
    }
}
