//! Property-based tests for the log-bucketed histogram: bucketing is
//! total and self-consistent over the entire `f64` bit space, and the
//! bucket-upper-bound quantile estimator stays within its advertised
//! ≤ 25% relative-error envelope for values in the resolved range.
//!
//! Pure arithmetic plus relaxed atomics — no clocks, no threads — so the
//! whole file runs under miri alongside the registry unit tests.

// Strategy helpers run outside #[test] functions, so the tests exemption
// does not reach them; unwraps on generator-validated data are fine.
#![allow(clippy::unwrap_used)]

use bwpart_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// Strategy: any f64 bit pattern — normals, subnormals, zeros, infinities
/// and NaNs all included.
fn arb_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Strategy: finite positive values comfortably inside the resolved
/// octave range, where the ≤ 25% bucket-width guarantee applies.
fn arb_resolved() -> impl Strategy<Value = f64> {
    1e-9f64..1e12
}

proptest! {
    /// Every f64 maps to a valid bucket, and resolved-range values land in
    /// a bucket whose bounds actually contain them.
    #[test]
    fn bucket_index_is_total_and_containing(v in arb_bits()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        if v.is_finite() && v > 0.0 && i > 0 && i < HIST_BUCKETS - 1 {
            prop_assert!(bucket_lower(i) <= v, "v={v} below bucket {i}");
            prop_assert!(v < bucket_upper(i), "v={v} above bucket {i}");
        }
        if v.is_nan() || v <= 0.0 {
            prop_assert_eq!(i, 0, "non-positive/NaN must underflow");
        }
    }

    /// Bucketing preserves order: a larger value never lands in an
    /// earlier bucket.
    #[test]
    fn bucket_index_is_monotone(a in arb_resolved(), b in arb_resolved()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi), "lo={lo} hi={hi}");
    }

    /// Recording never loses observations, quantiles are monotone in `q`,
    /// and every quantile estimate brackets the sample range with the
    /// documented one-bucket (≤ 25%) slack.
    #[test]
    fn quantiles_bracket_the_sample(values in prop::collection::vec(arb_resolved(), 1..64)) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);

        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        let qs = [0.0, 0.25, 0.5, 0.95, 0.99, 1.0];
        let mut prev = 0.0f64;
        for &q in &qs {
            let est = h.quantile(q);
            prop_assert!(est >= prev, "quantile not monotone at q={q}");
            // The estimator returns the upper bound of the bucket holding
            // the order statistic: strictly above the smallest sample and
            // at most one bucket width (25%) above the largest.
            prop_assert!(est > min * (1.0 - 1e-12), "q={q} est={est} min={min}");
            prop_assert!(est <= max * 1.25 * (1.0 + 1e-12), "q={q} est={est} max={max}");
            prev = est;
        }
    }

    /// The milli-unit sum accumulator tracks the exact sum to within the
    /// rounding budget (0.5 milli-units per observation).
    #[test]
    fn sum_tracks_exact_within_rounding(values in prop::collection::vec(0.001f64..1e6, 0..64)) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let exact: f64 = values.iter().sum();
        let budget = 0.0005 * values.len() as f64 + exact * 1e-9 + 1e-9;
        prop_assert!(
            (h.sum() - exact).abs() <= budget,
            "sum={} exact={exact} budget={budget}",
            h.sum()
        );
    }

    /// Recording arbitrary bit patterns (NaN, ±inf, negatives, subnormals)
    /// never panics, never misses the count, and keeps the sum finite.
    #[test]
    fn record_is_total_over_all_bit_patterns(values in prop::collection::vec(arb_bits(), 0..64)) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!(h.sum().is_finite());
        // Overflow resolves to the finite bucket lower bound (2^64), so the
        // estimator never leaks an infinity regardless of input.
        prop_assert!(h.quantile(0.5).is_finite());
    }
}
