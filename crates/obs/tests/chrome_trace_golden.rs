//! Golden-file test for the Chrome trace-event exporter: a fixed set of
//! cycle-domain events must serialize byte-for-byte to the checked-in
//! `golden/chrome_trace.json`, and the export must satisfy the trace-event
//! schema both `chrome://tracing` and Perfetto require.
//!
//! Only the `*_at` (explicit-timestamp) recorders appear here — wall-clock
//! spans are nondeterministic by construction and have their own unit
//! tests in `trace.rs`.

use bwpart_obs::Tracer;

const GOLDEN: &str = include_str!("golden/chrome_trace.json");

/// The fixture timeline: one epoch window per app, a phase-boundary
/// instant, and two share counter samples — the event mix `bwpart trace`
/// emits, at fixed cycle timestamps.
fn fixture_tracer() -> Tracer {
    let t = Tracer::new(16);
    t.complete_at("epoch", 0, 100, 50);
    t.complete_at("ff_jump", 1, 160, 40);
    t.instant_at("profile_end", 0, 200);
    t.counter_at("share", 2, 200, 0.25);
    t.counter_at("share", 3, 200, 0.75);
    t
}

#[test]
fn export_matches_golden_file_exactly() {
    let json = fixture_tracer().export_chrome_json();
    assert_eq!(
        json,
        GOLDEN.trim_end(),
        "Chrome-trace export drifted from tests/golden/chrome_trace.json; \
         viewers parse this format, so update the golden only for a \
         deliberate, viewer-verified format change"
    );
}

#[test]
fn export_satisfies_trace_event_schema() {
    let json = fixture_tracer().export_chrome_json();
    let v = serde_json::from_str::<serde_json::Value>(&json).expect("export must be valid JSON");

    let events = v
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("top-level traceEvents array");
    assert_eq!(events.len(), 5);
    assert_eq!(
        v.get("displayTimeUnit").and_then(serde_json::Value::as_str),
        Some("ms")
    );

    for ev in events {
        let name = ev.get("name").and_then(serde_json::Value::as_str);
        assert!(name.is_some_and(|n| !n.is_empty()), "named event: {ev:?}");
        let ph = ev
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .expect("phase");
        assert!(ev.get("ts").and_then(serde_json::Value::as_u64).is_some());
        assert_eq!(ev.get("pid").and_then(serde_json::Value::as_u64), Some(1));
        assert!(ev.get("tid").and_then(serde_json::Value::as_u64).is_some());
        match ph {
            // Complete events carry a duration.
            "X" => {
                assert!(
                    ev.get("dur").and_then(serde_json::Value::as_u64).is_some(),
                    "X event needs dur: {ev:?}"
                );
            }
            // Thread-scoped instants.
            "i" => {
                assert_eq!(ev.get("s").and_then(serde_json::Value::as_str), Some("t"));
            }
            // Counter tracks carry a numeric args.value.
            "C" => {
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(serde_json::Value::as_f64);
                assert!(value.is_some(), "C event needs args.value: {ev:?}");
            }
            other => panic!("unexpected phase {other:?} in {ev:?}"),
        }
    }
}

#[test]
fn golden_round_trips_through_the_ring() {
    // Reading the events back and re-exporting is a fixed point — the
    // ring stores exactly what the exporter serializes.
    let t = fixture_tracer();
    let copy = Tracer::new(16);
    for ev in t.events() {
        match ev.ph {
            bwpart_obs::EventPhase::Complete => copy.complete_at(&ev.name, ev.tid, ev.ts, ev.dur),
            bwpart_obs::EventPhase::Instant => copy.instant_at(&ev.name, ev.tid, ev.ts),
            bwpart_obs::EventPhase::Counter => {
                copy.counter_at(&ev.name, ev.tid, ev.ts, ev.value.unwrap_or(0.0));
            }
        }
    }
    assert_eq!(copy.export_chrome_json(), GOLDEN.trim_end());
}
