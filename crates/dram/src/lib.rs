#![warn(missing_docs)]

//! # bwpart-dram — cycle-level DDR DRAM subsystem simulator
//!
//! A from-scratch substitute for DRAMSim2, providing the off-chip memory
//! substrate the paper's evaluation runs on (Table II: DDR2-400/PC3200,
//! close-page policy, 8-byte data bus, 12.5 ns tRP-tRCD-CL, 32 banks,
//! channel/row/col/bank/rank address mapping).
//!
//! ## Model
//!
//! The simulator operates at *transaction* granularity with *command-level
//! timing*: each 64-byte line transfer is an ACT + RD/WR (+ implicit
//! precharge under the close-page policy, or an explicit PRE on a row
//! conflict under open-page). All inter-command constraints are enforced in
//! CPU-cycle resolution:
//!
//! * per-bank: tRC/tRAS/tRP/tRCD/CL/CWL/tWR/tRTP state machine,
//! * per-rank: tRRD and the tFAW four-activate window, periodic refresh
//!   blackouts (tREFI/tRFC),
//! * per-channel: data-bus occupancy (tBURST), write→read (tWTR) and
//!   read→write turnaround, one transaction start per DRAM clock.
//!
//! Every timing parameter is specified in nanoseconds and converted to CPU
//! cycles, so "scale bandwidth by raising only the bus frequency" (the
//! paper's Section VI-C methodology) is expressed directly: latency
//! parameters stay fixed in ns while `tCK` shrinks.
//!
//! The engine also exposes *blocking attribution* — which application's
//! in-flight traffic is currently blocking a given transaction — which the
//! memory controller uses for the paper's interference counters
//! (Section IV-C).
//!
//! ## Quick example
//!
//! ```
//! use bwpart_dram::{DramConfig, DramSystem, MemTransaction};
//!
//! let cfg = DramConfig::ddr2_400();
//! let mut dram = DramSystem::new(cfg);
//! let txn = MemTransaction { app: 0, addr: 0x4000, is_write: false };
//! let now = 0;
//! assert!(dram.can_issue(&txn, now));
//! let completion = dram.issue(&txn, now);
//! assert!(completion.done_cycle > now);
//! ```

pub mod address;
pub mod bank;
pub mod channel;
pub mod config;
pub mod dram;
pub mod obs;
pub mod soa;
pub mod stats;

pub use address::{AddressMapper, Location, MappingScheme};
pub use config::{DramConfig, PagePolicy, TimingNs};
pub use dram::{Completion, DramSystem, MemTransaction, ProbeCache, SchedProbe};
pub use obs::DramObsHooks;
pub use soa::ChannelCore;
pub use stats::DramStats;
