//! DRAM-side statistics: served transactions, row-buffer outcomes, bus
//! utilization and per-application service counts.

use serde::{Deserialize, Serialize};

use crate::bank::AccessKind;

/// Aggregated counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total transactions served (reads + writes).
    pub served: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Row-buffer hits (open-page only).
    pub row_hits: u64,
    /// Row misses (bank was closed).
    pub row_misses: u64,
    /// Row conflicts (open-page, wrong row open).
    pub row_conflicts: u64,
    /// Total CPU cycles the data bus carried bursts.
    pub bus_busy_cycles: u64,
    /// Per-application served-transaction counts.
    pub per_app_served: Vec<u64>,
    /// Per-application total queuing+service latency (arrival → data end),
    /// accumulated in CPU cycles; divide by `per_app_served` for averages.
    pub per_app_latency: Vec<u64>,
    /// Per-flat-bank access counts.
    pub per_bank_served: Vec<u64>,
}

impl DramStats {
    /// Create counters sized for `apps` applications and `banks` banks.
    pub fn new(apps: usize, banks: usize) -> Self {
        DramStats {
            per_app_served: vec![0; apps],
            per_app_latency: vec![0; apps],
            per_bank_served: vec![0; banks],
            ..Default::default()
        }
    }

    /// Record one served transaction.
    pub fn record(
        &mut self,
        app: usize,
        flat_bank: usize,
        is_write: bool,
        kind: AccessKind,
        burst_cycles: u64,
        latency: u64,
    ) {
        self.served += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        match kind {
            AccessKind::RowHit => self.row_hits += 1,
            AccessKind::RowMiss => self.row_misses += 1,
            AccessKind::RowConflict => self.row_conflicts += 1,
        }
        self.bus_busy_cycles += burst_cycles;
        if app < self.per_app_served.len() {
            self.per_app_served[app] += 1;
            self.per_app_latency[app] += latency;
        }
        if flat_bank < self.per_bank_served.len() {
            self.per_bank_served[flat_bank] += 1;
        }
    }

    /// Data-bus utilization over `elapsed` cycles (0..=1).
    pub fn bus_utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Row-buffer hit rate among all served transactions (open-page).
    pub fn row_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.served as f64
        }
    }

    /// Average service latency (arrival to data end) for `app`.
    pub fn avg_latency(&self, app: usize) -> f64 {
        if self.per_app_served.get(app).copied().unwrap_or(0) == 0 {
            0.0
        } else {
            self.per_app_latency[app] as f64 / self.per_app_served[app] as f64
        }
    }

    /// Reset all counters, keeping dimensions (phase boundaries).
    pub fn reset(&mut self) {
        let apps = self.per_app_served.len();
        let banks = self.per_bank_served.len();
        *self = DramStats::new(apps, banks);
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = DramStats::new(2, 4);
        s.record(0, 1, false, AccessKind::RowMiss, 100, 250);
        s.record(1, 1, true, AccessKind::RowHit, 100, 400);
        s.record(0, 3, false, AccessKind::RowConflict, 100, 150);
        assert_eq!(s.served, 3);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.per_app_served, vec![2, 1]);
        assert_eq!(s.per_bank_served, vec![0, 2, 0, 1]);
        assert!((s.avg_latency(0) - 200.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_over_elapsed() {
        let mut s = DramStats::new(1, 1);
        s.record(0, 0, false, AccessKind::RowMiss, 100, 100);
        s.record(0, 0, false, AccessKind::RowMiss, 100, 100);
        assert!((s.bus_utilization(1000) - 0.2).abs() < 1e-12);
        assert_eq!(s.bus_utilization(0), 0.0);
    }

    #[test]
    fn out_of_range_app_does_not_panic() {
        let mut s = DramStats::new(1, 1);
        s.record(7, 9, false, AccessKind::RowMiss, 100, 100);
        assert_eq!(s.served, 1);
        assert_eq!(s.per_app_served, vec![0]);
        assert_eq!(s.avg_latency(7), 0.0);
    }

    #[test]
    fn reset_preserves_dimensions() {
        let mut s = DramStats::new(3, 8);
        s.record(2, 5, true, AccessKind::RowHit, 10, 10);
        s.reset();
        assert_eq!(s.served, 0);
        assert_eq!(s.per_app_served.len(), 3);
        assert_eq!(s.per_bank_served.len(), 8);
    }
}
