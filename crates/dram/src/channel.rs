//! Channel-level coordination: rank ACT windows (tRRD/tFAW), refresh
//! blackouts, data-bus occupancy and turnaround, and the one-transaction-
//! start-per-DRAM-clock command-bus approximation.
//!
//! The channel answers two questions for the memory controller:
//!
//! 1. *when* could a transaction to a given location start (and with what
//!    command structure), and
//! 2. if it cannot start now, *whose* traffic is blocking it — the paper's
//!    interference-attribution signal (Section IV-C).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bank::{AccessKind, Bank, Timings};
use crate::config::{DramConfig, PagePolicy};

/// Why a transaction cannot start at the probed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// The target bank's timing state forbids the first command.
    Bank,
    /// The shared data bus (occupancy or turnaround) forbids it.
    DataBus,
    /// Rank-level ACT constraints (tRRD/tFAW) forbid it.
    RankAct,
    /// The rank is inside a refresh blackout.
    Refresh,
    /// Command-bus slot taken this DRAM clock.
    CommandSlot,
}

/// Outcome of probing a channel for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelProbe {
    /// Earliest cycle the transaction's first command may be driven.
    pub start: u64,
    /// Command structure (hit/miss/conflict).
    pub kind: AccessKind,
    /// If `start` is later than the probed `now`: the dominating constraint.
    pub block: Option<BlockReason>,
    /// Application owning the blocking resource, if the constraint stems
    /// from another application's traffic.
    pub blocker: Option<usize>,
}

/// One DRAM channel: banks, rank state and the shared data bus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Channel {
    t: Timings,
    policy: PagePolicy,
    ranks: usize,
    banks_per_rank: usize,
    banks: Vec<Bank>,
    /// Recent ACT times per rank (bounded to the 4 most recent for tFAW).
    rank_acts: Vec<VecDeque<u64>>,
    /// Owner of the most recent ACT per rank.
    rank_act_owner: Vec<Option<usize>>,
    /// Cycle at which the data bus becomes free.
    bus_free: u64,
    /// Owner of the burst currently/last on the bus.
    bus_owner: Option<usize>,
    /// Whether the last burst was a write (turnaround bookkeeping).
    bus_last_write: bool,
    /// End of the last *write* burst (tWTR reference point).
    last_write_data_end: u64,
    /// Last transaction-start cycle (one start per DRAM clock).
    last_start: Option<u64>,
    /// Per-rank marker: refresh blackouts applied to bank state up to here.
    refresh_applied: Vec<u64>,
    /// Per-rank refresh stagger offset, precomputed at construction
    /// (`(2·rank + 1)·tREFI / (2·ranks)`).
    refresh_phase: Vec<u64>,
}

/// `n / d` taking the much cheaper 32-bit hardware divide when both
/// operands fit (they do for every realistic cycle count; the u64 path is
/// the correctness fallback for extremely long runs).
#[inline]
fn fast_div(n: u64, d: u64) -> u64 {
    match (u32::try_from(n), u32::try_from(d)) {
        (Ok(n32), Ok(d32)) => u64::from(n32 / d32),
        _ => n / d,
    }
}

impl Channel {
    /// Build an idle channel from the configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        let t = Timings::from_config(cfg);
        Channel {
            t,
            policy: cfg.page_policy,
            ranks: cfg.ranks,
            banks_per_rank: cfg.banks_per_rank,
            banks: vec![Bank::default(); cfg.ranks * cfg.banks_per_rank],
            rank_acts: vec![VecDeque::with_capacity(4); cfg.ranks],
            rank_act_owner: vec![None; cfg.ranks],
            bus_free: 0,
            bus_owner: None,
            bus_last_write: false,
            last_write_data_end: 0,
            last_start: None,
            refresh_applied: vec![0; cfg.ranks],
            refresh_phase: (0..cfg.ranks as u64)
                .map(|r| (2 * r + 1) * t.trefi / (2 * cfg.ranks as u64))
                .collect(),
        }
    }

    /// The channel's timing table.
    pub fn timings(&self) -> &Timings {
        &self.t
    }

    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        debug_assert!(rank < self.ranks && bank < self.banks_per_rank);
        rank * self.banks_per_rank + bank
    }

    /// Read-only access to a bank (stats/tests).
    pub fn bank(&self, rank: usize, bank: usize) -> &Bank {
        &self.banks[self.bank_index(rank, bank)]
    }

    /// Align `cycle` up to the DRAM command-clock grid.
    fn align_up(&self, cycle: u64) -> u64 {
        let t = self.t.tck;
        fast_div(cycle + (t - 1), t) * t
    }

    /// The refresh blackout window `[start, end)` that covers or precedes
    /// `cycle` for `rank`, staggered across ranks (half-slot offset so no
    /// rank refreshes at cycle 0).
    fn blackout_before(&self, rank: usize, cycle: u64) -> (u64, u64) {
        let phase = self.refresh_phase[rank];
        if cycle < phase {
            return (0, 0); // before the first refresh of this rank
        }
        let k = fast_div(cycle - phase, self.t.trefi);
        let start = phase + k * self.t.trefi;
        (start, start + self.t.trfc)
    }

    /// Push `cycle` out of any refresh blackout for `rank`.
    fn avoid_blackout(&self, rank: usize, cycle: u64) -> u64 {
        let (start, end) = self.blackout_before(rank, cycle);
        if cycle >= start && cycle < end {
            end
        } else {
            cycle
        }
    }

    /// Lazily apply refresh effects (row closure, bank busy) for blackouts
    /// that began before `upto`.
    fn apply_refreshes(&mut self, rank: usize, upto: u64) {
        let (start, end) = self.blackout_before(rank, upto);
        if end > 0 && start >= self.refresh_applied[rank] {
            for b in 0..self.banks_per_rank {
                let idx = self.bank_index(rank, b);
                self.banks[idx].refresh_until(end);
            }
            self.refresh_applied[rank] = end;
        }
    }

    /// Fold every raw (unaligned, refresh-unaware) lower bound on a
    /// transaction's start into the dominating `(start, reason, blocker)`
    /// triple, starting from `now`. Shared by [`probe`](Self::probe) and
    /// [`issuable_at`](Self::issuable_at) so the two can never diverge.
    fn raw_probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> (u64, BlockReason, Option<usize>, AccessKind) {
        let t = &self.t;
        let b = &self.banks[self.bank_index(rank, bank)];
        let bank_probe = b.probe(row, self.policy, t);
        let kind = bank_probe.kind;
        let cas_off = kind.cas_offset(t);
        let act_off = match kind {
            AccessKind::RowHit => None,
            AccessKind::RowMiss => Some(0),
            AccessKind::RowConflict => Some(t.trp),
        };
        let data_off = cas_off + if is_write { t.cwl } else { t.cl };

        // Fold the lower bounds on `start` inline, keeping the dominating
        // constraint's reason/owner. This runs once per scheduling probe —
        // the controller's hottest path — so the bounds are accumulated
        // without any intermediate collection. Order mirrors the documented
        // precedence: bank, rank ACT windows, data bus, command slot.
        let (mut start, mut reason, mut blocker) = (now, BlockReason::Bank, None);
        let mut fold = |lb: u64, r: BlockReason, owner: Option<usize>| {
            if lb > start {
                start = lb;
                reason = r;
                blocker = owner;
            }
        };
        fold(bank_probe.earliest_start, BlockReason::Bank, b.last_owner);

        if let Some(aoff) = act_off {
            // tRRD from the last ACT in this rank.
            if let Some(&last) = self.rank_acts[rank].back() {
                let lb = (last + t.trrd).saturating_sub(aoff);
                fold(lb, BlockReason::RankAct, self.rank_act_owner[rank]);
            }
            // tFAW: the 4th-most-recent ACT gates a 5th.
            if self.rank_acts[rank].len() >= 4 {
                let oldest = self.rank_acts[rank][self.rank_acts[rank].len() - 4];
                let lb = (oldest + t.tfaw).saturating_sub(aoff);
                fold(lb, BlockReason::RankAct, self.rank_act_owner[rank]);
            }
        }

        // Data bus occupancy, with turnaround/rank-switch gaps.
        let mut bus_ready = self.bus_free;
        if self.bus_owner.is_some() {
            if self.bus_last_write && !is_write {
                // Write-to-read: the read CAS must wait tWTR after the last
                // write data beat; express as a data-start bound.
                let cas_lb = self.last_write_data_end + t.twtr;
                bus_ready = bus_ready.max(cas_lb + if is_write { t.cwl } else { t.cl });
            } else if !self.bus_last_write && is_write {
                // Read-to-write: one clock of bus turnaround.
                bus_ready = bus_ready.max(self.bus_free + t.tck);
            }
            // Rank-to-rank switch gaps (tRTRS) are not modeled: with the
            // paper's rank-interleaved mapping every consecutive line
            // changes rank, and charging a bubble per line would cap the
            // bus at ~80% of its nominal bandwidth — the paper's Table III
            // data (lbm alone reaches 94% of peak) shows their testbed did
            // not pay such a cost.
        }
        fold(
            bus_ready.saturating_sub(data_off),
            BlockReason::DataBus,
            self.bus_owner,
        );

        // Command-slot: one transaction start per DRAM clock.
        if let Some(last) = self.last_start {
            fold(last + t.tck, BlockReason::CommandSlot, self.bus_owner);
        }

        (start, reason, blocker, kind)
    }

    /// Push `start` onto the command-clock grid and out of refresh
    /// blackouts (iterate: pushing past a blackout breaks alignment because
    /// blackout ends are arbitrary, so re-align). Returns the final start
    /// and whether a refresh moved it.
    fn align_and_avoid_refresh(&self, rank: usize, mut start: u64) -> (u64, bool) {
        let mut refreshed = false;
        for _ in 0..4 {
            let aligned = self.align_up(start);
            let moved = self.avoid_blackout(rank, aligned);
            if moved != aligned {
                start = moved;
                refreshed = true;
            } else {
                return (aligned, refreshed);
            }
        }
        (start, refreshed)
    }

    /// Compute the earliest start for a transaction and, when it is blocked
    /// relative to `now`, the dominating constraint and its owner.
    pub fn probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> ChannelProbe {
        let (raw, mut reason, mut blocker, kind) = self.raw_probe(rank, bank, row, is_write, now);
        let (start, refreshed) = self.align_and_avoid_refresh(rank, raw);
        if refreshed {
            reason = BlockReason::Refresh;
            blocker = None;
        }
        ChannelProbe {
            start,
            kind,
            block: if start > now { Some(reason) } else { None },
            blocker: blocker.filter(|_| start > now),
        }
    }

    /// Whether a transaction's first command could be driven at or before
    /// `now` — exactly `probe(...).start <= now`, but rejected requests
    /// usually resolve on the raw timing bounds alone, skipping the
    /// division-heavy grid-alignment and refresh scan. This is the memory
    /// controller's per-tick scheduling test, run up to `sched_window`
    /// times per pending application, so the cheap-reject path matters.
    pub fn issuable_at(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> Option<AccessKind> {
        let (raw, _, _, kind) = self.raw_probe(rank, bank, row, is_write, now);
        // Alignment and refresh avoidance only ever push the start later,
        // so a raw bound past `now` is already a rejection.
        if raw > now {
            return None;
        }
        let (start, _) = self.align_and_avoid_refresh(rank, raw);
        (start <= now).then_some(kind)
    }

    /// Commit a transaction whose first command is driven at `probe.start`.
    /// Returns `(data_start, data_end)`; `data_end` is the completion cycle
    /// handed back to the requester.
    ///
    /// # Panics
    /// Debug-asserts that the probe was produced for the current state
    /// (`probe.start` respects all constraints).
    pub fn commit(
        &mut self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        app: usize,
        probe: &ChannelProbe,
    ) -> (u64, u64) {
        let start = probe.start;
        self.apply_refreshes(rank, start);
        let t = self.t;
        let idx = self.bank_index(rank, bank);
        // Re-derive the access kind after refresh application (a refresh may
        // have closed the open row the probe saw).
        let kind = self.banks[idx].probe(row, self.policy, &t).kind;
        let (data_start, data_end) =
            self.banks[idx].commit(start, kind, row, is_write, app, self.policy, &t);

        if kind != AccessKind::RowHit {
            let act_time = match kind {
                AccessKind::RowConflict => start + t.trp,
                _ => start,
            };
            let acts = &mut self.rank_acts[rank];
            if acts.len() == 4 {
                acts.pop_front();
            }
            acts.push_back(act_time);
            self.rank_act_owner[rank] = Some(app);
        }

        self.bus_free = data_end;
        self.bus_owner = Some(app);
        self.bus_last_write = is_write;
        if is_write {
            self.last_write_data_end = data_end;
        }
        self.last_start = Some(start);
        (data_start, data_end)
    }

    /// Cycle at which the data bus becomes free (stats/utilization).
    pub fn bus_free_at(&self) -> u64 {
        self.bus_free
    }

    /// Cycle by which every *committed* transaction on this channel has
    /// fully drained: the data bus is free and each bank has finished its
    /// committed work (including auto-precharge). Bursts are serialized on
    /// the data bus, so no committed transaction's data end — and therefore
    /// no pending completion — can lie beyond this cycle. Fast-forward
    /// contracts use it as the memory system's event horizon.
    pub fn quiesce_at(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.busy_until)
            .fold(self.bus_free, u64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> Channel {
        Channel::new(&DramConfig::ddr2_400())
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let ch = channel();
        let p = ch.probe(0, 0, 5, false, 0);
        assert_eq!(p.start, 0);
        assert_eq!(p.block, None);
        assert_eq!(p.kind, AccessKind::RowMiss);
    }

    #[test]
    fn back_to_back_same_bank_waits_for_bank() {
        let mut ch = channel();
        let p = ch.probe(0, 0, 5, false, 0);
        ch.commit(0, 0, 5, false, 0, &p);
        let p2 = ch.probe(0, 0, 6, false, p.start + 25);
        assert!(p2.start >= 225 + 63, "tRAS+tRP at least, got {}", p2.start);
        assert_eq!(p2.block, Some(BlockReason::Bank));
        assert_eq!(p2.blocker, Some(0));
    }

    #[test]
    fn different_banks_overlap_but_share_data_bus() {
        let mut ch = channel();
        let p0 = ch.probe(0, 0, 5, false, 0);
        let (_, de0) = ch.commit(0, 0, 5, false, 0, &p0);
        // A second transaction on another bank can start before the first
        // finishes, but its data must follow the first burst.
        let p1 = ch.probe(0, 1, 5, false, 25);
        assert!(p1.start < de0);
        let (ds1, _) = ch.commit(0, 1, 5, false, 1, &p1);
        assert!(ds1 >= de0, "bursts must not overlap: {ds1} < {de0}");
    }

    #[test]
    fn data_bus_blocking_attributes_owner() {
        let mut ch = channel();
        // Saturate the bus with app 0 on several banks.
        let mut now = 0;
        for b in 0..4 {
            let p = ch.probe(0, b, 1, false, now);
            ch.commit(0, b, 1, false, 0, &p);
            now = p.start + 25;
        }
        // App 1's probe on a fresh bank is bus-blocked by app 0.
        let p = ch.probe(1, 0, 1, false, now);
        assert!(p.start > now);
        assert_eq!(p.blocker, Some(0));
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut ch = channel();
        let pw = ch.probe(0, 0, 1, true, 0);
        let (_, wde) = ch.commit(0, 0, 1, true, 0, &pw);
        let t = *ch.timings();
        let pr = ch.probe(0, 1, 1, false, 25);
        let (rds, _) = ch.commit(0, 1, 1, false, 0, &pr);
        // Read CAS (data - CL) must be at least tWTR after write data end.
        let read_cas = rds - t.cl;
        assert!(
            read_cas >= wde + t.twtr,
            "read CAS {read_cas} < write end {wde} + tWTR {}",
            t.twtr
        );
    }

    #[test]
    fn tfaw_limits_act_rate_per_rank() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut acts = Vec::new();
        let mut now = 0;
        // Five ACTs to five different banks of rank 0.
        for b in 0..5 {
            let p = ch.probe(0, b, 1, false, now);
            ch.commit(0, b, 1, false, 0, &p);
            acts.push(p.start);
            now = p.start + t.tck;
        }
        // The 5th ACT must be ≥ tFAW after the 1st.
        assert!(
            acts[4] >= acts[0] + t.tfaw,
            "acts: {acts:?}, tFAW {}",
            t.tfaw
        );
    }

    #[test]
    fn starts_are_aligned_and_unique_per_clock() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut last = None;
        let mut now = 0;
        for b in 0..6 {
            let p = ch.probe(0, b % 8, 1, false, now);
            assert_eq!(p.start % t.tck, 0, "unaligned start {}", p.start);
            if let Some(prev) = last {
                assert!(p.start > prev);
            }
            ch.commit(0, b % 8, 1, false, 0, &p);
            last = Some(p.start);
            now = p.start;
        }
    }

    #[test]
    fn refresh_blackout_delays_start() {
        let ch = channel();
        let t = *ch.timings();
        // Rank 0's first blackout begins at tREFI/8 (half-slot stagger over
        // 4 ranks); a probe inside it is pushed to the blackout end.
        let phase = t.trefi / 8;
        let probe_at = phase + t.tck;
        let p = ch.probe(0, 0, 1, false, probe_at);
        assert!(
            p.start >= phase + t.trfc,
            "start {} vs {}",
            p.start,
            phase + t.trfc
        );
        assert_eq!(p.block, Some(BlockReason::Refresh));
        assert_eq!(p.blocker, None);
        // Rank 1 is staggered to 3·tREFI/8, so the same instant is clear.
        let p1 = ch.probe(1, 0, 1, false, probe_at);
        assert_eq!(p1.block, None);
    }

    #[test]
    fn open_page_policy_produces_row_hits() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut ch = Channel::new(&cfg);
        let t = *ch.timings();
        let p = ch.probe(0, 0, 7, false, t.trfc); // skip rank-0 blackout
        assert_eq!(p.kind, AccessKind::RowMiss);
        ch.commit(0, 0, 7, false, 0, &p);
        let p2 = ch.probe(0, 0, 7, false, p.start + t.tck);
        assert_eq!(p2.kind, AccessKind::RowHit);
        let p3 = ch.probe(0, 0, 8, false, p.start + t.tck);
        assert_eq!(p3.kind, AccessKind::RowConflict);
    }

    #[test]
    fn quiesce_bounds_every_committed_data_end() {
        let mut ch = channel();
        assert_eq!(ch.quiesce_at(), 0, "idle channel has nothing pending");
        let mut now = 0;
        for b in 0..6 {
            let p = ch.probe(0, b % 8, 1, b % 3 == 0, now);
            let (_, de) = ch.commit(0, b % 8, 1, b % 3 == 0, 0, &p);
            assert!(
                de <= ch.quiesce_at(),
                "data end {de} beyond quiesce {}",
                ch.quiesce_at()
            );
            now = p.start + 25;
        }
        // The bank's auto-precharge tail extends past the last burst.
        assert!(ch.quiesce_at() >= ch.bus_free_at());
    }

    /// Exhaustive legality check: for random traffic, committed bursts never
    /// overlap on the data bus and same-bank ACT spacing ≥ tRAS + tRP.
    #[test]
    fn random_traffic_is_timing_legal() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut state = 0x12345u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut last_burst_end = 0u64;
        let mut last_act_per_bank = vec![None::<u64>; 32];
        let mut now = 0u64;
        for _ in 0..500 {
            let rank = (rng() % 4) as usize;
            let bank = (rng() % 8) as usize;
            let row = (rng() % 1024) as usize;
            let is_write = rng() % 4 == 0;
            let app = (rng() % 4) as usize;
            let p = ch.probe(rank, bank, row, is_write, now);
            let (ds, de) = ch.commit(rank, bank, row, is_write, app, &p);
            assert!(
                ds >= last_burst_end,
                "burst overlap: {ds} < {last_burst_end}"
            );
            last_burst_end = de;
            let fb = rank * 8 + bank;
            if let Some(prev) = last_act_per_bank[fb] {
                assert!(
                    p.start >= prev + t.tras + t.trp,
                    "bank {fb} ACT spacing violated: {} < {prev} + tRC",
                    p.start
                );
            }
            last_act_per_bank[fb] = Some(p.start);
            now = p.start;
        }
    }
}
