//! Channel-level coordination: rank ACT windows (tRRD/tFAW), refresh
//! blackouts, data-bus occupancy and turnaround, and the one-transaction-
//! start-per-DRAM-clock command-bus approximation.
//!
//! The channel answers two questions for the memory controller:
//!
//! 1. *when* could a transaction to a given location start (and with what
//!    command structure), and
//! 2. if it cannot start now, *whose* traffic is blocking it — the paper's
//!    interference-attribution signal (Section IV-C).
//!
//! Since the struct-of-arrays rebuild, [`Channel`] is a thin view over
//! [`ChannelCore`](crate::soa::ChannelCore): the flat-array timing core
//! owns every bank wheel, ACT ring, and bus scalar, and this type only
//! preserves the established public surface (including [`Channel::bank`],
//! which materializes an object-model [`Bank`] snapshot from the flat
//! lanes for stats and tests).

use serde::{Deserialize, Serialize};

use crate::bank::{AccessKind, Bank, Timings};
use crate::config::DramConfig;
use crate::soa::ChannelCore;

/// Why a transaction cannot start at the probed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// The target bank's timing state forbids the first command.
    Bank,
    /// The shared data bus (occupancy or turnaround) forbids it.
    DataBus,
    /// Rank-level ACT constraints (tRRD/tFAW) forbid it.
    RankAct,
    /// The rank is inside a refresh blackout.
    Refresh,
    /// Command-bus slot taken this DRAM clock.
    CommandSlot,
}

/// Outcome of probing a channel for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelProbe {
    /// Earliest cycle the transaction's first command may be driven.
    pub start: u64,
    /// Command structure (hit/miss/conflict).
    pub kind: AccessKind,
    /// If `start` is later than the probed `now`: the dominating constraint.
    pub block: Option<BlockReason>,
    /// Application owning the blocking resource, if the constraint stems
    /// from another application's traffic.
    pub blocker: Option<usize>,
}

/// One DRAM channel: banks, rank state and the shared data bus. A thin
/// view over the struct-of-arrays [`ChannelCore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Channel {
    core: ChannelCore,
}

impl Channel {
    /// Build an idle channel from the configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            core: ChannelCore::new(cfg),
        }
    }

    /// The channel's timing table.
    pub fn timings(&self) -> &Timings {
        self.core.timings()
    }

    /// The flat struct-of-arrays timing core backing this channel.
    pub fn core(&self) -> &ChannelCore {
        &self.core
    }

    /// Object-model snapshot of a bank, materialized from the flat lanes
    /// (stats/tests compatibility; the simulation never round-trips it).
    pub fn bank(&self, rank: usize, bank: usize) -> Bank {
        let (act_time, pre_ready, act_ready, cas_ready, busy_until) =
            self.core.bank_wheels(rank, bank);
        Bank {
            open_row: self.core.open_row(rank, bank),
            act_time,
            pre_ready,
            act_ready,
            cas_ready,
            last_owner: self.core.bank_owner(rank, bank),
            busy_until,
        }
    }

    /// Compute the earliest start for a transaction and, when it is blocked
    /// relative to `now`, the dominating constraint and its owner.
    pub fn probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> ChannelProbe {
        self.core.probe(rank, bank, row, is_write, now)
    }

    /// Whether a transaction's first command could be driven at or before
    /// `now` — exactly `probe(...).start <= now`, but rejected requests
    /// usually resolve on the raw timing bounds alone, skipping the
    /// division-heavy grid-alignment and refresh scan. This is the memory
    /// controller's per-tick scheduling test, run up to `sched_window`
    /// times per pending application, so the cheap-reject path matters.
    pub fn issuable_at(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> Option<AccessKind> {
        self.core.issuable_at(rank, bank, row, is_write, now)
    }

    /// Commit a transaction whose first command is driven at `probe.start`.
    /// Returns `(data_start, data_end)`; `data_end` is the completion cycle
    /// handed back to the requester.
    pub fn commit(
        &mut self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        app: usize,
        probe: &ChannelProbe,
    ) -> (u64, u64) {
        let (data_start, data_end, _) =
            self.core
                .commit(rank, bank, row, is_write, app, probe.start);
        (data_start, data_end)
    }

    /// Cycle at which the data bus becomes free (stats/utilization).
    pub fn bus_free_at(&self) -> u64 {
        self.core.bus_free_at()
    }

    /// Cycle by which every *committed* transaction on this channel has
    /// fully drained: the data bus is free and each bank has finished its
    /// committed work (including auto-precharge). Bursts are serialized on
    /// the data bus, so no committed transaction's data end — and therefore
    /// no pending completion — can lie beyond this cycle. Fast-forward
    /// contracts use it as the memory system's event horizon.
    pub fn quiesce_at(&self) -> u64 {
        self.core.quiesce_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagePolicy;

    fn channel() -> Channel {
        Channel::new(&DramConfig::ddr2_400())
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let ch = channel();
        let p = ch.probe(0, 0, 5, false, 0);
        assert_eq!(p.start, 0);
        assert_eq!(p.block, None);
        assert_eq!(p.kind, AccessKind::RowMiss);
    }

    #[test]
    fn back_to_back_same_bank_waits_for_bank() {
        let mut ch = channel();
        let p = ch.probe(0, 0, 5, false, 0);
        ch.commit(0, 0, 5, false, 0, &p);
        let p2 = ch.probe(0, 0, 6, false, p.start + 25);
        assert!(p2.start >= 225 + 63, "tRAS+tRP at least, got {}", p2.start);
        assert_eq!(p2.block, Some(BlockReason::Bank));
        assert_eq!(p2.blocker, Some(0));
    }

    #[test]
    fn different_banks_overlap_but_share_data_bus() {
        let mut ch = channel();
        let p0 = ch.probe(0, 0, 5, false, 0);
        let (_, de0) = ch.commit(0, 0, 5, false, 0, &p0);
        // A second transaction on another bank can start before the first
        // finishes, but its data must follow the first burst.
        let p1 = ch.probe(0, 1, 5, false, 25);
        assert!(p1.start < de0);
        let (ds1, _) = ch.commit(0, 1, 5, false, 1, &p1);
        assert!(ds1 >= de0, "bursts must not overlap: {ds1} < {de0}");
    }

    #[test]
    fn data_bus_blocking_attributes_owner() {
        let mut ch = channel();
        // Saturate the bus with app 0 on several banks.
        let mut now = 0;
        for b in 0..4 {
            let p = ch.probe(0, b, 1, false, now);
            ch.commit(0, b, 1, false, 0, &p);
            now = p.start + 25;
        }
        // App 1's probe on a fresh bank is bus-blocked by app 0.
        let p = ch.probe(1, 0, 1, false, now);
        assert!(p.start > now);
        assert_eq!(p.blocker, Some(0));
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut ch = channel();
        let pw = ch.probe(0, 0, 1, true, 0);
        let (_, wde) = ch.commit(0, 0, 1, true, 0, &pw);
        let t = *ch.timings();
        let pr = ch.probe(0, 1, 1, false, 25);
        let (rds, _) = ch.commit(0, 1, 1, false, 0, &pr);
        // Read CAS (data - CL) must be at least tWTR after write data end.
        let read_cas = rds - t.cl;
        assert!(
            read_cas >= wde + t.twtr,
            "read CAS {read_cas} < write end {wde} + tWTR {}",
            t.twtr
        );
    }

    #[test]
    fn tfaw_limits_act_rate_per_rank() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut acts = Vec::new();
        let mut now = 0;
        // Five ACTs to five different banks of rank 0.
        for b in 0..5 {
            let p = ch.probe(0, b, 1, false, now);
            ch.commit(0, b, 1, false, 0, &p);
            acts.push(p.start);
            now = p.start + t.tck;
        }
        // The 5th ACT must be ≥ tFAW after the 1st.
        assert!(
            acts[4] >= acts[0] + t.tfaw,
            "acts: {acts:?}, tFAW {}",
            t.tfaw
        );
    }

    #[test]
    fn starts_are_aligned_and_unique_per_clock() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut last = None;
        let mut now = 0;
        for b in 0..6 {
            let p = ch.probe(0, b % 8, 1, false, now);
            assert_eq!(p.start % t.tck, 0, "unaligned start {}", p.start);
            if let Some(prev) = last {
                assert!(p.start > prev);
            }
            ch.commit(0, b % 8, 1, false, 0, &p);
            last = Some(p.start);
            now = p.start;
        }
    }

    #[test]
    fn refresh_blackout_delays_start() {
        let ch = channel();
        let t = *ch.timings();
        // Rank 0's first blackout begins at tREFI/8 (half-slot stagger over
        // 4 ranks); a probe inside it is pushed to the blackout end.
        let phase = t.trefi / 8;
        let probe_at = phase + t.tck;
        let p = ch.probe(0, 0, 1, false, probe_at);
        assert!(
            p.start >= phase + t.trfc,
            "start {} vs {}",
            p.start,
            phase + t.trfc
        );
        assert_eq!(p.block, Some(BlockReason::Refresh));
        assert_eq!(p.blocker, None);
        // Rank 1 is staggered to 3·tREFI/8, so the same instant is clear.
        let p1 = ch.probe(1, 0, 1, false, probe_at);
        assert_eq!(p1.block, None);
    }

    #[test]
    fn open_page_policy_produces_row_hits() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.page_policy = PagePolicy::OpenPage;
        let mut ch = Channel::new(&cfg);
        let t = *ch.timings();
        let p = ch.probe(0, 0, 7, false, t.trfc); // skip rank-0 blackout
        assert_eq!(p.kind, AccessKind::RowMiss);
        ch.commit(0, 0, 7, false, 0, &p);
        let p2 = ch.probe(0, 0, 7, false, p.start + t.tck);
        assert_eq!(p2.kind, AccessKind::RowHit);
        let p3 = ch.probe(0, 0, 8, false, p.start + t.tck);
        assert_eq!(p3.kind, AccessKind::RowConflict);
    }

    #[test]
    fn bank_view_matches_committed_state() {
        let mut ch = channel();
        let p = ch.probe(0, 3, 5, false, 0);
        ch.commit(0, 3, 5, false, 2, &p);
        let b = ch.bank(0, 3);
        assert_eq!(b.open_row, None, "close-page auto-precharges");
        assert_eq!(b.last_owner, Some(2));
        assert!(b.busy_until > 0);
        assert_eq!(b.busy_until, b.act_ready());
        // Untouched bank is idle.
        let idle = ch.bank(1, 0);
        assert_eq!(idle.last_owner, None);
        assert_eq!(idle.busy_until, 0);
    }

    #[test]
    fn quiesce_bounds_every_committed_data_end() {
        let mut ch = channel();
        assert_eq!(ch.quiesce_at(), 0, "idle channel has nothing pending");
        let mut now = 0;
        for b in 0..6 {
            let p = ch.probe(0, b % 8, 1, b % 3 == 0, now);
            let (_, de) = ch.commit(0, b % 8, 1, b % 3 == 0, 0, &p);
            assert!(
                de <= ch.quiesce_at(),
                "data end {de} beyond quiesce {}",
                ch.quiesce_at()
            );
            now = p.start + 25;
        }
        // The bank's auto-precharge tail extends past the last burst.
        assert!(ch.quiesce_at() >= ch.bus_free_at());
    }

    /// Exhaustive legality check: for random traffic, committed bursts never
    /// overlap on the data bus and same-bank ACT spacing ≥ tRAS + tRP.
    #[test]
    fn random_traffic_is_timing_legal() {
        let mut ch = channel();
        let t = *ch.timings();
        let mut state = 0x12345u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut last_burst_end = 0u64;
        let mut last_act_per_bank = vec![None::<u64>; 32];
        let mut now = 0u64;
        for _ in 0..500 {
            let rank = (rng() % 4) as usize;
            let bank = (rng() % 8) as usize;
            let row = (rng() % 1024) as usize;
            let is_write = rng() % 4 == 0;
            let app = (rng() % 4) as usize;
            let p = ch.probe(rank, bank, row, is_write, now);
            let (ds, de) = ch.commit(rank, bank, row, is_write, app, &p);
            assert!(
                ds >= last_burst_end,
                "burst overlap: {ds} < {last_burst_end}"
            );
            last_burst_end = de;
            let fb = rank * 8 + bank;
            if let Some(prev) = last_act_per_bank[fb] {
                assert!(
                    p.start >= prev + t.tras + t.trp,
                    "bank {fb} ACT spacing violated: {} < {prev} + tRC",
                    p.start
                );
            }
            last_act_per_bank[fb] = Some(p.start);
            now = p.start;
        }
    }
}
