//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! Table II specifies the mapping `channel:row:col:bank:rank` — reading
//! MSB→LSB. After the line offset (low `log2(line_bytes)` bits), the least
//! significant field is the **rank**, then **bank**, then **column**, then
//! **row**, then **channel**. Consecutive cache lines therefore interleave
//! across ranks and banks first, maximizing bank-level parallelism —
//! exactly what a close-page system wants.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;

/// Bit-field order of the physical-address decomposition (MSB → LSB
/// notation, as in DRAMSim2). In multi-channel configurations the channel
/// field always occupies the bits directly above the line offset
/// (cache-line channel interleaving) regardless of scheme — the paper's
/// Table II system has one channel, so its `channel:…` prefix is
/// degenerate, and MSB channel bits would leave additional channels
/// unreachable for workloads confined to low physical regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MappingScheme {
    /// `channel:row:col:bank:rank` — the paper's Table II mapping. The
    /// rank/bank fields sit in the lowest bits, so consecutive lines
    /// interleave across ranks and banks (maximal bank parallelism, no
    /// sequential row locality).
    #[default]
    ChRowColBankRank,
    /// `channel:row:bank:rank:col` — the column field sits lowest, so
    /// consecutive lines stay in the same DRAM row (maximal row-buffer
    /// locality for sequential streams, at the cost of bank parallelism).
    ChRowBankRankCol,
}

/// Decoded DRAM coordinates of one cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Line-granular column index within the row.
    pub col: usize,
}

impl Location {
    /// Flat bank identifier within the whole system (for stats arrays).
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        (self.channel * cfg.ranks + self.rank) * cfg.banks_per_rank + self.bank
    }
}

/// Field widths, shifts and scheme for the configured mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    scheme: MappingScheme,
    line_shift: u32,
    rank_bits: u32,
    bank_bits: u32,
    col_bits: u32,
    row_bits: u32,
    channel_bits: u32,
}

fn log2(v: usize) -> u32 {
    debug_assert!(v.is_power_of_two());
    v.trailing_zeros()
}

impl AddressMapper {
    /// Build the mapper from a validated configuration. Columns per row are
    /// derived from an 8 KB row size (line-granular).
    pub fn new(cfg: &DramConfig) -> Self {
        let row_bytes = 8192usize;
        let cols = row_bytes / cfg.line_bytes;
        AddressMapper {
            scheme: cfg.mapping,
            line_shift: log2(cfg.line_bytes),
            rank_bits: log2(cfg.ranks),
            bank_bits: log2(cfg.banks_per_rank),
            col_bits: log2(cols),
            row_bits: log2(cfg.rows),
            channel_bits: log2(cfg.channels),
        }
    }

    /// Total addressable bytes under this mapping.
    pub fn capacity_bytes(&self) -> u64 {
        1u64 << (self.line_shift
            + self.rank_bits
            + self.bank_bits
            + self.col_bits
            + self.row_bits
            + self.channel_bits)
    }

    /// Decode a physical byte address into DRAM coordinates. Addresses
    /// beyond the capacity wrap (high bits are ignored), which lets
    /// synthetic workloads use unbounded address spaces.
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr >> self.line_shift;
        let mut take = |bits: u32| -> usize {
            let v = (a & ((1u64 << bits) - 1)) as usize;
            a >>= bits;
            v
        };
        let channel = take(self.channel_bits);
        match self.scheme {
            MappingScheme::ChRowColBankRank => {
                let rank = take(self.rank_bits);
                let bank = take(self.bank_bits);
                let col = take(self.col_bits);
                let row = take(self.row_bits);
                Location {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
            MappingScheme::ChRowBankRankCol => {
                let col = take(self.col_bits);
                let rank = take(self.rank_bits);
                let bank = take(self.bank_bits);
                let row = take(self.row_bits);
                Location {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
        }
    }

    /// Encode DRAM coordinates back to the canonical byte address of the
    /// line (inverse of [`decode`](Self::decode) for in-range coordinates).
    pub fn encode(&self, loc: &Location) -> u64 {
        let mut a = 0u64;
        let mut shift = self.line_shift;
        let mut put = |v: usize, bits: u32| {
            debug_assert!(bits == 64 || (v as u64) < (1u64 << bits));
            a |= (v as u64) << shift;
            shift += bits;
        };
        put(loc.channel, self.channel_bits);
        match self.scheme {
            MappingScheme::ChRowColBankRank => {
                put(loc.rank, self.rank_bits);
                put(loc.bank, self.bank_bits);
                put(loc.col, self.col_bits);
                put(loc.row, self.row_bits);
            }
            MappingScheme::ChRowBankRankCol => {
                put(loc.col, self.col_bits);
                put(loc.rank, self.rank_bits);
                put(loc.bank, self.bank_bits);
                put(loc.row, self.row_bits);
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> (DramConfig, AddressMapper) {
        let cfg = DramConfig::ddr2_400();
        let m = AddressMapper::new(&cfg);
        (cfg, m)
    }

    #[test]
    fn consecutive_lines_interleave_ranks_then_banks() {
        let (cfg, m) = mapper();
        // Lines 0..4 hit ranks 0..3 of bank 0 (rank bits are lowest).
        for i in 0..cfg.ranks as u64 {
            let loc = m.decode(i * cfg.line_bytes as u64);
            assert_eq!(loc.rank, i as usize);
            assert_eq!(loc.bank, 0);
            assert_eq!(loc.row, 0);
        }
        // Line 4 wraps to rank 0, bank 1.
        let loc = m.decode(cfg.ranks as u64 * cfg.line_bytes as u64);
        assert_eq!(loc.rank, 0);
        assert_eq!(loc.bank, 1);
    }

    #[test]
    fn row_changes_only_after_all_banks_and_cols() {
        let (cfg, m) = mapper();
        let lines_per_row_sweep = (cfg.ranks * cfg.banks_per_rank * (8192 / cfg.line_bytes)) as u64;
        let loc = m.decode((lines_per_row_sweep - 1) * cfg.line_bytes as u64);
        assert_eq!(loc.row, 0);
        let loc = m.decode(lines_per_row_sweep * cfg.line_bytes as u64);
        assert_eq!(loc.row, 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, m) = mapper();
        for addr in (0..1u64 << 24).step_by(64 * 997) {
            let loc = m.decode(addr);
            let back = m.encode(&loc);
            assert_eq!(back, addr & !(63u64), "addr {addr:#x}");
        }
    }

    #[test]
    fn offset_bits_are_ignored() {
        let (_, m) = mapper();
        assert_eq!(m.decode(0x1000), m.decode(0x1001));
        assert_eq!(m.decode(0x1000), m.decode(0x103F));
        assert_ne!(m.decode(0x1000), m.decode(0x1040));
    }

    #[test]
    fn addresses_beyond_capacity_wrap() {
        let (_, m) = mapper();
        let cap = m.capacity_bytes();
        assert_eq!(m.decode(0x40), m.decode(cap + 0x40));
    }

    #[test]
    fn capacity_is_8gb_for_table2_geometry() {
        let (_, m) = mapper();
        // 64 B lines × 4 ranks × 8 banks × 128 cols × 32768 rows = 8 GB.
        assert_eq!(m.capacity_bytes(), 8 << 30);
    }

    #[test]
    fn row_major_scheme_keeps_sequential_lines_in_one_row() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.mapping = MappingScheme::ChRowBankRankCol;
        let m = AddressMapper::new(&cfg);
        let lines_per_row = (8192 / cfg.line_bytes) as u64;
        let first = m.decode(0);
        for i in 0..lines_per_row {
            let loc = m.decode(i * cfg.line_bytes as u64);
            assert_eq!(loc.rank, first.rank);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.col, i as usize);
        }
        // The next line moves to a different rank, same row index.
        let loc = m.decode(lines_per_row * cfg.line_bytes as u64);
        assert_ne!(
            (loc.rank, loc.bank),
            (first.rank, first.bank),
            "row boundary must change rank/bank"
        );
    }

    #[test]
    fn row_major_round_trip() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.mapping = MappingScheme::ChRowBankRankCol;
        let m = AddressMapper::new(&cfg);
        for addr in (0..1u64 << 24).step_by(64 * 1013) {
            let loc = m.decode(addr);
            assert_eq!(m.encode(&loc), addr & !63u64);
        }
    }

    #[test]
    fn multi_channel_interleaves_consecutive_lines() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.channels = 2;
        let m = AddressMapper::new(&cfg);
        for i in 0..8u64 {
            let loc = m.decode(i * 64);
            assert_eq!(loc.channel, (i % 2) as usize, "line {i}");
        }
        // Round trip still holds.
        for addr in (0..1u64 << 22).step_by(64 * 321) {
            let loc = m.decode(addr);
            assert_eq!(m.encode(&loc), addr & !63u64);
        }
    }

    #[test]
    fn flat_bank_covers_all_banks_uniquely() {
        let (cfg, m) = mapper();
        let mut seen = std::collections::HashSet::new();
        for i in 0..cfg.total_banks() as u64 {
            let loc = m.decode(i * cfg.line_bytes as u64);
            assert!(seen.insert(loc.flat_bank(&cfg)));
        }
        assert_eq!(seen.len(), 32);
        assert!(seen.iter().all(|&b| b < 32));
    }
}
