//! Observability hooks for the DRAM system.
//!
//! [`DramObsHooks`] holds pre-resolved [`bwpart_obs`] handles so the
//! per-transaction paths in [`crate::DramSystem`] touch at most one
//! relaxed atomic per event, and only through the zero-cost `obs_*!`
//! macros (lint rule R9). The derived per-channel / per-bank gauges are
//! published from the cold path ([`publish`]) at phase boundaries.

use bwpart_obs::{Counter, Registry};

use crate::config::DramConfig;
use crate::stats::DramStats;

/// Pre-resolved metric handles for the DRAM hot path. Cloning shares the
/// underlying cells (the handles are `Arc`s into the registry).
///
/// Exactly one counter fires per served transaction (the row-buffer
/// outcome); everything else the hot path learns — reads vs. writes, bus
/// occupancy, per-app/per-bank service — is already accumulated in plain
/// [`DramStats`] fields and exported by the cold [`publish`] pass.
#[derive(Debug, Clone)]
pub struct DramObsHooks {
    /// Row-buffer hits (`dram_row_hits_total`).
    pub row_hits: Counter,
    /// Row misses — bank closed (`dram_row_misses_total`).
    pub row_misses: Counter,
    /// Row conflicts — wrong row open (`dram_row_conflicts_total`).
    pub row_conflicts: Counter,
}

/// Hooks are runtime plumbing, not simulated state: they serialize as
/// `Null` — exactly what a detached `Option<Box<DramObsHooks>>` field
/// produces — so a serialized [`crate::DramSystem`] is byte-identical
/// whether or not observability was attached.
impl serde::Serialize for DramObsHooks {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

/// Never materialized from data (the owning `Option` field maps `Null` to
/// `None` before this impl could run); deserializing a hooks value
/// directly is an error by construction.
impl<'de> serde::Deserialize<'de> for DramObsHooks {
    fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {
        Err(serde::DeError::new(
            "observability hooks are not deserializable; re-attach at runtime",
        ))
    }
}

impl DramObsHooks {
    /// Resolve every handle against `registry` (cold; called once at
    /// attach time).
    pub fn resolve(registry: &Registry) -> Self {
        DramObsHooks {
            row_hits: registry.counter("dram_row_hits_total"),
            row_misses: registry.counter("dram_row_misses_total"),
            row_conflicts: registry.counter("dram_row_conflicts_total"),
        }
    }
}

/// Publish derived DRAM gauges from the accumulated [`DramStats`] into
/// `registry`: bus utilization, row-hit rate, and per-channel utilization
/// / per-bank service counts over `elapsed` CPU cycles. Cold path only
/// (phase or epoch boundaries) — never call from per-cycle code.
pub fn publish(registry: &Registry, cfg: &DramConfig, stats: &DramStats, elapsed: u64) {
    registry
        .gauge("dram_bus_utilization")
        .set(stats.bus_utilization(elapsed));
    registry
        .gauge("dram_row_hit_rate")
        .set(stats.row_hit_rate());
    registry.gauge("dram_served_total").set(stats.served as f64);
    registry.gauge("dram_reads").set(stats.reads as f64);
    registry.gauge("dram_writes").set(stats.writes as f64);
    registry
        .gauge("dram_bus_busy_cycles")
        .set(stats.bus_busy_cycles as f64);
    // flat_bank is channel-major (channel * ranks * banks_per_rank + ...),
    // so each channel owns one contiguous slice of the per-bank counters.
    let banks_per_channel = cfg.ranks * cfg.banks_per_rank;
    let tburst = crate::bank::Timings::from_config(cfg).tburst;
    for ch in 0..cfg.channels {
        let served: u64 = stats
            .per_bank_served
            .iter()
            .skip(ch * banks_per_channel)
            .take(banks_per_channel)
            .sum();
        // Burst-occupancy approximation of per-channel data-bus
        // utilization: served bursts × tburst over the elapsed window.
        let util = if elapsed == 0 {
            0.0
        } else {
            served as f64 * tburst as f64 / elapsed as f64
        };
        registry
            .gauge(&format!("dram_channel_utilization{{channel=\"{ch}\"}}"))
            .set(util);
    }
    for (bank, &served) in stats.per_bank_served.iter().enumerate() {
        registry
            .gauge(&format!("dram_bank_served{{bank=\"{bank}\"}}"))
            .set(served as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::AccessKind;

    #[test]
    fn publish_exports_utilization_and_per_channel_gauges() {
        let cfg = DramConfig::ddr2_400();
        let mut stats = DramStats::new(2, cfg.total_banks());
        let tburst = crate::bank::Timings::from_config(&cfg).tburst;
        stats.record(0, 0, false, AccessKind::RowMiss, tburst, 100);
        stats.record(1, 1, true, AccessKind::RowHit, tburst, 120);
        let reg = Registry::new();
        publish(&reg, &cfg, &stats, 1_000);
        let snap = reg.snapshot();
        let gauge = |name: &str| snap.gauges.iter().find(|g| g.name == name).map(|g| g.value);
        let util = gauge("dram_bus_utilization").unwrap_or(-1.0);
        assert!((util - stats.bus_utilization(1_000)).abs() < 1e-12);
        let ch0 = gauge("dram_channel_utilization{channel=\"0\"}").unwrap_or(-1.0);
        assert!((ch0 - 2.0 * tburst as f64 / 1_000.0).abs() < 1e-12);
        assert!((gauge("dram_bank_served{bank=\"1\"}").unwrap_or(-1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hooks_resolve_against_shared_cells() {
        let reg = Registry::new();
        let hooks = DramObsHooks::resolve(&reg);
        hooks.row_hits.inc();
        assert_eq!(reg.counter("dram_row_hits_total").get(), 1);
    }
}
