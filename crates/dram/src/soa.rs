//! Struct-of-arrays DRAM channel timing core.
//!
//! The scheduling probe — "when could a transaction to this location
//! start?" — is the simulator's hottest loop: the memory controller runs
//! it up to `sched_window` times per pending application per DRAM clock.
//! The original per-[`Bank`](crate::bank::Bank) layout scatters the four
//! timing wheels a probe reads (`pre_ready`, `act_ready`, `cas_ready`,
//! `open_row`) across one heap object per bank, so every probe chases a
//! pointer and pulls a whole `Bank` cache line for one or two fields.
//!
//! [`ChannelCore`] keeps the same state as contiguous flat arrays indexed
//! by `rank * banks_per_rank + bank`:
//!
//! ```text
//! open_row   : [u32; banks]   row id, NO_ROW when closed
//! act_time   : [u64; banks]   cycle of the last ACT
//! pre_ready  : [u64; banks]   earliest PRE          ┐ the "wheels" a
//! act_ready  : [u64; banks]   earliest ACT          │ probe reads; one
//! cas_ready  : [u64; banks]   earliest CAS          ┘ per command class
//! busy_until : [u64; banks]   committed-work horizon (quiesce)
//! last_owner : [u32; banks]   interference owner, NO_OWNER when idle
//! act_ring   : [u64; ranks*4] tFAW ring of the 4 most recent ACTs
//! ```
//!
//! Per-bank probes touch exactly the lanes they need, a whole-channel scan
//! ([`ChannelCore::channel_floor`]) is one linear pass, and the rank/bus
//! scalars live in the same cache-friendly block. [`Channel`] is a thin
//! view over this core; the object-per-bank implementation in
//! [`bank`](crate::bank) survives as the differential-testing reference
//! (see `tests/soa_equivalence.rs`), exactly like `run_per_cycle` does for
//! event fast-forward.
//!
//! The core also maintains a monotone **version** counter, bumped on every
//! state mutation ([`commit`](ChannelCore::commit)). Because probes are
//! pure functions of `(committed state, request, now)`, a cached probe
//! result tagged with the version stays valid until the version moves —
//! the basis of the controller-side `ProbeCache` (see
//! [`crate::dram::DramSystem::sched_probe`]).
//!
//! Hot functions in this module are subject to lint rule **R14**: no heap
//! allocation and no `Vec::push` — state is sized once at construction and
//! only ever indexed thereafter.

use serde::{Deserialize, Serialize};

use crate::bank::{AccessKind, Timings};
use crate::channel::{BlockReason, ChannelProbe};
use crate::config::{DramConfig, PagePolicy};

/// Sentinel in the flat `open_row` array: the bank has no open row.
pub const NO_ROW: u32 = u32::MAX;

/// Sentinel in the flat owner arrays: no application owns the resource.
pub const NO_OWNER: u32 = u32::MAX;

/// `n / d` taking the much cheaper 32-bit hardware divide when both
/// operands fit (they do for every realistic cycle count; the u64 path is
/// the correctness fallback for extremely long runs).
#[inline]
pub(crate) fn fast_div(n: u64, d: u64) -> u64 {
    match (u32::try_from(n), u32::try_from(d)) {
        (Ok(n32), Ok(d32)) => u64::from(n32 / d32),
        _ => n / d,
    }
}

/// Decode a sentinel-encoded owner lane into the public `Option` form.
#[inline]
fn owner(o: u32) -> Option<usize> {
    if o == NO_OWNER {
        None
    } else {
        Some(o as usize)
    }
}

/// Flat struct-of-arrays timing state of one DRAM channel. Semantically
/// identical to the object-per-bank model in [`crate::bank`] +
/// [`crate::channel`]; see the module docs for the layout rationale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelCore {
    t: Timings,
    policy: PagePolicy,
    ranks: usize,
    banks_per_rank: usize,
    // ---- per-bank lanes (len = ranks * banks_per_rank) ----
    open_row: Vec<u32>,
    act_time: Vec<u64>,
    pre_ready: Vec<u64>,
    act_ready: Vec<u64>,
    cas_ready: Vec<u64>,
    busy_until: Vec<u64>,
    last_owner: Vec<u32>,
    // ---- per-rank tFAW activation rings (4 fixed slots per rank) ----
    act_ring: Vec<u64>,
    ring_len: Vec<u8>,
    /// Next write slot per ring; the oldest retained ACT sits here once
    /// the ring is full, the most recent at `(pos + 3) & 3`.
    ring_pos: Vec<u8>,
    rank_act_owner: Vec<u32>,
    // ---- channel-level scalars ----
    /// Cycle at which the data bus becomes free.
    bus_free: u64,
    /// Owner of the burst currently/last on the bus.
    bus_owner: u32,
    /// Whether the last burst was a write (turnaround bookkeeping).
    bus_last_write: bool,
    /// End of the last *write* burst (tWTR reference point).
    last_write_data_end: u64,
    /// `last_start + tCK` — the earliest next transaction start under the
    /// one-start-per-DRAM-clock rule. Zero before the first commit (a zero
    /// lower bound never dominates a fold that starts at `now`).
    cmd_ready: u64,
    /// Per-rank marker: refresh blackouts applied to bank state up to here.
    refresh_applied: Vec<u64>,
    /// Per-rank refresh stagger offset, precomputed at construction
    /// (`(2·rank + 1)·tREFI / (2·ranks)`).
    refresh_phase: Vec<u64>,
    /// Monotone mutation counter; bumped by every [`commit`](Self::commit).
    /// Starts at 1 so a zeroed cache tag is always invalid.
    version: u64,
}

impl ChannelCore {
    /// Build an idle channel core from the configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        let t = Timings::from_config(cfg);
        let banks = cfg.ranks * cfg.banks_per_rank;
        ChannelCore {
            t,
            policy: cfg.page_policy,
            ranks: cfg.ranks,
            banks_per_rank: cfg.banks_per_rank,
            open_row: vec![NO_ROW; banks],
            act_time: vec![0; banks],
            pre_ready: vec![0; banks],
            act_ready: vec![0; banks],
            cas_ready: vec![u64::MAX; banks],
            busy_until: vec![0; banks],
            last_owner: vec![NO_OWNER; banks],
            act_ring: vec![0; cfg.ranks * 4],
            ring_len: vec![0; cfg.ranks],
            ring_pos: vec![0; cfg.ranks],
            rank_act_owner: vec![NO_OWNER; cfg.ranks],
            bus_free: 0,
            bus_owner: NO_OWNER,
            bus_last_write: false,
            last_write_data_end: 0,
            cmd_ready: 0,
            refresh_applied: vec![0; cfg.ranks],
            refresh_phase: (0..cfg.ranks as u64)
                .map(|r| (2 * r + 1) * t.trefi / (2 * cfg.ranks as u64))
                .collect(),
            version: 1,
        }
    }

    /// The channel's timing table.
    pub fn timings(&self) -> &Timings {
        &self.t
    }

    /// Monotone mutation counter (cache-invalidation tag).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    #[inline]
    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        debug_assert!(rank < self.ranks && bank < self.banks_per_rank);
        rank * self.banks_per_rank + bank
    }

    /// Earliest start and command structure for an access to `row` in the
    /// bank at flat index `idx`, considering only that bank's own state.
    #[inline]
    fn bank_earliest(&self, idx: usize, row: usize) -> (u64, AccessKind) {
        if self.policy == PagePolicy::ClosePage {
            return (self.act_ready[idx], AccessKind::RowMiss);
        }
        let open = self.open_row[idx];
        if open == NO_ROW {
            (self.act_ready[idx], AccessKind::RowMiss)
        } else if open == row as u32 {
            (self.cas_ready[idx], AccessKind::RowHit)
        } else {
            (self.pre_ready[idx], AccessKind::RowConflict)
        }
    }

    /// Align `cycle` up to the DRAM command-clock grid.
    #[inline]
    fn align_up(&self, cycle: u64) -> u64 {
        let t = self.t.tck;
        fast_div(cycle + (t - 1), t) * t
    }

    /// The refresh blackout window `[start, end)` that covers or precedes
    /// `cycle` for `rank`, staggered across ranks (half-slot offset so no
    /// rank refreshes at cycle 0).
    fn blackout_before(&self, rank: usize, cycle: u64) -> (u64, u64) {
        let phase = self.refresh_phase[rank];
        if cycle < phase {
            return (0, 0); // before the first refresh of this rank
        }
        let k = fast_div(cycle - phase, self.t.trefi);
        let start = phase + k * self.t.trefi;
        (start, start + self.t.trfc)
    }

    /// Push `cycle` out of any refresh blackout for `rank`.
    fn avoid_blackout(&self, rank: usize, cycle: u64) -> u64 {
        let (start, end) = self.blackout_before(rank, cycle);
        if cycle >= start && cycle < end {
            end
        } else {
            cycle
        }
    }

    /// Whether `now` is on the command-clock grid and outside `rank`'s
    /// refresh blackouts — the only conditions that can still reject a
    /// request whose raw timing bounds have all passed. Probe caches use
    /// this as the residual per-cycle check once the cached final start is
    /// at or before `now` (alignment and refresh are the two post-fold
    /// adjustments, and both depend only on `now`, not on bank state).
    #[inline]
    pub fn grid_clear(&self, rank: usize, now: u64) -> bool {
        now.is_multiple_of(self.t.tck) && self.avoid_blackout(rank, now) == now
    }

    /// Lazily apply refresh effects (row closure, bank busy) for blackouts
    /// that began before `upto`.
    fn apply_refreshes(&mut self, rank: usize, upto: u64) {
        let (start, end) = self.blackout_before(rank, upto);
        if end > 0 && start >= self.refresh_applied[rank] {
            let base = rank * self.banks_per_rank;
            for b in 0..self.banks_per_rank {
                self.refresh_bank(base + b, end);
            }
            self.refresh_applied[rank] = end;
        }
    }

    /// Apply a refresh that occupies bank `idx` until `done` (the row
    /// buffer is closed by refresh).
    #[inline]
    fn refresh_bank(&mut self, idx: usize, done: u64) {
        self.open_row[idx] = NO_ROW;
        self.act_ready[idx] = self.act_ready[idx].max(done);
        self.pre_ready[idx] = self.pre_ready[idx].max(done);
        self.cas_ready[idx] = u64::MAX;
        self.busy_until[idx] = self.busy_until[idx].max(done);
    }

    /// Fold every raw (unaligned, refresh-unaware) lower bound on a
    /// transaction's start into the dominating `(start, reason, blocker)`
    /// triple, starting from `now`. Shared by [`probe`](Self::probe) and
    /// [`issuable_at`](Self::issuable_at) so the two can never diverge.
    ///
    /// Whenever the result exceeds `now`, the triple is independent of
    /// `now` itself (every bound is a pure function of committed state and
    /// the request) — the property the version-tagged probe cache relies
    /// on.
    pub fn raw_probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> (u64, BlockReason, Option<usize>, AccessKind) {
        let t = &self.t;
        let idx = self.bank_index(rank, bank);
        let (bank_start, kind) = self.bank_earliest(idx, row);
        let cas_off = kind.cas_offset(t);
        let act_off = match kind {
            AccessKind::RowHit => None,
            AccessKind::RowMiss => Some(0),
            AccessKind::RowConflict => Some(t.trp),
        };
        let data_off = cas_off + if is_write { t.cwl } else { t.cl };

        // Fold the lower bounds on `start` inline, keeping the dominating
        // constraint's reason/owner, in the documented precedence order:
        // bank, rank ACT windows, data bus, command slot.
        let (mut start, mut reason, mut blocker) = (now, BlockReason::Bank, None);
        let mut fold = |lb: u64, r: BlockReason, owner: Option<usize>| {
            if lb > start {
                start = lb;
                reason = r;
                blocker = owner;
            }
        };
        fold(bank_start, BlockReason::Bank, owner(self.last_owner[idx]));

        if let Some(aoff) = act_off {
            let len = self.ring_len[rank];
            if len > 0 {
                let base = rank * 4;
                let pos = self.ring_pos[rank] as usize;
                // tRRD from the last ACT in this rank.
                let last = self.act_ring[base + ((pos + 3) & 3)];
                fold(
                    (last + t.trrd).saturating_sub(aoff),
                    BlockReason::RankAct,
                    owner(self.rank_act_owner[rank]),
                );
                // tFAW: the 4th-most-recent ACT gates a 5th.
                if len >= 4 {
                    let oldest = self.act_ring[base + pos];
                    fold(
                        (oldest + t.tfaw).saturating_sub(aoff),
                        BlockReason::RankAct,
                        owner(self.rank_act_owner[rank]),
                    );
                }
            }
        }

        // Data bus occupancy, with turnaround/rank-switch gaps.
        let mut bus_ready = self.bus_free;
        if self.bus_owner != NO_OWNER {
            if self.bus_last_write && !is_write {
                // Write-to-read: the read CAS must wait tWTR after the last
                // write data beat; express as a data-start bound.
                let cas_lb = self.last_write_data_end + t.twtr;
                bus_ready = bus_ready.max(cas_lb + if is_write { t.cwl } else { t.cl });
            } else if !self.bus_last_write && is_write {
                // Read-to-write: one clock of bus turnaround.
                bus_ready = bus_ready.max(self.bus_free + t.tck);
            }
            // Rank-to-rank switch gaps (tRTRS) are not modeled: with the
            // paper's rank-interleaved mapping every consecutive line
            // changes rank, and charging a bubble per line would cap the
            // bus at ~80% of its nominal bandwidth — the paper's Table III
            // data (lbm alone reaches 94% of peak) shows their testbed did
            // not pay such a cost.
        }
        fold(
            bus_ready.saturating_sub(data_off),
            BlockReason::DataBus,
            owner(self.bus_owner),
        );

        // Command-slot: one transaction start per DRAM clock.
        fold(
            self.cmd_ready,
            BlockReason::CommandSlot,
            owner(self.bus_owner),
        );

        (start, reason, blocker, kind)
    }

    /// Push `start` onto the command-clock grid and out of refresh
    /// blackouts (iterate: pushing past a blackout breaks alignment because
    /// blackout ends are arbitrary, so re-align). Returns the final start
    /// and whether a refresh moved it.
    pub fn align_and_avoid_refresh(&self, rank: usize, mut start: u64) -> (u64, bool) {
        let mut refreshed = false;
        for _ in 0..4 {
            let aligned = self.align_up(start);
            let moved = self.avoid_blackout(rank, aligned);
            if moved != aligned {
                start = moved;
                refreshed = true;
            } else {
                return (aligned, refreshed);
            }
        }
        (start, refreshed)
    }

    /// Compute the earliest start for a transaction and, when it is blocked
    /// relative to `now`, the dominating constraint and its owner.
    pub fn probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> ChannelProbe {
        let (raw, mut reason, mut blocker, kind) = self.raw_probe(rank, bank, row, is_write, now);
        let (start, refreshed) = self.align_and_avoid_refresh(rank, raw);
        if refreshed {
            reason = BlockReason::Refresh;
            blocker = None;
        }
        ChannelProbe {
            start,
            kind,
            block: if start > now { Some(reason) } else { None },
            blocker: blocker.filter(|_| start > now),
        }
    }

    /// Whether a transaction's first command could be driven at or before
    /// `now` — exactly `probe(...).start <= now`, but rejected requests
    /// usually resolve on the raw timing bounds alone, skipping the
    /// division-heavy grid-alignment and refresh scan.
    pub fn issuable_at(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> Option<AccessKind> {
        let (raw, _, _, kind) = self.raw_probe(rank, bank, row, is_write, now);
        // Alignment and refresh avoidance only ever push the start later,
        // so a raw bound past `now` is already a rejection.
        if raw > now {
            return None;
        }
        let (start, _) = self.align_and_avoid_refresh(rank, raw);
        if start <= now {
            Some(kind)
        } else {
            None
        }
    }

    /// A channel-wide lower bound on the start cycle of *any* transaction,
    /// computed in one branch-free pass over the flat bank lanes. Every
    /// request's raw probe folds (a) its bank's wheel — at least the
    /// per-bank minimum of the three wheels, hence at least the channel
    /// minimum, (b) a data-bus bound of at least `bus_free` minus the
    /// largest possible data offset, and (c) the command-slot bound; the
    /// floor is the max of those three universal bounds. While
    /// `channel_floor() > now`, no request on this channel can issue and
    /// the controller skips its scheduling scans entirely. Pure function
    /// of committed state — cache it against [`version`](Self::version).
    pub fn channel_floor(&self) -> u64 {
        let n = self.ranks * self.banks_per_rank;
        let mut bank_min = u64::MAX;
        for i in 0..n {
            let m = self.pre_ready[i]
                .min(self.act_ready[i])
                .min(self.cas_ready[i]);
            bank_min = bank_min.min(m);
        }
        let t = &self.t;
        let max_data_off = t.trp + t.trcd + t.cl.max(t.cwl);
        let bus_lb = self.bus_free.saturating_sub(max_data_off);
        bank_min.max(bus_lb).max(self.cmd_ready)
    }

    /// Commit a transaction whose first command is driven at `start`.
    /// Returns `(data_start, data_end, kind)`; the kind is re-derived after
    /// refresh application (a refresh may have closed the row a probe saw).
    pub fn commit(
        &mut self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        app: usize,
        start: u64,
    ) -> (u64, u64, AccessKind) {
        self.apply_refreshes(rank, start);
        let t = self.t;
        let idx = self.bank_index(rank, bank);
        let (_, kind) = self.bank_earliest(idx, row);

        // ---- bank state update (mirrors `Bank::commit`) ----
        let cas = start + kind.cas_offset(&t);
        let act = match kind {
            AccessKind::RowHit => self.act_time[idx],
            AccessKind::RowMiss => start,
            AccessKind::RowConflict => start + t.trp,
        };
        let data_start = cas + if is_write { t.cwl } else { t.cl };
        let data_end = data_start + t.tburst;
        // When could this bank precharge after this access?
        let pre_after = if is_write {
            (data_end + t.twr).max(act + t.tras)
        } else {
            (cas + t.trtp).max(act + t.tras)
        };
        self.act_time[idx] = act;
        self.last_owner[idx] = app as u32;
        match self.policy {
            PagePolicy::ClosePage => {
                // Auto-precharge: bank is idle (and ACT-ready) tRP after the
                // precharge point.
                self.open_row[idx] = NO_ROW;
                self.pre_ready[idx] = pre_after;
                self.act_ready[idx] = pre_after + t.trp;
                self.cas_ready[idx] = u64::MAX;
                self.busy_until[idx] = self.act_ready[idx];
            }
            PagePolicy::OpenPage => {
                debug_assert!(
                    (row as u64) < u64::from(NO_ROW),
                    "row id overflows u32 lane"
                );
                self.open_row[idx] = row as u32;
                self.pre_ready[idx] = pre_after;
                // A future conflict pays PRE+ACT from pre_ready; a future
                // hit only needs CAS-to-CAS spacing on the data bus (the
                // channel enforces bus occupancy), so CAS is ready once the
                // current CAS is consumed.
                self.cas_ready[idx] = cas + t.tburst.max(t.tck);
                self.act_ready[idx] = pre_after + t.trp;
                self.busy_until[idx] = data_end;
            }
        }

        // ---- rank ACT ring (tRRD/tFAW) ----
        if kind != AccessKind::RowHit {
            let act_time = match kind {
                AccessKind::RowConflict => start + t.trp,
                _ => start,
            };
            let pos = self.ring_pos[rank] as usize;
            self.act_ring[rank * 4 + pos] = act_time;
            self.ring_pos[rank] = ((pos + 1) & 3) as u8;
            self.ring_len[rank] = (self.ring_len[rank] + 1).min(4);
            self.rank_act_owner[rank] = app as u32;
        }

        // ---- channel scalars ----
        self.bus_free = data_end;
        self.bus_owner = app as u32;
        self.bus_last_write = is_write;
        if is_write {
            self.last_write_data_end = data_end;
        }
        self.cmd_ready = start + t.tck;
        self.version += 1;
        (data_start, data_end, kind)
    }

    /// Cycle at which the data bus becomes free (stats/utilization).
    #[inline]
    pub fn bus_free_at(&self) -> u64 {
        self.bus_free
    }

    /// Cycle by which every *committed* transaction on this channel has
    /// fully drained: the data bus is free and each bank has finished its
    /// committed work (including auto-precharge). Bursts are serialized on
    /// the data bus, so no committed transaction's data end — and therefore
    /// no pending completion — can lie beyond this cycle. Fast-forward
    /// contracts use it as the memory system's event horizon.
    pub fn quiesce_at(&self) -> u64 {
        let mut q = self.bus_free;
        for &b in &self.busy_until {
            q = q.max(b);
        }
        q
    }

    // ---- thin-view accessors (the `Channel`/`Bank` compatibility shim) ----

    /// Open row of the bank at `(rank, bank)`, if any.
    pub fn open_row(&self, rank: usize, bank: usize) -> Option<usize> {
        let r = self.open_row[self.bank_index(rank, bank)];
        if r == NO_ROW {
            None
        } else {
            Some(r as usize)
        }
    }

    /// Raw timing-wheel snapshot of one bank:
    /// `(act_time, pre_ready, act_ready, cas_ready, busy_until)`.
    pub fn bank_wheels(&self, rank: usize, bank: usize) -> (u64, u64, u64, u64, u64) {
        let i = self.bank_index(rank, bank);
        (
            self.act_time[i],
            self.pre_ready[i],
            self.act_ready[i],
            self.cas_ready[i],
            self.busy_until[i],
        )
    }

    /// Interference owner of the bank at `(rank, bank)`.
    pub fn bank_owner(&self, rank: usize, bank: usize) -> Option<usize> {
        owner(self.last_owner[self.bank_index(rank, bank)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ChannelCore {
        ChannelCore::new(&DramConfig::ddr2_400())
    }

    #[test]
    fn version_bumps_only_on_commit() {
        let mut c = core();
        let v0 = c.version();
        let _ = c.probe(0, 0, 5, false, 0);
        let _ = c.issuable_at(1, 2, 9, true, 1000);
        let _ = c.channel_floor();
        assert_eq!(c.version(), v0, "read paths must not invalidate caches");
        let p = c.probe(0, 0, 5, false, 0);
        c.commit(0, 0, 5, false, 0, p.start);
        assert_eq!(c.version(), v0 + 1);
    }

    #[test]
    fn channel_floor_is_a_sound_lower_bound() {
        let mut c = core();
        assert_eq!(c.channel_floor(), 0, "idle channel floors at zero");
        // Saturate a few banks, then check every possible request's raw
        // probe respects the floor.
        let mut now = 0;
        for b in 0..8 {
            let p = c.probe(0, b, 1, b % 2 == 0, now);
            c.commit(0, b, 1, b % 2 == 0, 0, p.start);
            now = p.start;
        }
        let floor = c.channel_floor();
        for rank in 0..4 {
            for bank in 0..8 {
                for &w in &[false, true] {
                    let (raw, _, _, _) = c.raw_probe(rank, bank, 99, w, 0);
                    assert!(
                        raw >= floor,
                        "raw {raw} below floor {floor} for r{rank} b{bank} w{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_clear_matches_alignment_and_blackout() {
        let c = core();
        let t = *c.timings();
        assert!(c.grid_clear(0, 0));
        assert!(!c.grid_clear(0, 1), "off-grid cycle");
        assert!(c.grid_clear(0, t.tck * 7));
        // Inside rank 0's first blackout (phase = tREFI/8), on-grid cycles
        // are still rejected.
        let phase = t.trefi / 8;
        let in_blackout = (phase / t.tck + 1) * t.tck;
        assert!(in_blackout < phase + t.trfc);
        assert!(!c.grid_clear(0, in_blackout));
        // Rank 1 is staggered elsewhere and stays clear.
        assert!(c.grid_clear(1, in_blackout));
    }

    #[test]
    fn tfaw_ring_tracks_last_four_acts() {
        let mut c = core();
        let t = *c.timings();
        let mut starts = Vec::new();
        let mut now = 0;
        for b in 0..6 {
            let p = c.probe(0, b, 1, false, now);
            c.commit(0, b, 1, false, 0, p.start);
            starts.push(p.start);
            now = p.start + t.tck;
        }
        // 5th and 6th ACT each ≥ tFAW after the one four before it.
        assert!(starts[4] >= starts[0] + t.tfaw);
        assert!(starts[5] >= starts[1] + t.tfaw);
    }
}
