//! Per-bank timing state machine.
//!
//! A bank tracks its row buffer and the earliest cycle each command class
//! may be driven, derived from the JEDEC-style constraints: tRC = tRAS + tRP
//! between activates, tRCD from ACT to CAS, CL/CWL from CAS to data, tRTP
//! and tWR from the last column access to precharge.
//!
//! All times are CPU cycles. The bank itself is policy-agnostic: it reports
//! what an access would cost under the configured [`PagePolicy`] via
//! [`Bank::probe`], and [`Bank::commit`] applies the state update once the
//! channel has resolved rank/bus-level constraints and chosen the actual
//! start cycle.

use serde::{Deserialize, Serialize};

use crate::config::{DramConfig, PagePolicy};

/// Bank/channel timing parameters pre-converted to CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timings {
    /// DRAM clock period.
    pub tck: u64,
    /// Row precharge.
    pub trp: u64,
    /// ACT-to-CAS.
    pub trcd: u64,
    /// CAS-to-read-data.
    pub cl: u64,
    /// CAS-to-write-data.
    pub cwl: u64,
    /// Minimum row-active time.
    pub tras: u64,
    /// Write recovery (after last write data beat, before precharge).
    pub twr: u64,
    /// Write-to-read turnaround (after last write data beat).
    pub twtr: u64,
    /// Read-to-precharge.
    pub trtp: u64,
    /// ACT-to-ACT same rank.
    pub trrd: u64,
    /// Four-activate window.
    pub tfaw: u64,
    /// Refresh cycle time.
    pub trfc: u64,
    /// Refresh interval.
    pub trefi: u64,
    /// Data-bus occupancy of one line burst.
    pub tburst: u64,
}

impl Timings {
    /// Convert a configuration's nanosecond parameters to CPU cycles.
    pub fn from_config(cfg: &DramConfig) -> Self {
        Timings {
            tck: cfg.tck_cycles(),
            trp: cfg.ns_to_cycles(cfg.timing.trp),
            trcd: cfg.ns_to_cycles(cfg.timing.trcd),
            cl: cfg.ns_to_cycles(cfg.timing.cl),
            cwl: cfg.ns_to_cycles(cfg.cwl_ns()),
            tras: cfg.ns_to_cycles(cfg.timing.tras),
            twr: cfg.ns_to_cycles(cfg.timing.twr),
            twtr: cfg.ns_to_cycles(cfg.timing.twtr),
            trtp: cfg.ns_to_cycles(cfg.timing.trtp),
            trrd: cfg.ns_to_cycles(cfg.timing.trrd),
            tfaw: cfg.ns_to_cycles(cfg.timing.tfaw),
            trfc: cfg.ns_to_cycles(cfg.timing.trfc),
            trefi: cfg.ns_to_cycles(cfg.timing.trefi),
            tburst: cfg.burst_cycles(),
        }
    }
}

/// How an access will be serviced, and therefore its command structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Open-page hit: CAS only.
    RowHit,
    /// Bank closed (or close-page policy): ACT + CAS.
    RowMiss,
    /// Open-page conflict: PRE + ACT + CAS.
    RowConflict,
}

impl AccessKind {
    /// Offset from the access start cycle to the CAS command.
    pub fn cas_offset(self, t: &Timings) -> u64 {
        match self {
            AccessKind::RowHit => 0,
            AccessKind::RowMiss => t.trcd,
            AccessKind::RowConflict => t.trp + t.trcd,
        }
    }
}

/// Result of probing a bank for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Earliest cycle the access's first command may be driven, considering
    /// only this bank's constraints.
    pub earliest_start: u64,
    /// Command structure of the access.
    pub kind: AccessKind,
}

/// One DRAM bank.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Bank {
    /// Currently open row, if any (always `None` under close-page).
    pub open_row: Option<usize>,
    /// Cycle of the last ACT.
    pub(crate) act_time: u64,
    /// Earliest cycle a precharge could be driven.
    pub(crate) pre_ready: u64,
    /// Earliest cycle a new ACT may be driven (bank idle and tRC honoured).
    pub(crate) act_ready: u64,
    /// Earliest cycle a CAS to the open row may be driven.
    pub(crate) cas_ready: u64,
    /// Application that most recently used this bank (interference owner).
    pub last_owner: Option<usize>,
    /// Cycle the bank finishes all committed work (incl. auto-precharge).
    pub busy_until: u64,
}

impl Bank {
    /// Earliest start and command structure for an access to `row` under
    /// `policy`, considering only this bank's own timing state.
    pub fn probe(&self, row: usize, policy: PagePolicy, _t: &Timings) -> Probe {
        match (policy, self.open_row) {
            (PagePolicy::ClosePage, _) | (PagePolicy::OpenPage, None) => Probe {
                earliest_start: self.act_ready,
                kind: AccessKind::RowMiss,
            },
            (PagePolicy::OpenPage, Some(open)) if open == row => Probe {
                earliest_start: self.cas_ready,
                kind: AccessKind::RowHit,
            },
            (PagePolicy::OpenPage, Some(_)) => Probe {
                earliest_start: self.pre_ready,
                kind: AccessKind::RowConflict,
            },
        }
    }

    /// Commit an access whose first command is driven at `start` (the
    /// channel guarantees `start ≥ probe.earliest_start` plus rank/bus
    /// constraints). Returns the cycle the burst leaves/enters the data bus:
    /// `(data_start, data_end)`.
    // the argument list mirrors the DDR command fields; a struct would obscure them
    #[allow(clippy::too_many_arguments)]
    pub fn commit(
        &mut self,
        start: u64,
        kind: AccessKind,
        row: usize,
        is_write: bool,
        app: usize,
        policy: PagePolicy,
        t: &Timings,
    ) -> (u64, u64) {
        let cas = start + kind.cas_offset(t);
        let act = match kind {
            AccessKind::RowHit => self.act_time,
            AccessKind::RowMiss => start,
            AccessKind::RowConflict => start + t.trp,
        };
        let data_start = cas + if is_write { t.cwl } else { t.cl };
        let data_end = data_start + t.tburst;

        // When could this bank precharge after this access?
        let pre_after = if is_write {
            (data_end + t.twr).max(act + t.tras)
        } else {
            (cas + t.trtp).max(act + t.tras)
        };

        self.act_time = act;
        self.last_owner = Some(app);
        match policy {
            PagePolicy::ClosePage => {
                // Auto-precharge: bank is idle (and ACT-ready) tRP after the
                // precharge point.
                self.open_row = None;
                self.pre_ready = pre_after;
                self.act_ready = pre_after + t.trp;
                self.cas_ready = u64::MAX;
                self.busy_until = self.act_ready;
            }
            PagePolicy::OpenPage => {
                self.open_row = Some(row);
                self.pre_ready = pre_after;
                // A future conflict pays PRE+ACT from pre_ready; a future
                // hit only needs CAS-to-CAS spacing on the data bus (the
                // channel enforces bus occupancy), so CAS is ready once the
                // current CAS is consumed.
                self.cas_ready = cas + t.tburst.max(t.tck);
                self.act_ready = pre_after + t.trp;
                self.busy_until = data_end;
            }
        }
        (data_start, data_end)
    }

    /// Apply a refresh that occupies the bank until `done` (row buffer is
    /// closed by refresh).
    pub fn refresh_until(&mut self, done: u64) {
        self.open_row = None;
        self.act_ready = self.act_ready.max(done);
        self.pre_ready = self.pre_ready.max(done);
        self.cas_ready = u64::MAX;
        self.busy_until = self.busy_until.max(done);
    }

    /// Earliest cycle a new ACT may be driven.
    pub fn act_ready(&self) -> u64 {
        self.act_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Timings {
        Timings::from_config(&DramConfig::ddr2_400())
    }

    #[test]
    fn timings_convert_to_cpu_cycles() {
        let t = t();
        assert_eq!(t.tck, 25);
        assert_eq!(t.trp, 63);
        assert_eq!(t.trcd, 63);
        assert_eq!(t.cl, 63);
        assert_eq!(t.cwl, 38); // 7.5 ns
        assert_eq!(t.tras, 225);
        assert_eq!(t.tburst, 100);
    }

    #[test]
    fn close_page_read_timing() {
        let t = t();
        let mut b = Bank::default();
        let p = b.probe(7, PagePolicy::ClosePage, &t);
        assert_eq!(p.earliest_start, 0);
        assert_eq!(p.kind, AccessKind::RowMiss);
        let (ds, de) = b.commit(0, p.kind, 7, false, 0, PagePolicy::ClosePage, &t);
        // ACT at 0, RD at tRCD, data at tRCD + CL.
        assert_eq!(ds, t.trcd + t.cl);
        assert_eq!(de, ds + t.tburst);
        // Close page: no row remains open; next ACT after pre point + tRP.
        assert_eq!(b.open_row, None);
        let pre_point = (t.trcd + t.trtp).max(t.tras);
        assert_eq!(b.act_ready(), pre_point + t.trp);
    }

    #[test]
    fn close_page_write_has_write_recovery() {
        let t = t();
        let mut b = Bank::default();
        let (ds, de) = b.commit(
            0,
            AccessKind::RowMiss,
            3,
            true,
            1,
            PagePolicy::ClosePage,
            &t,
        );
        assert_eq!(ds, t.trcd + t.cwl);
        let pre_point = (de + t.twr).max(t.tras);
        assert_eq!(b.act_ready(), pre_point + t.trp);
        assert_eq!(b.last_owner, Some(1));
    }

    #[test]
    fn consecutive_close_page_accesses_respect_trc_like_spacing() {
        let t = t();
        let mut b = Bank::default();
        b.commit(
            0,
            AccessKind::RowMiss,
            1,
            false,
            0,
            PagePolicy::ClosePage,
            &t,
        );
        let next = b.probe(2, PagePolicy::ClosePage, &t).earliest_start;
        // tRAS + tRP at minimum (read-to-precharge path may extend it).
        assert!(next >= t.tras + t.trp, "next {next}");
        let (_, _) = b.commit(
            next,
            AccessKind::RowMiss,
            2,
            false,
            0,
            PagePolicy::ClosePage,
            &t,
        );
        assert!(b.act_ready() >= next + t.tras + t.trp);
    }

    #[test]
    fn open_page_hit_skips_act() {
        let t = t();
        let mut b = Bank::default();
        b.commit(
            0,
            AccessKind::RowMiss,
            9,
            false,
            0,
            PagePolicy::OpenPage,
            &t,
        );
        assert_eq!(b.open_row, Some(9));
        let p = b.probe(9, PagePolicy::OpenPage, &t);
        assert_eq!(p.kind, AccessKind::RowHit);
        let (ds, _) = b.commit(
            p.earliest_start,
            p.kind,
            9,
            false,
            0,
            PagePolicy::OpenPage,
            &t,
        );
        // Hit: data after just CL from the CAS.
        assert_eq!(ds, p.earliest_start + t.cl);
    }

    #[test]
    fn open_page_conflict_pays_pre_act_cas() {
        let t = t();
        let mut b = Bank::default();
        b.commit(
            0,
            AccessKind::RowMiss,
            9,
            false,
            0,
            PagePolicy::OpenPage,
            &t,
        );
        let p = b.probe(10, PagePolicy::OpenPage, &t);
        assert_eq!(p.kind, AccessKind::RowConflict);
        // Precharge can't precede tRAS / read-to-pre constraints.
        assert!(p.earliest_start >= (t.trcd + t.trtp).max(t.tras));
        let (ds, _) = b.commit(
            p.earliest_start,
            p.kind,
            10,
            false,
            0,
            PagePolicy::OpenPage,
            &t,
        );
        assert_eq!(ds, p.earliest_start + t.trp + t.trcd + t.cl);
        assert_eq!(b.open_row, Some(10));
    }

    #[test]
    fn refresh_closes_row_and_delays_act() {
        let t = t();
        let mut b = Bank::default();
        b.commit(
            0,
            AccessKind::RowMiss,
            9,
            false,
            0,
            PagePolicy::OpenPage,
            &t,
        );
        b.refresh_until(10_000);
        assert_eq!(b.open_row, None);
        assert!(b.act_ready() >= 10_000);
        assert_eq!(
            b.probe(9, PagePolicy::OpenPage, &t).kind,
            AccessKind::RowMiss
        );
    }

    #[test]
    fn cas_offsets_by_kind() {
        let t = t();
        assert_eq!(AccessKind::RowHit.cas_offset(&t), 0);
        assert_eq!(AccessKind::RowMiss.cas_offset(&t), t.trcd);
        assert_eq!(AccessKind::RowConflict.cas_offset(&t), t.trp + t.trcd);
    }
}
