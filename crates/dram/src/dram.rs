//! The top-level DRAM system: address decoding, channel dispatch, and the
//! transaction interface consumed by the memory controller.

use bwpart_obs::obs_count;
use serde::{Deserialize, Serialize};

use crate::address::{AddressMapper, Location};
use crate::bank::{AccessKind, Timings};
use crate::channel::{BlockReason, Channel, ChannelProbe};
use crate::config::DramConfig;
use crate::obs::DramObsHooks;
use crate::soa::{ChannelCore, NO_OWNER};
use crate::stats::DramStats;

/// One line-granular memory transaction presented by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTransaction {
    /// Issuing application (core) index.
    pub app: usize,
    /// Physical byte address (line-aligned or not; offset bits ignored).
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// Completion record for an issued transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Issuing application.
    pub app: usize,
    /// The transaction's address.
    pub addr: u64,
    /// Write flag.
    pub is_write: bool,
    /// Cycle the first command was driven.
    pub start_cycle: u64,
    /// Cycle the data burst finishes — when a read's data is available.
    pub done_cycle: u64,
    /// Whether the access hit an open row (open-page only).
    pub row_hit: bool,
}

/// Version-tagged cached scheduling probe for one queued request.
///
/// A probe's raw lower bound, final (aligned, refresh-avoided) start,
/// access kind, and blocking owner are pure functions of the request and
/// the target channel's *committed* state — so they stay valid until the
/// channel's [`ChannelCore::version`] moves (it only moves on commit).
/// The memory controller keeps one of these per queued request and asks
/// [`DramSystem::sched_probe`] instead of re-folding every timing bound
/// each DRAM clock; while a channel is stalled, the per-slot test
/// collapses to three integer compares.
///
/// `version == 0` marks an empty cache (live channel versions start at 1),
/// so `Default` — also what a deserialized queue slot gets — is always a
/// miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCache {
    version: u64,
    channel: u32,
    rank: u32,
    /// Raw (unaligned, refresh-unaware) fold of the timing lower bounds.
    raw: u64,
    /// Final start: `raw` pushed onto the clock grid and out of blackouts.
    start: u64,
    kind: AccessKind,
    /// Sentinel-encoded owner of the dominating constraint at `raw`.
    blocker: u32,
    /// Whether a refresh blackout moved `start` past the aligned `raw`.
    refreshed: bool,
}

impl Default for ProbeCache {
    fn default() -> Self {
        ProbeCache {
            version: 0,
            channel: 0,
            rank: 0,
            raw: 0,
            start: 0,
            kind: AccessKind::RowMiss,
            blocker: NO_OWNER,
            refreshed: false,
        }
    }
}

/// Answer of a cached scheduling probe (see [`DramSystem::sched_probe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedProbe {
    /// Whether the first command can be driven exactly at the probed `now`.
    pub issuable: bool,
    /// Command structure (hit/miss/conflict) the access would use.
    pub kind: AccessKind,
    /// When blocked: the *other* application owning the blocking resource
    /// — exactly [`DramSystem::blocking_app`]'s answer (`None` for
    /// self-blocking, refresh, alignment, or an issuable probe).
    pub head_blocker: Option<usize>,
}

/// The DRAM system: `channels` × (`ranks` × `banks`) with a shared stats
/// block. See the crate docs for the timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramSystem {
    cfg: DramConfig,
    mapper: AddressMapper,
    channels: Vec<Channel>,
    stats: DramStats,
    /// Optional observability hooks (pre-resolved metric handles). Not
    /// part of the simulated state: they serialize as `Null` (identical
    /// to the detached form), are shared by clones, and are only ever
    /// *written* through the zero-cost `obs_*!` macros, so attaching them
    /// cannot change simulation outcomes.
    obs: Option<Box<DramObsHooks>>,
}

impl DramSystem {
    /// Build an idle DRAM system. Panics on an invalid configuration (use
    /// [`DramConfig::validate`] to check first if the config is untrusted).
    pub fn new(cfg: DramConfig) -> Self {
        if let Err(e) = cfg.validate() {
            // lint: allow(R1): documented panic; untrusted configs go via validate()
            panic!("invalid DRAM configuration: {e}");
        }
        let mapper = AddressMapper::new(&cfg);
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        let stats = DramStats::new(0, cfg.total_banks());
        DramSystem {
            cfg,
            mapper,
            channels,
            stats,
            obs: None,
        }
    }

    /// Attach observability hooks resolved against `registry`. Live
    /// counting only happens in builds with the `bwpart-obs/trace`
    /// feature; without it the hooks sit inert (the macros compile to
    /// nothing).
    pub fn attach_obs(&mut self, registry: &bwpart_obs::Registry) {
        self.obs = Some(Box::new(DramObsHooks::resolve(registry)));
    }

    /// Publish derived DRAM gauges (bus/channel utilization, row-hit
    /// rate, per-bank service) into `registry` over `elapsed` cycles.
    /// Cold path: phase/epoch boundaries only.
    pub fn publish_metrics(&self, registry: &bwpart_obs::Registry, elapsed: u64) {
        crate::obs::publish(registry, &self.cfg, &self.stats, elapsed);
    }

    /// Size the per-application stats vectors (call once before simulating).
    pub fn set_app_count(&mut self, apps: usize) {
        self.stats = DramStats::new(apps, self.cfg.total_banks());
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The timing table (CPU cycles) of channel 0.
    pub fn timings(&self) -> &Timings {
        self.channels[0].timings()
    }

    /// Decode an address to DRAM coordinates.
    pub fn decode(&self, addr: u64) -> Location {
        self.mapper.decode(addr)
    }

    /// Probe: earliest start cycle and blocking information for `txn` at
    /// cycle `now`.
    pub fn probe(&self, txn: &MemTransaction, now: u64) -> ChannelProbe {
        let loc = self.decode(txn.addr);
        self.channels[loc.channel].probe(loc.rank, loc.bank, loc.row, txn.is_write, now)
    }

    /// Whether `txn`'s first command can be driven exactly at `now`
    /// (the controller ticks on the DRAM clock grid).
    pub fn can_issue(&self, txn: &MemTransaction, now: u64) -> bool {
        self.issuable_at(txn, now).is_some()
    }

    /// Scheduling fast path: `Some(kind)` when `txn` could start at or
    /// before `now` — exactly `probe(txn, now).start <= now` — computed
    /// with an early rejection on the raw timing bounds (see
    /// [`Channel::issuable_at`]). The memory controller runs this up to
    /// `sched_window` times per pending application per DRAM clock.
    pub fn issuable_at(&self, txn: &MemTransaction, now: u64) -> Option<crate::bank::AccessKind> {
        let loc = self.decode(txn.addr);
        self.channels[loc.channel].issuable_at(loc.rank, loc.bank, loc.row, txn.is_write, now)
    }

    /// If `txn` cannot issue at `now`, the application whose traffic owns
    /// the blocking resource (bank, bus, or rank window) — `None` when the
    /// block is self-inflicted, refresh-caused, or absent. This feeds the
    /// paper's `T_cyc,interference` counters (Section IV-C).
    pub fn blocking_app(&self, txn: &MemTransaction, now: u64) -> Option<usize> {
        let p = self.probe(txn, now);
        match p.block {
            Some(BlockReason::Refresh) | None => None,
            _ => p.blocker.filter(|&b| b != txn.app),
        }
    }

    /// Number of channels in this system.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Monotone mutation counter of one channel (probe-cache tag). Bumps
    /// exactly when a transaction commits on that channel.
    #[inline]
    pub fn channel_version(&self, channel: usize) -> u64 {
        self.channels[channel].core().version()
    }

    /// Channel-wide lower bound on any transaction's start cycle — one
    /// linear pass over the channel's flat bank lanes (see
    /// [`ChannelCore::channel_floor`]). While this exceeds `now`, nothing
    /// on the channel can issue and whole scheduling scans can be skipped.
    #[inline]
    pub fn channel_floor(&self, channel: usize) -> u64 {
        self.channels[channel].core().channel_floor()
    }

    /// The channel a transaction decodes to.
    #[inline]
    pub fn channel_of(&self, txn: &MemTransaction) -> usize {
        self.decode(txn.addr).channel
    }

    /// Resolve a cached probe against the current cycle. The cache regime
    /// logic reproduces `probe`'s answer exactly:
    ///
    /// * `now < raw` — some raw timing bound still holds; the fold triple
    ///   is `now`-independent in this regime, so the cached blocker
    ///   attribution applies verbatim.
    /// * `raw ≤ now < start` — every raw bound has passed but grid
    ///   alignment / refresh avoidance still push the start to the cached
    ///   `start`; a fresh fold from `now` would find no dominating bound,
    ///   so the attribution is `None` (self/alignment/refresh).
    /// * `now ≥ start` — only the two `now`-dependent post-fold checks
    ///   remain: the command-clock grid and the rank's refresh blackouts
    ///   ([`ChannelCore::grid_clear`]).
    fn cached_answer(
        core: &ChannelCore,
        txn: &MemTransaction,
        now: u64,
        cache: &ProbeCache,
    ) -> SchedProbe {
        if now < cache.raw {
            let head_blocker = if cache.refreshed || cache.blocker == NO_OWNER {
                None
            } else {
                Some(cache.blocker as usize).filter(|&b| b != txn.app)
            };
            SchedProbe {
                issuable: false,
                kind: cache.kind,
                head_blocker,
            }
        } else {
            SchedProbe {
                issuable: now >= cache.start && core.grid_clear(cache.rank as usize, now),
                kind: cache.kind,
                head_blocker: None,
            }
        }
    }

    /// Fill `cache` from a fresh `now`-independent probe of `txn`'s channel.
    fn fill_cache(&self, txn: &MemTransaction, cache: &mut ProbeCache) -> &ChannelCore {
        let loc = self.decode(txn.addr);
        let core = self.channels[loc.channel].core();
        // Fold from cycle 0: every lower bound is a pure function of
        // committed state, so the raw fold, the aligned start, and the
        // dominating owner are valid for *any* probed `now` (see
        // `cached_answer` for the regime split).
        let (raw, _, blocker, kind) = core.raw_probe(loc.rank, loc.bank, loc.row, txn.is_write, 0);
        let (start, refreshed) = core.align_and_avoid_refresh(loc.rank, raw);
        *cache = ProbeCache {
            version: core.version(),
            channel: loc.channel as u32,
            rank: loc.rank as u32,
            raw,
            start,
            kind,
            blocker: blocker.map_or(NO_OWNER, |b| b as u32),
            refreshed,
        };
        core
    }

    /// Cached scheduling probe: semantically identical to
    /// `(issuable_at(txn, now), blocking_app(txn, now))` but answered from
    /// `cache` in a handful of integer compares while `txn`'s channel has
    /// not committed anything since the cache was filled. On a version
    /// miss the probe is recomputed once and the cache refilled; the cache
    /// is transparent — answers never depend on whether it was hit.
    pub fn sched_probe(
        &self,
        txn: &MemTransaction,
        now: u64,
        cache: &mut ProbeCache,
    ) -> SchedProbe {
        if cache.version != 0 {
            let core = self.channels[cache.channel as usize].core();
            if core.version() == cache.version {
                return Self::cached_answer(core, txn, now, cache);
            }
        }
        let core = self.fill_cache(txn, cache);
        Self::cached_answer(core, txn, now, cache)
    }

    /// Read-only variant of [`sched_probe`](Self::sched_probe) for the
    /// parallel candidate gather: a stale `cache` is recomputed into a
    /// local scratch instead of being refreshed in place, so concurrent
    /// gathers over shared queues need no synchronization. Answers are
    /// identical to `sched_probe`'s.
    pub fn sched_probe_ro(&self, txn: &MemTransaction, now: u64, cache: &ProbeCache) -> SchedProbe {
        if cache.version != 0 {
            let core = self.channels[cache.channel as usize].core();
            if core.version() == cache.version {
                return Self::cached_answer(core, txn, now, cache);
            }
        }
        let mut scratch = ProbeCache::default();
        let core = self.fill_cache(txn, &mut scratch);
        Self::cached_answer(core, txn, now, &scratch)
    }

    /// Issue `txn` at cycle `now` (its first command is driven at the probe
    /// start, which must equal the aligned `now` for a controller that
    /// checked [`can_issue`](Self::can_issue) first; issuing "late" is
    /// allowed and simply starts at the earliest legal cycle ≥ `now`).
    pub fn issue(&mut self, txn: &MemTransaction, now: u64) -> Completion {
        let loc = self.decode(txn.addr);
        let mut probe =
            self.channels[loc.channel].probe(loc.rank, loc.bank, loc.row, txn.is_write, now);
        if probe.start < now {
            probe.start = now;
        }
        let (_, data_end) = self.channels[loc.channel].commit(
            loc.rank,
            loc.bank,
            loc.row,
            txn.is_write,
            txn.app,
            &probe,
        );
        let row_hit = probe.kind == crate::bank::AccessKind::RowHit;
        match probe.kind {
            crate::bank::AccessKind::RowHit => obs_count!(self.obs, row_hits),
            crate::bank::AccessKind::RowMiss => obs_count!(self.obs, row_misses),
            crate::bank::AccessKind::RowConflict => obs_count!(self.obs, row_conflicts),
        }
        self.stats.record(
            txn.app,
            loc.flat_bank(&self.cfg),
            txn.is_write,
            probe.kind,
            self.timings().tburst,
            data_end.saturating_sub(now),
        );
        Completion {
            app: txn.app,
            addr: txn.addr,
            is_write: txn.is_write,
            start_cycle: probe.start,
            done_cycle: data_end,
            row_hit,
        }
    }

    /// Cycle by which all committed traffic across every channel has fully
    /// drained (data buses free, banks idle again). Upper-bounds the
    /// `done_cycle` of every completion issued so far — the contract the
    /// memory controller's fast-forward event query checks against.
    pub fn quiesce_at(&self) -> u64 {
        self.channels
            .iter()
            .map(Channel::quiesce_at)
            .fold(0, u64::max)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Reset statistics at a phase boundary (timing state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> DramSystem {
        let mut s = DramSystem::new(DramConfig::ddr2_400());
        s.set_app_count(4);
        s
    }

    /// Skip past every rank's initial refresh blackout.
    fn warm_start(s: &DramSystem) -> u64 {
        s.timings().trfc + s.timings().trefi / 2
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut s = sys();
        let t = *s.timings();
        let now = warm_start(&s);
        let txn = MemTransaction {
            app: 0,
            addr: 1 << 20,
            is_write: false,
        };
        let c = s.issue(&txn, now);
        // Idle-bank read: start aligned at/after now, done = start + tRCD +
        // CL + burst.
        assert!(c.start_cycle >= now);
        assert_eq!(c.done_cycle, c.start_cycle + t.trcd + t.cl + t.tburst);
        assert!(!c.row_hit);
        assert_eq!(s.stats().served, 1);
        assert_eq!(s.stats().per_app_served[0], 1);
    }

    #[test]
    fn streaming_different_banks_is_bus_limited() {
        let mut s = sys();
        let t = *s.timings();
        let now = warm_start(&s);
        // 64 consecutive lines interleave ranks/banks; issue as fast as
        // possible and measure the steady-state rate.
        let mut done = Vec::new();
        let mut cycle = now;
        for i in 0..64u64 {
            let txn = MemTransaction {
                app: 0,
                addr: (1 << 22) + i * 64,
                is_write: false,
            };
            let p = s.probe(&txn, cycle);
            let c = s.issue(&txn, p.start.max(cycle));
            done.push(c.done_cycle);
            cycle = p.start;
        }
        // Steady-state spacing between completions approaches tburst
        // (refresh may add occasional gaps; use the median).
        let mut gaps: Vec<u64> = done.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(
            median <= t.tburst + t.tck,
            "median completion gap {median} should be ≈ tburst {}",
            t.tburst
        );
    }

    #[test]
    fn same_bank_stream_is_trc_limited() {
        let mut s = sys();
        let t = *s.timings();
        let now = warm_start(&s);
        // Same bank, different rows: every access pays the full row cycle.
        let lines_per_sweep = 4 * 8 * (8192 / 64) as u64; // rank*bank*col lines per row
        let mut completions = Vec::new();
        let mut cycle = now;
        for i in 0..8u64 {
            let txn = MemTransaction {
                app: 0,
                addr: i * lines_per_sweep * 64, // same rank 0 / bank 0, new row
                is_write: false,
            };
            let p = s.probe(&txn, cycle);
            let c = s.issue(&txn, p.start.max(cycle));
            completions.push(c.done_cycle);
            cycle = p.start;
        }
        let min_gap = completions.windows(2).map(|w| w[1] - w[0]).min().unwrap();
        assert!(
            min_gap >= t.tras + t.trp,
            "same-bank gap {min_gap} < tRC {}",
            t.tras + t.trp
        );
    }

    #[test]
    fn blocking_app_attributes_cross_app_interference() {
        let mut s = sys();
        let now = warm_start(&s);
        // App 0 occupies bank (rank 0, bank 0).
        let txn0 = MemTransaction {
            app: 0,
            addr: 1 << 22,
            is_write: false,
        };
        let c = s.issue(&txn0, now);
        // App 1 wants the same bank, different row → blocked by app 0.
        let lines_per_sweep = (4 * 8 * (8192 / 64)) as u64;
        let txn1 = MemTransaction {
            app: 1,
            addr: (1 << 22) + lines_per_sweep * 64,
            is_write: false,
        };
        let during = c.start_cycle + 50;
        assert!(!s.can_issue(&txn1, during));
        assert_eq!(s.blocking_app(&txn1, during), Some(0));
        // App 0 probing its own blocked bank sees no *interference*.
        let txn0b = MemTransaction {
            app: 0,
            addr: (1 << 22) + 2 * lines_per_sweep * 64,
            is_write: false,
        };
        assert_eq!(s.blocking_app(&txn0b, during), None);
    }

    #[test]
    fn peak_bandwidth_approached_under_saturation() {
        let mut s = sys();
        let t = *s.timings();
        let start = warm_start(&s);
        let horizon = 500_000u64;
        let mut served = 0u64;
        let mut cycle = start;
        let mut line = 0u64;
        while cycle < start + horizon {
            let txn = MemTransaction {
                app: 0,
                addr: (1 << 24) + line * 64,
                is_write: false,
            };
            let p = s.probe(&txn, cycle);
            if p.start >= start + horizon {
                break;
            }
            s.issue(&txn, p.start);
            served += 1;
            line += 1;
            cycle = p.start;
        }
        let apc = served as f64 / horizon as f64;
        let peak = 1.0 / t.tburst as f64;
        // Within 15% of peak (refresh and turnaround overheads).
        assert!(
            apc > peak * 0.85,
            "achieved APC {apc} far below peak {peak}"
        );
        // Bus utilization consistent with served count.
        let util = s.stats().bus_utilization(horizon);
        assert!(util > 0.8 && util <= 1.01, "util {util}");
    }

    #[test]
    fn issue_late_never_starts_before_now() {
        let mut s = sys();
        let now = warm_start(&s) + 12_345; // deliberately unaligned
        let txn = MemTransaction {
            app: 2,
            addr: 0x8000,
            is_write: true,
        };
        let c = s.issue(&txn, now);
        assert!(c.start_cycle >= now);
        assert_eq!(s.stats().writes, 1);
    }

    #[test]
    fn determinism_same_sequence_same_completions() {
        let run = || {
            let mut s = sys();
            let mut out = Vec::new();
            let mut cycle = warm_start(&s);
            for i in 0..100u64 {
                let txn = MemTransaction {
                    app: (i % 4) as usize,
                    addr: i.wrapping_mul(0x9E3779B97F4A7C15) & 0xFFF_FFC0,
                    is_write: i % 5 == 0,
                };
                let p = s.probe(&txn, cycle);
                let c = s.issue(&txn, p.start.max(cycle));
                out.push(c);
                cycle = p.start;
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quiesce_bounds_every_completion() {
        let mut s = sys();
        assert_eq!(s.quiesce_at(), 0);
        let mut cycle = warm_start(&s);
        for i in 0..50u64 {
            let txn = MemTransaction {
                app: (i % 4) as usize,
                addr: i.wrapping_mul(0x9E3779B97F4A7C15) & 0xFFF_FFC0,
                is_write: i % 5 == 0,
            };
            let p = s.probe(&txn, cycle);
            let c = s.issue(&txn, p.start.max(cycle));
            assert!(
                c.done_cycle <= s.quiesce_at(),
                "completion {} beyond quiesce {}",
                c.done_cycle,
                s.quiesce_at()
            );
            cycle = p.start;
        }
    }

    /// The cached scheduling probe must answer exactly like the uncached
    /// `(issuable_at, blocking_app)` pair at every cycle — including
    /// off-grid cycles, refresh blackouts, and across cache invalidations —
    /// whether the cache is hot, cold, or stale.
    #[test]
    fn sched_probe_matches_uncached_probe() {
        let mut s = sys();
        let mut state = 0xC0FFEEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pending: Vec<(MemTransaction, ProbeCache)> = (0..12)
            .map(|i| {
                (
                    MemTransaction {
                        app: (i % 4) as usize,
                        addr: (rng() % (1 << 24)) & !63,
                        is_write: rng() % 4 == 0,
                    },
                    ProbeCache::default(),
                )
            })
            .collect();
        let mut now = 0u64;
        for step in 0..4000u64 {
            // Deliberately hit off-grid cycles too.
            now += 1 + rng() % 40;
            for (txn, cache) in &mut pending {
                let want_issuable = s.can_issue(txn, now);
                let want_blocker = s.blocking_app(txn, now);
                let got_rw = s.sched_probe(txn, now, cache);
                let got_ro = s.sched_probe_ro(txn, now, cache);
                assert_eq!(got_rw, got_ro, "ro/rw divergence at {now}");
                assert_eq!(got_rw.issuable, want_issuable, "issuable at {now}");
                if want_issuable {
                    assert_eq!(Some(got_rw.kind), s.issuable_at(txn, now));
                } else {
                    assert_eq!(got_rw.head_blocker, want_blocker, "blocker at {now}");
                }
            }
            // Occasionally issue something to mutate channel state (and
            // invalidate caches), occasionally swap a request.
            if step % 3 == 0 {
                if let Some((txn, _)) = pending.iter().find(|(t, _)| s.can_issue(t, now)) {
                    let txn = *txn;
                    s.issue(&txn, now);
                }
            }
            if step % 7 == 0 {
                let i = (rng() % pending.len() as u64) as usize;
                pending[i] = (
                    MemTransaction {
                        app: (rng() % 4) as usize,
                        addr: (rng() % (1 << 24)) & !63,
                        is_write: rng() % 4 == 0,
                    },
                    ProbeCache::default(),
                );
            }
        }
    }

    /// The channel floor must never exceed any request's probed start, and
    /// while it exceeds `now` nothing may issue.
    #[test]
    fn channel_floor_bounds_all_starts() {
        let mut s = sys();
        let mut now = warm_start(&s);
        for i in 0..200u64 {
            let txn = MemTransaction {
                app: (i % 4) as usize,
                addr: i.wrapping_mul(0x9E3779B97F4A7C15) & 0xFFF_FFC0,
                is_write: i % 5 == 0,
            };
            let floor = s.channel_floor(s.channel_of(&txn));
            let p = s.probe(&txn, now);
            assert!(p.start >= floor, "floor {floor} unsound: start {}", p.start);
            if floor > now {
                assert!(!s.can_issue(&txn, now), "issuable below floor at {now}");
            }
            let c = s.issue(&txn, p.start.max(now));
            now = c.start_cycle;
        }
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn invalid_config_panics() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.ranks = 5;
        let _ = DramSystem::new(cfg);
    }
}
