//! DRAM geometry, timing and policy configuration.
//!
//! Timing parameters are specified in **nanoseconds** and converted to CPU
//! cycles at construction. This mirrors the paper's scalability methodology
//! (Section VI-C): bandwidth is scaled "by only changing the memory bus
//! frequency, while the latency related parameters are not changed (i.e.
//! tRP-tRCD-CL is 12.5-12.5-12.5 ns for all bandwidths)". Here, raising
//! bandwidth shrinks only `tck_ns`; every latency stays fixed in ns.

use serde::{Deserialize, Serialize};

use crate::address::MappingScheme;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Auto-precharge after every column access (the paper's Table II
    /// baseline). Every access pays ACT + RD/WR; there are no row hits.
    ClosePage,
    /// Rows stay open until a conflicting access or refresh; row hits skip
    /// the ACT. Needed by FR-FCFS-style scheduling experiments.
    OpenPage,
}

/// DRAM timing parameters in nanoseconds (DDR2-style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingNs {
    /// DRAM bus clock period. DDR2-400 has a 200 MHz bus: 5 ns.
    pub tck: f64,
    /// Row precharge.
    pub trp: f64,
    /// RAS-to-CAS delay.
    pub trcd: f64,
    /// CAS (read) latency.
    pub cl: f64,
    /// Minimum row-active time.
    pub tras: f64,
    /// Write recovery after the last write data beat.
    pub twr: f64,
    /// Write-to-read turnaround (after last write data beat).
    pub twtr: f64,
    /// Read-to-precharge.
    pub trtp: f64,
    /// ACT-to-ACT delay, same rank.
    pub trrd: f64,
    /// Four-activate window, per rank.
    pub tfaw: f64,
    /// Refresh cycle time.
    pub trfc: f64,
    /// Average refresh interval.
    pub trefi: f64,
}

impl TimingNs {
    /// DDR2-400 timings per the paper's Table II (12.5 ns tRP-tRCD-CL) with
    /// JEDEC-typical values for the parameters the paper doesn't list.
    pub fn ddr2_400() -> Self {
        let t = TimingNs {
            tck: 5.0,
            trp: 12.5,
            trcd: 12.5,
            cl: 12.5,
            tras: 45.0,
            twr: 15.0,
            twtr: 7.5,
            trtp: 7.5,
            trrd: 7.5,
            tfaw: 50.0,
            trfc: 127.5,
            trefi: 7800.0,
        };
        t.check_sanity();
        t
    }

    /// Debug-mode sanity contract over the JEDEC ordering relations every
    /// coherent DDR timing set obeys. [`DramConfig::validate`] reports bad
    /// *user* configurations as `Err`; this contract guards the presets and
    /// scaling paths that are supposed to be correct by construction.
    pub fn check_sanity(&self) {
        bwpart_core::invariant!(
            self.tck > 0.0 && self.tck.is_finite(),
            "tCK must be a positive, finite period (got {} ns)",
            self.tck
        );
        bwpart_core::invariant!(
            self.tras >= self.trcd,
            "tRAS ({} ns) must cover at least the RAS-to-CAS delay tRCD ({} ns)",
            self.tras,
            self.trcd
        );
        bwpart_core::invariant!(
            self.tfaw >= self.trrd,
            "tFAW ({} ns) cannot be shorter than one ACT-to-ACT gap tRRD ({} ns)",
            self.tfaw,
            self.trrd
        );
        bwpart_core::invariant!(
            self.trefi > self.trfc,
            "refresh interval tREFI ({} ns) must exceed refresh cycle tRFC ({} ns)",
            self.trefi,
            self.trfc
        );
        bwpart_core::invariant!(
            self.cl >= self.tck,
            "CAS latency CL ({} ns) cannot be shorter than one bus clock ({} ns)",
            self.cl,
            self.tck
        );
    }
}

/// Full DRAM subsystem configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Timing parameters in ns.
    pub timing: TimingNs,
    /// CPU clock in GHz; converts ns to CPU cycles (Table II: 5 GHz cores).
    pub cpu_ghz: f64,
    /// Number of independent channels (the paper's config uses one).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank (Table II: 4 ranks × 8 banks = 32 DRAM banks).
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Data bus width in bytes (Table II: 8 B).
    pub bus_bytes: usize,
    /// Cache line (transaction) size in bytes (Table II: 64 B).
    pub line_bytes: usize,
    /// Row-buffer policy (Table II: close page).
    pub page_policy: PagePolicy,
    /// Physical-address mapping (Table II: `channel:row:col:bank:rank`).
    pub mapping: MappingScheme,
}

impl DramConfig {
    /// The paper's baseline: DDR2-400 (PC3200), 3.2 GB/s peak, close page,
    /// 32 banks, 5 GHz CPU.
    pub fn ddr2_400() -> Self {
        DramConfig {
            timing: TimingNs::ddr2_400(),
            cpu_ghz: 5.0,
            channels: 1,
            ranks: 4,
            banks_per_rank: 8,
            rows: 32768,
            bus_bytes: 8,
            line_bytes: 64,
            page_policy: PagePolicy::ClosePage,
            mapping: MappingScheme::ChRowColBankRank,
        }
    }

    /// The ~6.4 GB/s scalability point: bus frequency doubled, latencies
    /// unchanged in ns (Section VI-C). The period is nudged from 2.5 ns to
    /// 2.4 ns so a bus clock stays an integer number of 5 GHz CPU cycles
    /// (12); the resulting 2.08× peak-bandwidth step is immaterial to the
    /// scalability trend.
    pub fn ddr2_800() -> Self {
        let mut cfg = Self::ddr2_400();
        cfg.timing.tck = 2.4;
        cfg.timing.check_sanity();
        cfg
    }

    /// The ~12.8 GB/s scalability point: bus frequency quadrupled (1.2 ns
    /// period = 6 CPU cycles; see [`DramConfig::ddr2_800`] on the rounding).
    pub fn ddr2_1600() -> Self {
        let mut cfg = Self::ddr2_400();
        cfg.timing.tck = 1.2;
        cfg.timing.check_sanity();
        cfg
    }

    /// Convert nanoseconds to CPU cycles, rounding up (conservative).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.cpu_ghz).ceil() as u64
    }

    /// DRAM clock period in CPU cycles.
    pub fn tck_cycles(&self) -> u64 {
        self.ns_to_cycles(self.timing.tck).max(1)
    }

    /// Data-bus occupancy of one line transfer in CPU cycles:
    /// `line_bytes / bus_bytes` beats at two beats per DRAM clock (DDR).
    pub fn burst_cycles(&self) -> u64 {
        let beats = (self.line_bytes / self.bus_bytes) as u64;
        (beats / 2).max(1) * self.tck_cycles()
    }

    /// Peak line-transfer bandwidth in bytes/second.
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        let cycles_per_line = self.burst_cycles() as f64 / self.channels as f64;
        let secs_per_cycle = 1e-9 / self.cpu_ghz;
        self.line_bytes as f64 / (cycles_per_line * secs_per_cycle)
    }

    /// Peak bandwidth expressed in the model's APC unit (memory accesses —
    /// i.e. line transfers — per CPU cycle).
    pub fn peak_apc(&self) -> f64 {
        self.channels as f64 / self.burst_cycles() as f64
    }

    /// Total number of banks across the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks_per_rank
    }

    /// CAS write latency in ns (DDR2 convention: CL − tCK).
    pub fn cwl_ns(&self) -> f64 {
        (self.timing.cl - self.timing.tck).max(self.timing.tck)
    }

    /// Validate internal consistency (power-of-two geometry, non-zero
    /// timing, line/bus compatibility).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks_per_rank == 0 || self.rows == 0 {
            return Err("geometry fields must be non-zero".into());
        }
        for (name, v) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks_per_rank", self.banks_per_rank),
            ("rows", self.rows),
        ] {
            if !v.is_power_of_two() {
                return Err(format!("{name} must be a power of two, got {v}"));
            }
        }
        if self.line_bytes == 0
            || self.bus_bytes == 0
            || !self.line_bytes.is_multiple_of(self.bus_bytes)
        {
            return Err("line_bytes must be a positive multiple of bus_bytes".into());
        }
        if !(self.line_bytes.is_power_of_two() && self.bus_bytes.is_power_of_two()) {
            return Err("line_bytes and bus_bytes must be powers of two".into());
        }
        let t = &self.timing;
        for (name, v) in [
            ("tck", t.tck),
            ("trp", t.trp),
            ("trcd", t.trcd),
            ("cl", t.cl),
            ("tras", t.tras),
            ("twr", t.twr),
            ("twtr", t.twtr),
            ("trtp", t.trtp),
            ("trrd", t.trrd),
            ("tfaw", t.tfaw),
            ("trfc", t.trfc),
            ("trefi", t.trefi),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("timing {name} must be positive, got {v}"));
            }
        }
        if !(self.cpu_ghz.is_finite() && self.cpu_ghz > 0.0) {
            return Err("cpu_ghz must be positive".into());
        }
        if t.trefi <= t.trfc {
            return Err("trefi must exceed trfc".into());
        }
        Ok(())
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn ddr2_400_matches_table2() {
        let cfg = DramConfig::ddr2_400();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_banks(), 32);
        assert_eq!(cfg.bus_bytes, 8);
        assert_eq!(cfg.line_bytes, 64);
        assert_eq!(cfg.page_policy, PagePolicy::ClosePage);
        // 200 MHz bus at 5 GHz CPU: 25 CPU cycles per DRAM clock.
        assert_eq!(cfg.tck_cycles(), 25);
        // 64 B / 8 B = 8 beats = 4 DRAM clocks = 100 CPU cycles.
        assert_eq!(cfg.burst_cycles(), 100);
        // Peak bandwidth: one line per 100 CPU cycles at 5 GHz = 3.2 GB/s.
        assert!((cfg.peak_bandwidth_bytes_per_sec() - 3.2e9).abs() < 1e6);
        // In model units: 0.01 APC — the paper's Section III-A example.
        assert!((cfg.peak_apc() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn latency_cycles_from_ns() {
        let cfg = DramConfig::ddr2_400();
        // 12.5 ns at 5 GHz = 62.5 -> 63 CPU cycles.
        assert_eq!(cfg.ns_to_cycles(cfg.timing.trp), 63);
        assert_eq!(cfg.ns_to_cycles(cfg.timing.trcd), 63);
        assert_eq!(cfg.ns_to_cycles(cfg.timing.cl), 63);
    }

    #[test]
    fn scaling_presets_double_bandwidth_keep_latency() {
        let base = DramConfig::ddr2_400();
        let x2 = DramConfig::ddr2_800();
        let x4 = DramConfig::ddr2_1600();
        assert!(
            (x2.peak_bandwidth_bytes_per_sec() / base.peak_bandwidth_bytes_per_sec() - 2.0).abs()
                < 0.1
        );
        assert!(
            (x4.peak_bandwidth_bytes_per_sec() / base.peak_bandwidth_bytes_per_sec() - 4.0).abs()
                < 0.2
        );
        assert_eq!(x2.tck_cycles(), 12);
        assert_eq!(x4.tck_cycles(), 6);
        // Latency parameters unchanged in ns.
        assert_eq!(base.timing.trp, x2.timing.trp);
        assert_eq!(base.timing.cl, x4.timing.cl);
        x2.validate().unwrap();
        x4.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.ranks = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = DramConfig::ddr2_400();
        cfg.line_bytes = 60;
        assert!(cfg.validate().is_err());
        let mut cfg = DramConfig::ddr2_400();
        cfg.timing.tras = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = DramConfig::ddr2_400();
        cfg.timing.trefi = cfg.timing.trfc;
        assert!(cfg.validate().is_err());
        let mut cfg = DramConfig::ddr2_400();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cwl_is_cl_minus_one_clock() {
        let cfg = DramConfig::ddr2_400();
        assert!((cfg.cwl_ns() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn multi_channel_scales_peak_apc() {
        let mut cfg = DramConfig::ddr2_400();
        cfg.channels = 2;
        cfg.validate().unwrap();
        assert!((cfg.peak_apc() - 0.02).abs() < 1e-12);
    }
}
