//! Differential tests: the struct-of-arrays timing core must be
//! observation-equivalent to the object-per-bank model it replaced.
//!
//! The reference below is the pre-SoA `Channel` implementation, rebuilt
//! verbatim on top of the kept [`Bank`] state machine (`bank.rs` survives
//! exactly for this purpose, the way `run_per_cycle` anchors the event
//! fast-forward). Random transaction streams are pushed through both
//! paths and every observable — probe starts, block reasons, blocking
//! owners, `issuable_at` answers at arbitrary cycles, commit data
//! windows, and the per-kind service counters — must match cycle-for-
//! cycle under both page policies.

use std::collections::VecDeque;

use bwpart_dram::bank::{AccessKind, Bank, Timings};
use bwpart_dram::channel::{BlockReason, Channel, ChannelProbe};
use bwpart_dram::{DramConfig, PagePolicy};
use proptest::prelude::*;

/// The object-model reference channel: a line-for-line port of the
/// pre-SoA implementation over per-`Bank` objects.
struct RefChannel {
    t: Timings,
    policy: PagePolicy,
    banks_per_rank: usize,
    banks: Vec<Bank>,
    rank_acts: Vec<VecDeque<u64>>,
    rank_act_owner: Vec<Option<usize>>,
    bus_free: u64,
    bus_owner: Option<usize>,
    bus_last_write: bool,
    last_write_data_end: u64,
    last_start: Option<u64>,
    refresh_applied: Vec<u64>,
    refresh_phase: Vec<u64>,
}

impl RefChannel {
    fn new(cfg: &DramConfig) -> Self {
        let t = Timings::from_config(cfg);
        RefChannel {
            t,
            policy: cfg.page_policy,
            banks_per_rank: cfg.banks_per_rank,
            banks: vec![Bank::default(); cfg.ranks * cfg.banks_per_rank],
            rank_acts: vec![VecDeque::with_capacity(4); cfg.ranks],
            rank_act_owner: vec![None; cfg.ranks],
            bus_free: 0,
            bus_owner: None,
            bus_last_write: false,
            last_write_data_end: 0,
            last_start: None,
            refresh_applied: vec![0; cfg.ranks],
            refresh_phase: (0..cfg.ranks as u64)
                .map(|r| (2 * r + 1) * t.trefi / (2 * cfg.ranks as u64))
                .collect(),
        }
    }

    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bank
    }

    fn align_up(&self, cycle: u64) -> u64 {
        let t = self.t.tck;
        cycle.div_ceil(t) * t
    }

    fn blackout_before(&self, rank: usize, cycle: u64) -> (u64, u64) {
        let phase = self.refresh_phase[rank];
        if cycle < phase {
            return (0, 0);
        }
        let k = (cycle - phase) / self.t.trefi;
        let start = phase + k * self.t.trefi;
        (start, start + self.t.trfc)
    }

    fn avoid_blackout(&self, rank: usize, cycle: u64) -> u64 {
        let (start, end) = self.blackout_before(rank, cycle);
        if cycle >= start && cycle < end {
            end
        } else {
            cycle
        }
    }

    fn apply_refreshes(&mut self, rank: usize, upto: u64) {
        let (start, end) = self.blackout_before(rank, upto);
        if end > 0 && start >= self.refresh_applied[rank] {
            for b in 0..self.banks_per_rank {
                let idx = self.bank_index(rank, b);
                self.banks[idx].refresh_until(end);
            }
            self.refresh_applied[rank] = end;
        }
    }

    fn raw_probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> (u64, BlockReason, Option<usize>, AccessKind) {
        let t = &self.t;
        let b = &self.banks[self.bank_index(rank, bank)];
        let bank_probe = b.probe(row, self.policy, t);
        let kind = bank_probe.kind;
        let cas_off = kind.cas_offset(t);
        let act_off = match kind {
            AccessKind::RowHit => None,
            AccessKind::RowMiss => Some(0),
            AccessKind::RowConflict => Some(t.trp),
        };
        let data_off = cas_off + if is_write { t.cwl } else { t.cl };

        let (mut start, mut reason, mut blocker) = (now, BlockReason::Bank, None);
        let mut fold = |lb: u64, r: BlockReason, owner: Option<usize>| {
            if lb > start {
                start = lb;
                reason = r;
                blocker = owner;
            }
        };
        fold(bank_probe.earliest_start, BlockReason::Bank, b.last_owner);

        if let Some(aoff) = act_off {
            if let Some(&last) = self.rank_acts[rank].back() {
                let lb = (last + t.trrd).saturating_sub(aoff);
                fold(lb, BlockReason::RankAct, self.rank_act_owner[rank]);
            }
            if self.rank_acts[rank].len() >= 4 {
                let oldest = self.rank_acts[rank][self.rank_acts[rank].len() - 4];
                let lb = (oldest + t.tfaw).saturating_sub(aoff);
                fold(lb, BlockReason::RankAct, self.rank_act_owner[rank]);
            }
        }

        let mut bus_ready = self.bus_free;
        if self.bus_owner.is_some() {
            if self.bus_last_write && !is_write {
                let cas_lb = self.last_write_data_end + t.twtr;
                bus_ready = bus_ready.max(cas_lb + if is_write { t.cwl } else { t.cl });
            } else if !self.bus_last_write && is_write {
                bus_ready = bus_ready.max(self.bus_free + t.tck);
            }
        }
        fold(
            bus_ready.saturating_sub(data_off),
            BlockReason::DataBus,
            self.bus_owner,
        );

        if let Some(last) = self.last_start {
            fold(last + t.tck, BlockReason::CommandSlot, self.bus_owner);
        }

        (start, reason, blocker, kind)
    }

    fn align_and_avoid_refresh(&self, rank: usize, mut start: u64) -> (u64, bool) {
        let mut refreshed = false;
        for _ in 0..4 {
            let aligned = self.align_up(start);
            let moved = self.avoid_blackout(rank, aligned);
            if moved != aligned {
                start = moved;
                refreshed = true;
            } else {
                return (aligned, refreshed);
            }
        }
        (start, refreshed)
    }

    fn probe(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> ChannelProbe {
        let (raw, mut reason, mut blocker, kind) = self.raw_probe(rank, bank, row, is_write, now);
        let (start, refreshed) = self.align_and_avoid_refresh(rank, raw);
        if refreshed {
            reason = BlockReason::Refresh;
            blocker = None;
        }
        ChannelProbe {
            start,
            kind,
            block: if start > now { Some(reason) } else { None },
            blocker: blocker.filter(|_| start > now),
        }
    }

    fn issuable_at(
        &self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        now: u64,
    ) -> Option<AccessKind> {
        let (raw, _, _, kind) = self.raw_probe(rank, bank, row, is_write, now);
        if raw > now {
            return None;
        }
        let (start, _) = self.align_and_avoid_refresh(rank, raw);
        (start <= now).then_some(kind)
    }

    fn commit(
        &mut self,
        rank: usize,
        bank: usize,
        row: usize,
        is_write: bool,
        app: usize,
        start: u64,
    ) -> (u64, u64, AccessKind) {
        self.apply_refreshes(rank, start);
        let t = self.t;
        let idx = self.bank_index(rank, bank);
        let kind = self.banks[idx].probe(row, self.policy, &t).kind;
        let (data_start, data_end) =
            self.banks[idx].commit(start, kind, row, is_write, app, self.policy, &t);

        if kind != AccessKind::RowHit {
            let act_time = match kind {
                AccessKind::RowConflict => start + t.trp,
                _ => start,
            };
            let acts = &mut self.rank_acts[rank];
            if acts.len() == 4 {
                acts.pop_front();
            }
            acts.push_back(act_time);
            self.rank_act_owner[rank] = Some(app);
        }

        self.bus_free = data_end;
        self.bus_owner = Some(app);
        self.bus_last_write = is_write;
        if is_write {
            self.last_write_data_end = data_end;
        }
        self.last_start = Some(start);
        (data_start, data_end, kind)
    }

    fn quiesce_at(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.busy_until)
            .fold(self.bus_free, u64::max)
    }
}

#[derive(Debug, Clone)]
struct Op {
    rank: usize,
    bank: usize,
    row: usize,
    is_write: bool,
    app: usize,
    gap: u64,
    /// Probe-only (don't commit) with probability ~1/4: exercises the
    /// read paths at cycles where nothing mutates.
    commit: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            (0usize..4, 0usize..8, 0usize..1024),
            (any::<bool>(), 0usize..4, 0u64..300, 0u8..4),
        ),
        1..250,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|((rank, bank, row), (is_write, app, gap, c))| Op {
                rank,
                bank,
                row,
                is_write,
                app,
                gap,
                commit: c != 0,
            })
            .collect()
    })
}

fn config(open_page: bool) -> DramConfig {
    let mut cfg = DramConfig::ddr2_400();
    if open_page {
        cfg.page_policy = PagePolicy::OpenPage;
    }
    cfg
}

/// Drive both paths through one op stream, asserting every observable.
fn check_equivalence(open_page: bool, ops: &[Op]) {
    let cfg = config(open_page);
    let mut soa = Channel::new(&cfg);
    let mut reference = RefChannel::new(&cfg);
    let mut now = 0u64;
    // Per-kind service counters: the stats feed (`DramStats::record` takes
    // the committed kind), accumulated independently from both paths.
    let mut kinds_soa = [0u64; 3];
    let mut kinds_ref = [0u64; 3];
    for op in ops {
        now += op.gap;
        let ps = soa.probe(op.rank, op.bank, op.row, op.is_write, now);
        let pr = reference.probe(op.rank, op.bank, op.row, op.is_write, now);
        assert_eq!(ps, pr, "probe divergence at {now} for {op:?}");
        // issuable_at at the probed cycle, at the start, and off-grid.
        for probe_at in [now, ps.start, ps.start + 1, now + 7] {
            assert_eq!(
                soa.issuable_at(op.rank, op.bank, op.row, op.is_write, probe_at),
                reference.issuable_at(op.rank, op.bank, op.row, op.is_write, probe_at),
                "issuable_at divergence at {probe_at} for {op:?}"
            );
        }
        if op.commit {
            let (ds, de) = soa.commit(op.rank, op.bank, op.row, op.is_write, op.app, &ps);
            let (rds, rde, rkind) =
                reference.commit(op.rank, op.bank, op.row, op.is_write, op.app, pr.start);
            assert_eq!((ds, de), (rds, rde), "commit divergence at {now}");
            // Per-kind counters (the stats feed). The SoA side's committed
            // kind is recovered independently from its data window: the
            // CAS offset `ds − start − (CWL|CL)` uniquely identifies the
            // command structure.
            let t = Timings::from_config(&cfg);
            let cas_off = ds - ps.start - if op.is_write { t.cwl } else { t.cl };
            let skind = if cas_off == 0 {
                AccessKind::RowHit
            } else if cas_off == t.trcd {
                AccessKind::RowMiss
            } else {
                assert_eq!(cas_off, t.trp + t.trcd);
                AccessKind::RowConflict
            };
            kinds_soa[skind as usize] += 1;
            kinds_ref[rkind as usize] += 1;
            now = ps.start;
        }
        assert_eq!(soa.quiesce_at(), reference.quiesce_at(), "quiesce at {now}");
        assert_eq!(soa.bus_free_at(), reference.bus_free, "bus_free at {now}");
        // The whole-channel floor must lower-bound the reference's raw
        // probe for every possible next request.
        let floor = soa.core().channel_floor();
        let (raw, _, _, _) = reference.raw_probe(op.rank, op.bank, op.row ^ 1, !op.is_write, 0);
        assert!(raw >= floor, "floor {floor} above reference raw {raw}");
    }
    assert_eq!(kinds_soa, kinds_ref);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn soa_matches_object_model_close_page(ops in arb_ops()) {
        check_equivalence(false, &ops);
    }

    #[test]
    fn soa_matches_object_model_open_page(ops in arb_ops()) {
        check_equivalence(true, &ops);
    }
}

/// Long deterministic stream (beyond several tREFI periods) so refresh
/// application and the tFAW ring wrap many times under both policies.
#[test]
fn long_stream_equivalence_across_refresh_windows() {
    for open_page in [false, true] {
        let cfg = config(open_page);
        let mut soa = Channel::new(&cfg);
        let mut reference = RefChannel::new(&cfg);
        let mut state = 0xFEED_5EEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for _ in 0..3000 {
            let rank = (rng() % 4) as usize;
            let bank = (rng() % 8) as usize;
            let row = (rng() % 64) as usize;
            let is_write = rng() % 3 == 0;
            let app = (rng() % 4) as usize;
            now += rng() % 120;
            let ps = soa.probe(rank, bank, row, is_write, now);
            let pr = reference.probe(rank, bank, row, is_write, now);
            assert_eq!(ps, pr);
            let s = soa.commit(rank, bank, row, is_write, app, &ps);
            let r = reference.commit(rank, bank, row, is_write, app, pr.start);
            assert_eq!(s, (r.0, r.1));
            now = ps.start;
        }
        assert_eq!(soa.quiesce_at(), reference.quiesce_at());
    }
}
