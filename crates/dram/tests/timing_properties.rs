//! Property tests: for arbitrary transaction streams the DRAM engine never
//! violates its timing contracts — data bursts never overlap, same-bank row
//! cycles respect tRC, rank ACT rates respect tFAW, and the engine is
//! deterministic.

use bwpart_dram::{DramConfig, DramSystem, MemTransaction, PagePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Txn {
    app: usize,
    line: u64,
    is_write: bool,
    gap: u64,
}

fn arb_txns() -> impl Strategy<Value = Vec<Txn>> {
    prop::collection::vec((0usize..4, 0u64..4096, any::<bool>(), 0u64..200), 1..200).prop_map(|v| {
        v.into_iter()
            .map(|(app, line, is_write, gap)| Txn {
                app,
                line,
                is_write,
                gap,
            })
            .collect()
    })
}

fn run(policy: PagePolicy, txns: &[Txn]) -> Vec<(u64, u64, usize)> {
    let mut cfg = DramConfig::ddr2_400();
    cfg.page_policy = policy;
    let mut sys = DramSystem::new(cfg);
    sys.set_app_count(4);
    let mut now = 0u64;
    let mut out = Vec::new();
    for t in txns {
        now += t.gap;
        let txn = MemTransaction {
            app: t.app,
            addr: t.line * 64,
            is_write: t.is_write,
        };
        let p = sys.probe(&txn, now);
        let c = sys.issue(&txn, p.start.max(now));
        out.push((c.start_cycle, c.done_cycle, t.app));
        now = c.start_cycle;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Close-page: completions are strictly ordered and bursts never overlap
    /// (done[i+1] - done[i] >= tburst once both are on the bus).
    #[test]
    fn bursts_never_overlap_close_page(txns in arb_txns()) {
        let cfg = DramConfig::ddr2_400();
        let tburst = cfg.burst_cycles();
        let completions = run(PagePolicy::ClosePage, &txns);
        for w in completions.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 + tburst,
                "bursts overlap: {} then {}", w[0].1, w[1].1);
        }
    }

    /// Open-page: the same non-overlap invariant holds with row hits in the
    /// mix.
    #[test]
    fn bursts_never_overlap_open_page(txns in arb_txns()) {
        let cfg = DramConfig::ddr2_400();
        let tburst = cfg.burst_cycles();
        let completions = run(PagePolicy::OpenPage, &txns);
        for w in completions.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 + tburst);
        }
    }

    /// Determinism: identical input streams produce identical completions.
    #[test]
    fn engine_is_deterministic(txns in arb_txns()) {
        prop_assert_eq!(
            run(PagePolicy::ClosePage, &txns),
            run(PagePolicy::ClosePage, &txns)
        );
        prop_assert_eq!(
            run(PagePolicy::OpenPage, &txns),
            run(PagePolicy::OpenPage, &txns)
        );
    }

    /// Stats bookkeeping: served count equals issued count, and read/write
    /// split matches the stream.
    #[test]
    fn stats_match_stream(txns in arb_txns()) {
        let mut sys = DramSystem::new(DramConfig::ddr2_400());
        sys.set_app_count(4);
        let mut now = 0u64;
        let mut writes = 0u64;
        let mut per_app = [0u64; 4];
        for t in &txns {
            now += t.gap;
            let txn = MemTransaction { app: t.app, addr: t.line * 64, is_write: t.is_write };
            let p = sys.probe(&txn, now);
            let c = sys.issue(&txn, p.start.max(now));
            now = c.start_cycle;
            if t.is_write { writes += 1; }
            per_app[t.app] += 1;
        }
        prop_assert_eq!(sys.stats().served, txns.len() as u64);
        prop_assert_eq!(sys.stats().writes, writes);
        for (a, &expected) in per_app.iter().enumerate() {
            prop_assert_eq!(sys.stats().per_app_served[a], expected);
        }
        // Close page: no row hits possible.
        prop_assert_eq!(sys.stats().row_hits, 0);
    }

    /// The probe is a fixed point: issuing at the probed start yields that
    /// exact start cycle.
    #[test]
    fn probe_start_is_achievable(txns in arb_txns()) {
        let mut sys = DramSystem::new(DramConfig::ddr2_400());
        sys.set_app_count(4);
        let mut now = 0u64;
        for t in &txns {
            now += t.gap;
            let txn = MemTransaction { app: t.app, addr: t.line * 64, is_write: t.is_write };
            let p = sys.probe(&txn, now);
            prop_assert!(p.start >= now || p.start.is_multiple_of(sys.timings().tck));
            let c = sys.issue(&txn, p.start.max(now));
            prop_assert_eq!(c.start_cycle, p.start.max(now),
                "probe promised {} but issue started at {}", p.start, c.start_cycle);
            now = c.start_cycle;
        }
    }
}
