//! Property tests for the vendored pool's parallel map: for arbitrary
//! input lengths (empty, singleton, below one chunk, far beyond
//! chunks × threads) and arbitrary thread counts, `par_iter().map(f)`
//! must be bit-identical to the serial `iter().map(f)` — same values,
//! same order, nothing lost or duplicated.

use proptest::prelude::*;
use rayon::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel map ≡ serial map across lengths and thread counts. The
    /// length range deliberately straddles the pool's chunking regimes:
    /// 0 and 1 short-circuit, small inputs fit one chunk, and large ones
    /// spread over many chunks per worker.
    #[test]
    fn par_map_matches_serial_map(
        items in prop::collection::vec(any::<u64>(), 0..900),
        threads in 1usize..9,
        mul in any::<u64>(),
        add in any::<u64>(),
    ) {
        rayon::pool::set_num_threads(threads);
        let f = |x: u64| x.wrapping_mul(mul | 1).wrapping_add(add);
        let seq: Vec<u64> = items.iter().map(|&x| f(x)).collect();
        let par: Vec<u64> = items.par_iter().map(|&x| f(x)).collect();
        rayon::pool::set_num_threads(0);
        prop_assert_eq!(seq, par);
    }

    /// Owned iteration (`into_par_iter`) over ranges agrees with the
    /// serial equivalent for arbitrary bounds, including empty ranges.
    #[test]
    fn into_par_iter_matches_range(start in 0usize..500, len in 0usize..700, threads in 1usize..9) {
        rayon::pool::set_num_threads(threads);
        let out: Vec<usize> = (start..start + len).into_par_iter().map(|x| x * 3 + 1).collect();
        let expect: Vec<usize> = (start..start + len).map(|x| x * 3 + 1).collect();
        rayon::pool::set_num_threads(0);
        prop_assert_eq!(out, expect);
    }

    /// Nested parallel maps (the grid-sweep shape `run_grid` uses) stay
    /// index-exact: inner maps run inline inside workers and must merge
    /// identically to the doubly-serial map.
    #[test]
    fn nested_par_map_matches_serial(
        rows in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..40), 0..24),
        threads in 1usize..5,
    ) {
        rayon::pool::set_num_threads(threads);
        let out: Vec<Vec<u32>> = rows
            .par_iter()
            .map(|row| row.par_iter().map(|&v| v.wrapping_add(1)).collect())
            .collect();
        let expect: Vec<Vec<u32>> = rows
            .iter()
            .map(|row| row.iter().map(|&v| v.wrapping_add(1)).collect())
            .collect();
        rayon::pool::set_num_threads(0);
        prop_assert_eq!(out, expect);
    }
}
