//! Pinning tests for the vendored pool's process-wide semantics: the
//! `set_num_threads` override protocol and worker-context hygiene across
//! panics (audit finding F1 in `UNSAFE_AUDIT.md`).
//!
//! These run in the test binary's own process, so they exercise the real
//! `OnceLock` caching and thread-local behaviour end to end, on top of
//! the model-level coverage in `vendor/rayon/src/models.rs`.

use std::sync::Mutex;

use rayon::prelude::*;

/// Both tests mutate the process-wide thread-count override; serialize
/// them so neither observes the other's transient settings.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// F1 regression: a panicking mapped closure must not leave the calling
/// thread permanently marked as a pool worker. Before the RAII reset
/// guard, the first recovered panic silently serialized every later
/// `par_iter` on the thread.
#[test]
fn recovered_panic_keeps_parallelism() {
    let _serial = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rayon::pool::set_num_threads(2);
    let result = std::panic::catch_unwind(|| {
        let xs: Vec<u32> = (0..16).collect();
        // Every item panics, so the caller-side inline worker is
        // guaranteed to hit the unwind path (not just spawned workers).
        let _: Vec<u32> = xs
            .par_iter()
            .map(|&_x| -> u32 { panic!("seeded") })
            .collect();
    });
    assert!(result.is_err(), "the seeded panic must propagate");
    assert!(
        !rayon::pool::in_worker_context(),
        "IN_POOL leaked: this thread still believes it is a pool worker, \
         so every later par_iter would silently run serial"
    );

    // And the pool must actually still parallelize correctly: results
    // stay index-ordered and identical to the serial map.
    let xs: Vec<u64> = (0..4096).collect();
    let seq: Vec<u64> = xs.iter().map(|x| x.wrapping_mul(2654435761)).collect();
    let par: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect();
    assert_eq!(seq, par);
    rayon::pool::set_num_threads(0);
}

/// The pinned override protocol, end to end in a real process: an
/// explicit `set_num_threads` wins over whatever the (already cached)
/// environment said, and `set_num_threads(0)` restores the cached value.
#[test]
fn override_protocol_round_trips() {
    let _serial = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // First read caches the env/hardware choice, whatever it is.
    let automatic = rayon::pool::current_num_threads();
    assert!(automatic >= 1);

    for forced in [1usize, 2, 4, 8] {
        rayon::pool::set_num_threads(forced);
        assert_eq!(rayon::pool::current_num_threads(), forced);
    }

    rayon::pool::set_num_threads(0);
    assert_eq!(
        rayon::pool::current_num_threads(),
        automatic,
        "clearing the override must restore the cached automatic value"
    );
}
