//! `RAYON_NUM_THREADS` precedence, pinned in a dedicated test binary:
//! integration-test files each run as their own process, so this is the
//! only test here — guaranteeing the environment variable is set before
//! anything in the process reads (and caches) it.

/// The full precedence protocol against a real cached environment value:
/// env applies when no override is set, an explicit override beats the
/// cached env, and clearing the override falls back to the env again
/// (not to the hardware count).
#[test]
fn env_is_cached_and_override_still_wins() {
    // Set before first use; the pool has not read the env yet because no
    // other test lives in this binary.
    std::env::set_var("RAYON_NUM_THREADS", "3");

    assert_eq!(
        rayon::pool::current_num_threads(),
        3,
        "RAYON_NUM_THREADS must apply when no override is set"
    );

    // Changing the env after the first read must have no effect: the
    // value is cached once per process, by design.
    std::env::set_var("RAYON_NUM_THREADS", "7");
    assert_eq!(
        rayon::pool::current_num_threads(),
        3,
        "the env value is read once and cached"
    );

    // An explicit override beats the cached env...
    rayon::pool::set_num_threads(5);
    assert_eq!(
        rayon::pool::current_num_threads(),
        5,
        "set_num_threads after env caching must win"
    );

    // ...and clearing it restores the cached env value, not the
    // hardware parallelism.
    rayon::pool::set_num_threads(0);
    assert_eq!(
        rayon::pool::current_num_threads(),
        3,
        "set_num_threads(0) must fall back to the cached env value"
    );
}
