//! Perf harness for the `bwpartd` online service behind
//! `cargo xtask bench-serve`.
//!
//! Three measurements, written to `BENCH_serve.json` (schema v2):
//!
//! * **Synchronous wire throughput/latency** — the threaded front-end on
//!   loopback, `clients` blocking connections each driving a
//!   telemetry → get-shares loop through the framed JSON protocol, one
//!   request in flight per connection. This is the v1 case, kept
//!   comparable with the committed baseline.
//! * **Pipelined reactor throughput** — the reactor front-end
//!   (`ServeConfig { reactor: true, shards, workers }`) under hundreds of
//!   connections, each keeping a deep pipeline of binary-codec frames in
//!   flight. This is the case the reactor exists for: per-request syscall
//!   and thread-switch costs amortize across the pipeline, and tenant
//!   shards solve their epochs independently.
//! * **Epoch decision latency** — the [`bwpartd::Engine`] alone, no
//!   sockets: fold telemetry for `apps` applications and time
//!   `run_epoch` (profile update + scheme solve + contract certification)
//!   over many epochs.
//!
//! Per-request latency is recorded through the `bwpart-obs` macro layer:
//! every client thread carries its own pre-resolved [`obs_hist!`] hooks
//! into one shared log-bucketed histogram per case, so the report's
//! percentiles come from the same instrumentation path production code
//! uses (exact to within one bucket, ≤ 25% relative error).
//!
//! Each wire case carries a [`ServeCaseEnv`] fingerprint; `cargo xtask
//! bench-serve --check` compares fresh throughput against the committed
//! report like-for-like and skips cases whose environment differs, so a
//! multi-core workstation never "regresses" numbers committed from a
//! 1-core CI container.
//!
//! The epoch timer is parked at one hour so the wire numbers measure the
//! request path, not repartitioning; a single forced epoch before the
//! measured loop guarantees share queries have a published reply to serve.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use bwpart_mc::TelemetryDelta;
use bwpart_obs::{obs_hist, Histogram, Registry};
use bwpartd::{
    protocol, serve, Client, Codec, Engine, EngineConfig, EpochOutcome, PartitionScheme, Request,
    Response, ServeConfig,
};
use serde::{Deserialize, Serialize};

pub use crate::perf::CheckOutcome;

/// Shared bandwidth used by all benches (the paper's 0.0095 APC budget).
const BANDWIDTH: f64 = 0.0095;

/// Current report schema tag. Bumped whenever the report shape changes;
/// `--check` refuses to compare reports across schema versions.
pub const SCHEMA: &str = "bwpart-bench-serve/v2";

/// Maximum tolerated throughput drop of any wire case against the
/// committed baseline before `--check` fails, in percent. Wider than the
/// simulator gate: loopback RPC numbers jitter more than pure-CPU loops.
pub const SERVE_CHECK_REGRESSION_PCT: f64 = 25.0;

/// Request-latency percentiles in microseconds, read from the shared
/// log-bucketed `bwpart-obs` histogram (exact to within one bucket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
}

/// The service/load-generator shape a wire case was measured under.
/// `--check` refuses to compare cases whose environments differ.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCaseEnv {
    /// Reactor front-end (`true`) or thread-per-connection (`false`).
    pub reactor: bool,
    /// Wire codec the load generator framed requests in.
    pub codec: String,
    /// Tenant shards in the service.
    pub shards: usize,
    /// Reactor worker threads (`0` = threaded front-end).
    pub workers: usize,
    /// Requests kept in flight per connection (1 = synchronous).
    pub pipeline: usize,
    /// Host logical core count at measurement time.
    pub host_cores: usize,
}

/// Throughput and latency of one wire-protocol case end to end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBench {
    /// Case name (`threaded_json_sync` or `reactor_binary_pipelined`).
    pub name: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per connection.
    pub requests_per_client: usize,
    /// Total requests across all connections.
    pub requests_total: usize,
    /// Aggregate requests per second over the measured window.
    pub requests_per_sec: f64,
    /// Per-request round-trip latency (pipelined cases: batch round-trip
    /// divided by depth — the effective per-request cost under load).
    pub latency: LatencyStats,
    /// Environment fingerprint for like-for-like `--check` comparison.
    pub env: ServeCaseEnv,
}

/// Latency of one epoch decision in the engine (no sockets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochBench {
    /// Registered applications.
    pub apps: usize,
    /// Epochs timed.
    pub epochs: usize,
    /// How many of those epochs actually republished shares (the rest
    /// were held by hysteresis once the EWMA estimates settled).
    pub repartitions: u64,
    /// Per-epoch `run_epoch` latency.
    pub latency: LatencyStats,
}

/// The full report serialized to `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// True when run with the CI smoke budget (timings not comparable to
    /// full runs).
    pub smoke: bool,
    /// Wire-protocol cases.
    pub wire: Vec<WireBench>,
    /// Epoch-engine bench.
    pub epoch: EpochBench,
}

/// Per-client-thread pre-resolved latency hooks (the `obs_hist!`
/// discipline: resolve once, record via a relaxed atomic per sample).
#[derive(Debug, Clone)]
struct ClientHooks {
    /// Request round-trip latency in microseconds.
    latency_us: Histogram,
}

/// Resolve one case's shared latency histogram into per-thread hooks.
fn latency_hooks(registry: &Registry, case: &str) -> Option<Box<ClientHooks>> {
    Some(Box::new(ClientHooks {
        latency_us: registry.histogram(&format!("bench_{case}_request_latency_us")),
    }))
}

/// Percentiles from the case's shared histogram, rounded to 0.1 µs.
fn stats(registry: &Registry, case: &str) -> LatencyStats {
    let h = registry.histogram(&format!("bench_{case}_request_latency_us"));
    let round = |v: f64| (v * 10.0).round() / 10.0;
    LatencyStats {
        p50_us: round(h.quantile(0.5)),
        p99_us: round(h.quantile(0.99)),
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A plausible telemetry delta, varied deterministically by `(app, step)`
/// so estimates stay stable while the bytes on the wire differ.
fn delta(app: usize, step: usize) -> TelemetryDelta {
    let jitter = ((app * 31 + step * 7) % 97) as u64;
    TelemetryDelta {
        accesses: 50_000 + (app as u64) * 1_000 + jitter,
        shared_cycles: 10_000_000 + jitter * 101,
        interference_cycles: 2_000_000 + (app as u64) * 50_000,
    }
}

/// Run the synchronous wire case: `clients` blocking connections, `iters`
/// telemetry+get-shares pairs each, one request in flight at a time.
fn wire_bench_sync(clients: usize, iters: usize, registry: &Registry) -> WireBench {
    const CASE: &str = "threaded_json_sync";
    let cfg = ServeConfig {
        epoch_interval: Duration::from_secs(3600),
        engine: EngineConfig::new(PartitionScheme::SquareRoot, BANDWIDTH),
        ..ServeConfig::default()
    };
    // lint: allow(R1): bench harness — failing to bind loopback is fatal
    let handle = serve(cfg).expect("bind bwpartd on loopback");
    let addr = handle.addr();

    // All clients register and seed one telemetry delta, then rendezvous
    // so the forced epoch below publishes shares covering every app.
    let ready = Arc::new(Barrier::new(clients + 1));
    let go = Arc::new(Barrier::new(clients + 1));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let (ready, go) = (Arc::clone(&ready), Arc::clone(&go));
            let obs = latency_hooks(registry, CASE);
            thread::spawn(move || {
                // lint: allow(R1): bench harness — loopback connect is fatal
                let mut cl = Client::connect(addr).expect("connect to bwpartd");
                let id = cl
                    .register(&format!("bench-{c}"), 0.005 + 0.002 * c as f64)
                    // lint: allow(R1): bench harness — registration is fatal
                    .expect("register bench app");
                // lint: allow(R1): bench harness — seeding telemetry is fatal
                cl.telemetry(id, delta(c, 0)).expect("seed telemetry");
                ready.wait();
                go.wait();
                for step in 1..=iters {
                    let t0 = Instant::now();
                    // lint: allow(R1): bench harness — request failure is fatal
                    cl.telemetry(id, delta(c, step)).expect("telemetry");
                    obs_hist!(obs, latency_us, t0.elapsed().as_nanos() as f64 / 1000.0);
                    let t0 = Instant::now();
                    // lint: allow(R1): bench harness — request failure is fatal
                    let shares = cl.get_shares(None).expect("get shares");
                    obs_hist!(obs, latency_us, t0.elapsed().as_nanos() as f64 / 1000.0);
                    std::hint::black_box(shares);
                }
            })
        })
        .collect();

    ready.wait();
    handle.force_epoch();
    go.wait();
    let t0 = Instant::now();
    for w in workers {
        // lint: allow(R1): bench harness — a panicked client is a real failure
        w.join().expect("client thread panicked");
    }
    let wall = t0.elapsed();
    handle.shutdown();
    handle.join();

    let total = clients * iters * 2;
    WireBench {
        name: CASE.to_string(),
        clients,
        requests_per_client: iters * 2,
        requests_total: total,
        requests_per_sec: (total as f64 / wall.as_secs_f64().max(1e-12)).round(),
        latency: stats(registry, CASE),
        env: ServeCaseEnv {
            reactor: false,
            codec: Codec::Json.name().to_string(),
            shards: 1,
            workers: 0,
            pipeline: 1,
            host_cores: host_cores(),
        },
    }
}

/// Load-generator shape for the pipelined reactor case.
struct PipelinedLoad {
    /// Driver threads.
    threads: usize,
    /// Connections per driver thread.
    conns_per_thread: usize,
    /// Frames kept in flight per connection.
    pipeline: usize,
    /// Write→drain rounds per connection.
    rounds: usize,
    /// Tenant shards in the service.
    shards: usize,
    /// Reactor workers.
    workers: usize,
}

/// One pipelined connection: raw framed I/O, `pipeline` requests per
/// round. The telemetry frame is encoded once and replayed — the server
/// decodes every copy, which is exactly the cost under measurement; the
/// final frame of each round is a `group-shares` read for the
/// connection's tenant, so the solve/publish path stays on the wire too.
struct PipeConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    batch: Vec<u8>,
    started: Instant,
}

impl PipeConn {
    /// Count complete response frames in `rbuf`, draining them.
    fn drain_replies(&mut self) -> usize {
        let mut n = 0;
        // lint: allow(R1): bench harness — a malformed reply is fatal
        while let Some((resp, used)) =
            protocol::decode::<Response>(&self.rbuf).expect("well-formed reply")
        {
            self.rbuf.drain(..used);
            if let Response::Error(e) = resp {
                // lint: allow(R1): bench harness — a service error is fatal
                panic!("service error under bench load: {e}");
            }
            n += 1;
        }
        n
    }
}

/// Run the pipelined reactor case: a sharded reactor service, `threads ×
/// conns_per_thread` connections each keeping `pipeline` binary-codec
/// frames in flight for `rounds` rounds.
fn wire_bench_pipelined(load: &PipelinedLoad, registry: &Registry) -> WireBench {
    const CASE: &str = "reactor_binary_pipelined";
    let codec = Codec::Binary;
    let cfg = ServeConfig {
        epoch_interval: Duration::from_secs(3600),
        engine: EngineConfig::new(PartitionScheme::SquareRoot, BANDWIDTH),
        reactor: true,
        shards: load.shards,
        workers: load.workers,
        ..ServeConfig::default()
    };
    // lint: allow(R1): bench harness — failing to bind loopback is fatal
    let handle = serve(cfg).expect("bind reactor bwpartd on loopback");
    let addr = handle.addr();

    let ready = Arc::new(Barrier::new(load.threads + 1));
    let go = Arc::new(Barrier::new(load.threads + 1));
    let (conns, pipeline, rounds) = (load.conns_per_thread, load.pipeline, load.rounds);
    let workers: Vec<_> = (0..load.threads)
        .map(|t| {
            let (ready, go) = (Arc::clone(&ready), Arc::clone(&go));
            let obs = latency_hooks(registry, CASE);
            thread::spawn(move || {
                // Register one app per connection under the thread's tenant
                // group; seed telemetry so the forced epoch covers it.
                let mut pipes: Vec<PipeConn> = (0..conns)
                    .map(|c| {
                        // lint: allow(R1): bench harness — connect is fatal
                        let mut cl = Client::connect_with(addr, codec).expect("connect to bwpartd");
                        let name = format!("t{t}/app-{c}");
                        // lint: allow(R1): bench harness — registration is fatal
                        let id = cl
                            .register(&name, 0.004 + 0.0001 * c as f64)
                            .expect("register");
                        // lint: allow(R1): bench harness — seeding telemetry is fatal
                        cl.telemetry(id, delta(c, 0)).expect("seed telemetry");

                        // Pre-encode the round's batch: pipeline−1 telemetry
                        // frames and one group-shares read.
                        let tele = Request::Telemetry {
                            app_id: id,
                            accesses: 50_000 + c as u64,
                            shared_cycles: 10_000_000,
                            interference_cycles: 2_000_000,
                        };
                        // lint: allow(R1): bench harness — encoding is fatal
                        let tele_frame = protocol::encode_with(&tele, codec).expect("encode");
                        let reads = Request::GroupShares {
                            group: format!("t{t}"),
                            scheme: None,
                        };
                        // lint: allow(R1): bench harness — encoding is fatal
                        let read_frame = protocol::encode_with(&reads, codec).expect("encode");
                        let mut batch = Vec::with_capacity(
                            tele_frame.len() * (pipeline - 1) + read_frame.len(),
                        );
                        for _ in 0..pipeline - 1 {
                            batch.extend_from_slice(&tele_frame);
                        }
                        batch.extend_from_slice(&read_frame);
                        PipeConn {
                            stream: cl.into_stream(),
                            rbuf: Vec::new(),
                            batch,
                            started: Instant::now(),
                        }
                    })
                    .collect();
                ready.wait();
                go.wait();
                // Keep every connection's pipeline full: write all batches,
                // then drain replies round-robin until each connection has
                // answered its round.
                for _ in 0..rounds {
                    for p in pipes.iter_mut() {
                        p.started = Instant::now();
                        // lint: allow(R1): bench harness — write failure is fatal
                        p.stream.write_all(&p.batch).expect("write batch");
                    }
                    let mut outstanding: Vec<usize> = vec![pipeline; conns];
                    let mut live = conns;
                    let mut chunk = [0u8; 64 * 1024];
                    while live > 0 {
                        for (i, p) in pipes.iter_mut().enumerate() {
                            if outstanding[i] == 0 {
                                continue;
                            }
                            // lint: allow(R1): bench harness — read failure is fatal
                            let n = p.stream.read(&mut chunk).expect("read replies");
                            assert!(n > 0, "server closed mid-pipeline");
                            p.rbuf.extend_from_slice(&chunk[..n]);
                            let got = p.drain_replies();
                            outstanding[i] = outstanding[i].saturating_sub(got);
                            if outstanding[i] == 0 {
                                live -= 1;
                                // Effective per-request latency: the batch
                                // round-trip amortized over its depth.
                                let us = p.started.elapsed().as_nanos() as f64
                                    / 1000.0
                                    / pipeline as f64;
                                obs_hist!(obs, latency_us, us);
                            }
                        }
                    }
                }
            })
        })
        .collect();

    ready.wait();
    handle.force_epoch();
    go.wait();
    let t0 = Instant::now();
    for w in workers {
        // lint: allow(R1): bench harness — a panicked driver is a real failure
        w.join().expect("driver thread panicked");
    }
    let wall = t0.elapsed();
    handle.shutdown();
    handle.join();

    let clients = load.threads * load.conns_per_thread;
    let per_client = load.rounds * load.pipeline;
    let total = clients * per_client;
    WireBench {
        name: CASE.to_string(),
        clients,
        requests_per_client: per_client,
        requests_total: total,
        requests_per_sec: (total as f64 / wall.as_secs_f64().max(1e-12)).round(),
        latency: stats(registry, CASE),
        env: ServeCaseEnv {
            reactor: true,
            codec: codec.name().to_string(),
            shards: load.shards,
            workers: load.workers,
            pipeline: load.pipeline,
            host_cores: host_cores(),
        },
    }
}

/// Run the epoch-decision bench: fold telemetry for `apps` applications
/// and time `run_epoch` alone over `epochs` epochs.
fn epoch_bench(apps: usize, epochs: usize, registry: &Registry) -> EpochBench {
    const CASE: &str = "epoch_decision";
    let mut engine = Engine::new(EngineConfig::new(PartitionScheme::SquareRoot, BANDWIDTH))
        // lint: allow(R1): bench harness — the default config is valid
        .expect("engine config");
    for i in 0..apps {
        engine
            .register(&format!("app-{i}"), 0.004 + 0.001 * i as f64)
            // lint: allow(R1): bench harness — registration is fatal
            .expect("register app");
    }
    let obs = latency_hooks(registry, CASE);
    let mut repartitions = 0u64;
    for e in 0..epochs {
        for i in 0..apps {
            engine
                .push_telemetry(i, delta(i, e))
                // lint: allow(R1): bench harness — app ids are valid here
                .expect("push telemetry");
        }
        let t0 = Instant::now();
        let outcome = engine.run_epoch();
        obs_hist!(obs, latency_us, t0.elapsed().as_nanos() as f64 / 1000.0);
        if outcome == EpochOutcome::Repartitioned {
            repartitions += 1;
        }
    }
    EpochBench {
        apps,
        epochs,
        repartitions,
        latency: stats(registry, CASE),
    }
}

/// Run the full harness. `smoke` shrinks client/iteration counts ~10× for
/// CI.
pub fn run(smoke: bool) -> ServeBenchReport {
    let registry = Registry::new();
    let (clients, iters) = if smoke { (2, 100) } else { (4, 2_000) };
    let load = if smoke {
        PipelinedLoad {
            threads: 2,
            conns_per_thread: 8,
            pipeline: 8,
            rounds: 10,
            shards: 4,
            workers: 2,
        }
    } else {
        PipelinedLoad {
            threads: 8,
            conns_per_thread: 32,
            pipeline: 32,
            rounds: 25,
            shards: 4,
            workers: 2,
        }
    };
    let (apps, epochs) = if smoke { (8, 200) } else { (16, 2_000) };
    ServeBenchReport {
        schema: SCHEMA.to_string(),
        smoke,
        wire: vec![
            wire_bench_sync(clients, iters, &registry),
            wire_bench_pipelined(&load, &registry),
        ],
        epoch: epoch_bench(apps, epochs, &registry),
    }
}

/// Compare a fresh report against the committed baseline, like-for-like.
///
/// A wire case is only compared when its name, smoke flag, request
/// count, and [`ServeCaseEnv`] all match the committed entry; mismatched
/// cases are skipped, not failed. A compared case regresses when its
/// `requests_per_sec` falls more than [`SERVE_CHECK_REGRESSION_PCT`]
/// percent below the committed number.
pub fn check(committed: &ServeBenchReport, fresh: &ServeBenchReport) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    if committed.schema != fresh.schema {
        out.regressions.push(format!(
            "schema mismatch: committed {} vs fresh {} — regenerate BENCH_serve.json",
            committed.schema, fresh.schema
        ));
        return out;
    }
    for f in &fresh.wire {
        let Some(c) = committed.wire.iter().find(|c| c.name == f.name) else {
            out.skipped
                .push((f.name.clone(), "no committed entry".to_string()));
            continue;
        };
        if committed.smoke != fresh.smoke || c.requests_total != f.requests_total {
            out.skipped.push((
                f.name.clone(),
                format!(
                    "budget mismatch (smoke {} vs {}, requests {} vs {})",
                    committed.smoke, fresh.smoke, c.requests_total, f.requests_total
                ),
            ));
            continue;
        }
        if c.env != f.env {
            out.skipped.push((
                f.name.clone(),
                format!("environment mismatch ({:?} vs {:?})", c.env, f.env),
            ));
            continue;
        }
        // Positive delta = fresh is slower (lower throughput), matching
        // the wall-time convention of the simulator gate.
        let delta_pct = (c.requests_per_sec - f.requests_per_sec) / c.requests_per_sec * 100.0;
        out.compared.push((f.name.clone(), delta_pct));
        if delta_pct > SERVE_CHECK_REGRESSION_PCT {
            out.regressions.push(format!(
                "{}: {:.0} req/s vs committed {:.0} req/s \
                 ({:+.1}% slower > {:.0}% budget)",
                f.name,
                f.requests_per_sec,
                c.requests_per_sec,
                delta_pct,
                SERVE_CHECK_REGRESSION_PCT
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_consistent() {
        let report = run(true);
        assert_eq!(report.schema, SCHEMA);
        assert!(report.smoke);
        assert_eq!(report.wire.len(), 2);

        let sync = &report.wire[0];
        assert_eq!(sync.name, "threaded_json_sync");
        assert_eq!(sync.clients, 2);
        assert_eq!(sync.requests_total, sync.clients * sync.requests_per_client);
        assert!(sync.requests_per_sec > 0.0);
        assert!(sync.latency.p50_us > 0.0);
        assert!(sync.latency.p99_us >= sync.latency.p50_us);
        assert!(!sync.env.reactor);
        assert_eq!(sync.env.codec, "json");
        assert_eq!(sync.env.pipeline, 1);

        let piped = &report.wire[1];
        assert_eq!(piped.name, "reactor_binary_pipelined");
        assert_eq!(piped.clients, 16);
        assert_eq!(
            piped.requests_total,
            piped.clients * piped.requests_per_client
        );
        assert!(piped.requests_per_sec > 0.0);
        assert!(piped.env.reactor);
        assert_eq!(piped.env.codec, "binary");
        assert_eq!(piped.env.shards, 4);
        assert!(piped.env.pipeline > 1);

        assert_eq!(report.epoch.apps, 8);
        assert_eq!(report.epoch.epochs, 200);
        // The first epoch always repartitions (no previous shares).
        assert!(report.epoch.repartitions >= 1);
        assert!(report.epoch.latency.p99_us >= report.epoch.latency.p50_us);

        // The report must round-trip through serde_json for
        // BENCH_serve.json and the --check reload path.
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.wire.len(), 2);
        assert_eq!(back.wire[1].env, report.wire[1].env);
    }

    #[test]
    fn check_compares_like_for_like_and_flags_regressions() {
        let case = |name: &str, rps: f64| WireBench {
            name: name.to_string(),
            clients: 2,
            requests_per_client: 100,
            requests_total: 200,
            requests_per_sec: rps,
            latency: LatencyStats {
                p50_us: 10.0,
                p99_us: 20.0,
            },
            env: ServeCaseEnv {
                reactor: true,
                codec: "binary".into(),
                shards: 4,
                workers: 2,
                pipeline: 8,
                host_cores: 1,
            },
        };
        let epoch = EpochBench {
            apps: 8,
            epochs: 200,
            repartitions: 1,
            latency: LatencyStats {
                p50_us: 2.0,
                p99_us: 5.0,
            },
        };
        let report = |rps: f64| ServeBenchReport {
            schema: SCHEMA.to_string(),
            smoke: true,
            wire: vec![case("reactor_binary_pipelined", rps)],
            epoch: epoch.clone(),
        };

        // Same throughput: compared, no regression.
        let out = check(&report(100_000.0), &report(100_000.0));
        assert!(out.passed());
        assert_eq!(out.compared.len(), 1);

        // Within budget: a 10% drop passes a 25% gate.
        assert!(check(&report(100_000.0), &report(90_000.0)).passed());

        // Beyond budget: a 50% drop fails.
        let out = check(&report(100_000.0), &report(50_000.0));
        assert!(!out.passed());
        assert!(out.regressions[0].contains("reactor_binary_pipelined"));

        // Environment mismatch: skipped, never a regression.
        let mut other = report(50_000.0);
        other.wire[0].env.shards = 8;
        let out = check(&report(100_000.0), &other);
        assert!(out.passed());
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].1.contains("environment mismatch"));

        // Schema mismatch is an explicit failure.
        let mut old = report(100_000.0);
        old.schema = "bwpart-bench-serve/v1".to_string();
        assert!(!check(&old, &report(100_000.0)).passed());
    }
}
