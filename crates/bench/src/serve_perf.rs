//! Perf harness for the `bwpartd` online service behind
//! `cargo xtask bench-serve`.
//!
//! Two measurements, written to `BENCH_serve.json`:
//!
//! * **Wire throughput/latency** — a real [`bwpartd::serve`] instance on
//!   loopback, `clients` concurrent connections each driving a
//!   telemetry → get-shares loop through the framed JSON protocol. Every
//!   request's round-trip is timed individually, so the report carries
//!   p50/p99 latency alongside aggregate requests/sec.
//! * **Epoch decision latency** — the [`bwpartd::Engine`] alone, no
//!   sockets: fold telemetry for `apps` applications and time
//!   `run_epoch` (profile update + scheme solve + contract certification)
//!   over many epochs.
//!
//! The epoch timer is parked at one hour so the wire numbers measure the
//! request path, not repartitioning; a single forced epoch before the
//! measured loop guarantees `get_shares` has a published reply to serve.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use bwpart_mc::TelemetryDelta;
use bwpartd::{serve, Client, Engine, EngineConfig, EpochOutcome, PartitionScheme, ServeConfig};
use serde::Serialize;

/// Shared bandwidth used by both benches (the paper's 0.0095 APC budget).
const BANDWIDTH: f64 = 0.0095;

/// Request-latency percentiles in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyStats {
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
}

/// Throughput and latency of the framed wire protocol end to end.
#[derive(Debug, Clone, Serialize)]
pub struct WireBench {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client (half telemetry, half get-shares).
    pub requests_per_client: usize,
    /// Total requests across all clients.
    pub requests_total: usize,
    /// Aggregate requests per second over the measured window.
    pub requests_per_sec: f64,
    /// Per-request round-trip latency.
    pub latency: LatencyStats,
}

/// Latency of one epoch decision in the engine (no sockets).
#[derive(Debug, Clone, Serialize)]
pub struct EpochBench {
    /// Registered applications.
    pub apps: usize,
    /// Epochs timed.
    pub epochs: usize,
    /// How many of those epochs actually republished shares (the rest
    /// were held by hysteresis once the EWMA estimates settled).
    pub repartitions: u64,
    /// Per-epoch `run_epoch` latency.
    pub latency: LatencyStats,
}

/// The full report serialized to `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Report schema tag.
    pub schema: &'static str,
    /// True when run with the CI smoke budget (timings not comparable to
    /// full runs).
    pub smoke: bool,
    /// Wire-protocol bench.
    pub wire: WireBench,
    /// Epoch-engine bench.
    pub epoch: EpochBench,
}

/// Nearest-rank percentile over an ascending slice of nanosecond samples,
/// reported in microseconds rounded to 0.1 µs.
fn percentile_us(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0) * (sorted_ns.len() - 1) as f64;
    let idx = (rank.round() as usize).min(sorted_ns.len() - 1);
    let us = sorted_ns[idx] as f64 / 1000.0;
    (us * 10.0).round() / 10.0
}

fn stats(mut ns: Vec<u64>) -> LatencyStats {
    ns.sort_unstable();
    LatencyStats {
        p50_us: percentile_us(&ns, 50.0),
        p99_us: percentile_us(&ns, 99.0),
    }
}

/// A plausible telemetry delta, varied deterministically by `(app, step)`
/// so estimates stay stable while the bytes on the wire differ.
fn delta(app: usize, step: usize) -> TelemetryDelta {
    let jitter = ((app * 31 + step * 7) % 97) as u64;
    TelemetryDelta {
        accesses: 50_000 + (app as u64) * 1_000 + jitter,
        shared_cycles: 10_000_000 + jitter * 101,
        interference_cycles: 2_000_000 + (app as u64) * 50_000,
    }
}

/// Run the wire bench: `clients` connections, `iters` telemetry+get-shares
/// pairs each, per-request latency recorded.
fn wire_bench(clients: usize, iters: usize) -> WireBench {
    let cfg = ServeConfig {
        epoch_interval: Duration::from_secs(3600),
        engine: EngineConfig::new(PartitionScheme::SquareRoot, BANDWIDTH),
        ..ServeConfig::default()
    };
    // lint: allow(R1): bench harness — failing to bind loopback is fatal
    let handle = serve(cfg).expect("bind bwpartd on loopback");
    let addr = handle.addr();

    // All clients register and seed one telemetry delta, then rendezvous
    // so the forced epoch below publishes shares covering every app.
    let ready = Arc::new(Barrier::new(clients + 1));
    let go = Arc::new(Barrier::new(clients + 1));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let (ready, go) = (Arc::clone(&ready), Arc::clone(&go));
            thread::spawn(move || -> Vec<u64> {
                // lint: allow(R1): bench harness — loopback connect is fatal
                let mut cl = Client::connect(addr).expect("connect to bwpartd");
                let id = cl
                    .register(&format!("bench-{c}"), 0.005 + 0.002 * c as f64)
                    // lint: allow(R1): bench harness — registration is fatal
                    .expect("register bench app");
                // lint: allow(R1): bench harness — seeding telemetry is fatal
                cl.telemetry(id, delta(c, 0)).expect("seed telemetry");
                ready.wait();
                go.wait();
                let mut lat = Vec::with_capacity(iters * 2);
                for step in 1..=iters {
                    let t0 = Instant::now();
                    // lint: allow(R1): bench harness — request failure is fatal
                    cl.telemetry(id, delta(c, step)).expect("telemetry");
                    lat.push(t0.elapsed().as_nanos() as u64);
                    let t0 = Instant::now();
                    // lint: allow(R1): bench harness — request failure is fatal
                    let shares = cl.get_shares(None).expect("get shares");
                    lat.push(t0.elapsed().as_nanos() as u64);
                    std::hint::black_box(shares);
                }
                lat
            })
        })
        .collect();

    ready.wait();
    handle.force_epoch();
    go.wait();
    let t0 = Instant::now();
    let mut all = Vec::with_capacity(clients * iters * 2);
    for w in workers {
        // lint: allow(R1): bench harness — a panicked client is a real failure
        all.extend(w.join().expect("client thread panicked"));
    }
    let wall = t0.elapsed();
    handle.shutdown();
    handle.join();

    let total = all.len();
    let rps = total as f64 / wall.as_secs_f64().max(1e-12);
    WireBench {
        clients,
        requests_per_client: iters * 2,
        requests_total: total,
        requests_per_sec: rps.round(),
        latency: stats(all),
    }
}

/// Run the epoch-decision bench: fold telemetry for `apps` applications
/// and time `run_epoch` alone over `epochs` epochs.
fn epoch_bench(apps: usize, epochs: usize) -> EpochBench {
    let mut engine = Engine::new(EngineConfig::new(PartitionScheme::SquareRoot, BANDWIDTH))
        // lint: allow(R1): bench harness — the default config is valid
        .expect("engine config");
    for i in 0..apps {
        engine
            .register(&format!("app-{i}"), 0.004 + 0.001 * i as f64)
            // lint: allow(R1): bench harness — registration is fatal
            .expect("register app");
    }
    let mut lat = Vec::with_capacity(epochs);
    let mut repartitions = 0u64;
    for e in 0..epochs {
        for i in 0..apps {
            engine
                .push_telemetry(i, delta(i, e))
                // lint: allow(R1): bench harness — app ids are valid here
                .expect("push telemetry");
        }
        let t0 = Instant::now();
        let outcome = engine.run_epoch();
        lat.push(t0.elapsed().as_nanos() as u64);
        if outcome == EpochOutcome::Repartitioned {
            repartitions += 1;
        }
    }
    EpochBench {
        apps,
        epochs,
        repartitions,
        latency: stats(lat),
    }
}

/// Run the full harness. `smoke` shrinks client/iteration counts ~10× for
/// CI.
pub fn run(smoke: bool) -> ServeBenchReport {
    let (clients, iters) = if smoke { (2, 100) } else { (4, 2_000) };
    let (apps, epochs) = if smoke { (8, 200) } else { (16, 2_000) };
    ServeBenchReport {
        schema: "bwpart-bench-serve/v1",
        smoke,
        wire: wire_bench(clients, iters),
        epoch: epoch_bench(apps, epochs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_consistent() {
        let report = run(true);
        assert_eq!(report.schema, "bwpart-bench-serve/v1");
        assert!(report.smoke);
        assert_eq!(report.wire.clients, 2);
        assert_eq!(
            report.wire.requests_total,
            report.wire.clients * report.wire.requests_per_client
        );
        assert!(report.wire.requests_per_sec > 0.0);
        assert!(report.wire.latency.p50_us > 0.0);
        assert!(report.wire.latency.p99_us >= report.wire.latency.p50_us);
        assert_eq!(report.epoch.apps, 8);
        assert_eq!(report.epoch.epochs, 200);
        // The first epoch always repartitions (no previous shares).
        assert!(report.epoch.repartitions >= 1);
        assert!(report.epoch.latency.p99_us >= report.epoch.latency.p50_us);
        // The report must round-trip through serde_json for
        // BENCH_serve.json.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("requests_per_sec"));
    }

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_samples() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((percentile_us(&ns, 50.0) - 51.0).abs() < 1.5);
        assert!((percentile_us(&ns, 99.0) - 99.0).abs() < 1.5);
        assert!(percentile_us(&[], 50.0).abs() < 1e-12);
    }
}
