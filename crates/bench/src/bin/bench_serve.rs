//! `bench_serve` — the `bwpartd` service perf runner invoked by
//! `cargo xtask bench-serve`.
//!
//! ```text
//! bench_serve [--smoke] [--out PATH]
//! ```
//!
//! Measures wire-protocol throughput/latency against a live loopback
//! `bwpartd` and epoch-decision latency in the bare engine (see
//! [`bwpart_bench::serve_perf`]), prints a human-readable summary, and
//! writes the machine-readable report to `BENCH_serve.json` (or
//! `--out PATH`). Exit status is non-zero only on a real failure — never
//! on timing, so CI smoke runs don't flake on slow runners.

use std::env;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_serve [--smoke] [--out PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = String::from("BENCH_serve.json");

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let report = bwpart_bench::serve_perf::run(smoke);

    println!(
        "bench_serve: {} mode",
        if report.smoke { "smoke" } else { "full" }
    );
    println!(
        "  wire:  {} client(s) x {} req  {:>9.0} req/s  p50 {:>7.1} us  p99 {:>7.1} us",
        report.wire.clients,
        report.wire.requests_per_client,
        report.wire.requests_per_sec,
        report.wire.latency.p50_us,
        report.wire.latency.p99_us,
    );
    println!(
        "  epoch: {} app(s) x {} epochs ({} repartitions)  p50 {:>7.1} us  p99 {:>7.1} us",
        report.epoch.apps,
        report.epoch.epochs,
        report.epoch.repartitions,
        report.epoch.latency.p50_us,
        report.epoch.latency.p99_us,
    );

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_serve: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::write(&out_path, json + "\n") {
        eprintln!("bench_serve: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_serve: wrote {out_path}");
    ExitCode::SUCCESS
}
