//! `bench_serve` — the `bwpartd` service perf runner invoked by
//! `cargo xtask bench-serve`.
//!
//! ```text
//! bench_serve [--smoke] [--out PATH] [--check]
//! ```
//!
//! Measures wire-protocol throughput/latency against live loopback
//! `bwpartd` instances — the synchronous threaded/JSON case and the
//! pipelined reactor/binary case — plus epoch-decision latency in the
//! bare engine (see [`bwpart_bench::serve_perf`]), prints a
//! human-readable summary, and writes the machine-readable report to
//! `BENCH_serve.json` (or `--out PATH`). Exit status is non-zero only on
//! a real failure — never on absolute timing, so CI smoke runs don't
//! flake on slow runners. With `--check`, the committed report at the
//! `--out` path is loaded first and fresh throughput is compared
//! like-for-like (same case, budget, and
//! [`bwpart_bench::serve_perf::ServeCaseEnv`]); a case more than
//! [`bwpart_bench::serve_perf::SERVE_CHECK_REGRESSION_PCT`] percent
//! slower fails the run, and cases measured under a different
//! environment are skipped with a note.

use std::env;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_serve [--smoke] [--out PATH] [--check]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = String::from("BENCH_serve.json");
    let mut check = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    // Load the committed baseline *before* the fresh run overwrites it.
    let committed = if check {
        match fs::read_to_string(&out_path) {
            Ok(s) => match serde_json::from_str::<bwpart_bench::serve_perf::ServeBenchReport>(&s) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("bench_serve: --check: parse {out_path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("bench_serve: --check: read {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let report = bwpart_bench::serve_perf::run(smoke);

    println!(
        "bench_serve: {} mode",
        if report.smoke { "smoke" } else { "full" }
    );
    for w in &report.wire {
        println!(
            "  {:>24}: {} conn(s) x {} req  {:>9.0} req/s  p50 {:>7.1} us  p99 {:>7.1} us  \
             ({}, {} shard(s), pipeline {})",
            w.name,
            w.clients,
            w.requests_per_client,
            w.requests_per_sec,
            w.latency.p50_us,
            w.latency.p99_us,
            w.env.codec,
            w.env.shards,
            w.env.pipeline,
        );
    }
    println!(
        "  epoch: {} app(s) x {} epochs ({} repartitions)  p50 {:>7.1} us  p99 {:>7.1} us",
        report.epoch.apps,
        report.epoch.epochs,
        report.epoch.repartitions,
        report.epoch.latency.p50_us,
        report.epoch.latency.p99_us,
    );

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_serve: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::write(&out_path, json + "\n") {
        eprintln!("bench_serve: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_serve: wrote {out_path}");

    if let Some(committed) = committed {
        let outcome = bwpart_bench::serve_perf::check(&committed, &report);
        for (name, delta) in &outcome.compared {
            println!(
                "  check {name}: {delta:+.1}% vs committed (budget {:.0}%)",
                bwpart_bench::serve_perf::SERVE_CHECK_REGRESSION_PCT
            );
        }
        for (name, why) in &outcome.skipped {
            println!("  check {name}: skipped — {why}");
        }
        if let Some(summary) = outcome.skipped_summary() {
            println!("  check: {summary}");
        }
        if !outcome.passed() {
            for r in &outcome.regressions {
                eprintln!("bench_serve: REGRESSION {r}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "  check: {} case(s) compared, {} skipped, no regressions",
            outcome.compared.len(),
            outcome.skipped.len()
        );
    }
    ExitCode::SUCCESS
}
