//! Print the scheme-sweep outcome fingerprint for determinism diffing.
//!
//! The CI `determinism-matrix` job runs this binary under each
//! `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} with fast-forward on and off and
//! the parallel per-app candidate gather on and off, and diffs the
//! outputs pairwise: every cell of the matrix must be bit-identical, or
//! the pool's index-ordered merge, the fast-forward event path, or the
//! parallel gather has changed observable simulation results.
//!
//! ```text
//! sweep_snapshot [--full] [--no-fast-forward] [--parallel-channels]
//! ```
//!
//! `--full` uses the full phase budgets instead of the CI smoke budgets;
//! `--no-fast-forward` runs the cycle-exact path; `--parallel-channels`
//! fans the memory controller's per-app gather over the pool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = true;
    let mut fast_forward = true;
    let mut parallel_channels = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => smoke = false,
            "--no-fast-forward" => fast_forward = false,
            "--parallel-channels" => parallel_channels = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: sweep_snapshot [--full] [--no-fast-forward] [--parallel-channels]"
                );
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "{}",
        bwpart_bench::perf::sweep_fingerprint(fast_forward, parallel_channels, smoke)
    );
    ExitCode::SUCCESS
}
