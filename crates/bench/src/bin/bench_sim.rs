//! `bench_sim` — the perf-regression runner invoked by `cargo xtask bench`.
//!
//! ```text
//! bench_sim [--smoke] [--reps N] [--out PATH] [--check]
//! ```
//!
//! Times the canonical workloads (see [`bwpart_bench::perf`]), prints a
//! human-readable summary, and writes the machine-readable report to
//! `BENCH_sim.json` (or `--out PATH`). Exit status is non-zero only on a
//! real failure (argument error, I/O error, or an outcome-determinism
//! panic inside the harness) — never on absolute timing, so CI smoke runs
//! don't flake on slow runners. Two *relative* gates exist:
//!
//! * the observability guardrail: in smoke mode, a metrics-attached sweep
//!   more than [`bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT`] percent
//!   (plus a sub-millisecond absolute slack for scheduler jitter) slower
//!   than the detached sweep fails the run (a ratio on the same machine
//!   in the same process, so runner speed cancels out);
//! * `--check`: before writing, the committed report at the `--out` path
//!   is loaded and the fresh numbers are compared like-for-like (same
//!   case, budget, and [`bwpart_bench::perf::CaseEnv`]). Any `optimized`
//!   case more than [`bwpart_bench::perf::CHECK_REGRESSION_PCT`] percent
//!   plus [`bwpart_bench::perf::CHECK_ABS_SLACK_MS`] slower fails the
//!   run; cases measured under a different environment are skipped with
//!   a note, so a 16-core workstation never "regresses" numbers
//!   committed from the 1-core CI container.

use std::env;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_sim [--smoke] [--reps N] [--out PATH] [--check]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut smoke = false;
    let mut reps = 3usize;
    let mut out_path = String::from("BENCH_sim.json");
    let mut check = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => {
                    eprintln!("--reps needs a positive integer");
                    return usage();
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    // Load the committed baseline *before* the fresh run overwrites it.
    let committed = if check {
        match fs::read_to_string(&out_path) {
            Ok(s) => match serde_json::from_str::<bwpart_bench::perf::BenchReport>(&s) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("bench_sim: --check: parse {out_path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("bench_sim: --check: read {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let report = bwpart_bench::perf::run(smoke, reps);

    println!(
        "bench_sim: {} mode, {} pool thread(s), best of {} rep(s)",
        if report.smoke { "smoke" } else { "full" },
        report.threads,
        report.reps
    );
    for case in &report.cases {
        println!(
            "  {:>16}: baseline {:>9.3} ms  optimized {:>9.3} ms  speedup {:.2}x  \
             ({:.2e} cyc/s optimized)",
            case.name,
            case.baseline.wall_ms,
            case.optimized.wall_ms,
            case.speedup,
            case.optimized.cycles_per_sec,
        );
    }
    println!(
        "  snapshot: clone {:.1} ns/call, reuse {:.1} ns/call",
        report.snapshot.clone_ns_per_call, report.snapshot.reuse_ns_per_call
    );
    println!(
        "  obs guardrail: detached {:.3} ms, attached {:.3} ms, overhead {:+.2}% (budget {:.0}%)",
        report.obs.detached_wall_ms,
        report.obs.attached_wall_ms,
        report.obs.overhead_pct,
        bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT,
    );

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_sim: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::write(&out_path, json + "\n") {
        eprintln!("bench_sim: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_sim: wrote {out_path}");

    if let Some(committed) = committed {
        let outcome = bwpart_bench::perf::check(&committed, &report);
        for (name, delta) in &outcome.compared {
            println!(
                "  check {name}: {delta:+.1}% vs committed (budget {:.0}%)",
                bwpart_bench::perf::CHECK_REGRESSION_PCT
            );
        }
        for (name, why) in &outcome.skipped {
            println!("  check {name}: skipped — {why}");
        }
        // Always surface coverage shrinkage in one greppable line, pass or
        // fail — a gate that silently skipped everything looks like a pass.
        if let Some(summary) = outcome.skipped_summary() {
            println!("  check: {summary}");
        }
        if !outcome.passed() {
            for r in &outcome.regressions {
                eprintln!("bench_sim: REGRESSION {r}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "  check: {} case(s) compared, {} skipped, no regressions",
            outcome.compared.len(),
            outcome.skipped.len()
        );
    }

    if smoke && !report.obs.within_budget() {
        eprintln!(
            "bench_sim: metrics overhead {:.2}% exceeds the {:.0}% + {:.1} ms budget",
            report.obs.overhead_pct,
            bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT,
            bwpart_bench::perf::OBS_OVERHEAD_ABS_SLACK_MS
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
