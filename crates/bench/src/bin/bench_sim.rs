//! `bench_sim` — the perf-regression runner invoked by `cargo xtask bench`.
//!
//! ```text
//! bench_sim [--smoke] [--reps N] [--out PATH]
//! ```
//!
//! Times the canonical workloads (see [`bwpart_bench::perf`]), prints a
//! human-readable summary, and writes the machine-readable report to
//! `BENCH_sim.json` (or `--out PATH`). Exit status is non-zero only on a
//! real failure (argument error, I/O error, or an outcome-determinism
//! panic inside the harness) — never on absolute timing, so CI smoke runs
//! don't flake on slow runners. The one *relative* gate is the
//! observability guardrail: in smoke mode, a metrics-attached sweep more
//! than [`bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT`] percent slower
//! than the detached sweep fails the run (a ratio on the same machine in
//! the same process, so runner speed cancels out).

use std::env;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_sim [--smoke] [--reps N] [--out PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut smoke = false;
    let mut reps = 3usize;
    let mut out_path = String::from("BENCH_sim.json");

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => reps = n,
                _ => {
                    eprintln!("--reps needs a positive integer");
                    return usage();
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }

    let report = bwpart_bench::perf::run(smoke, reps);

    println!(
        "bench_sim: {} mode, {} pool thread(s), best of {} rep(s)",
        if report.smoke { "smoke" } else { "full" },
        report.threads,
        report.reps
    );
    for case in &report.cases {
        println!(
            "  {:>16}: baseline {:>9.3} ms  optimized {:>9.3} ms  speedup {:.2}x  \
             ({:.2e} cyc/s optimized)",
            case.name,
            case.baseline.wall_ms,
            case.optimized.wall_ms,
            case.speedup,
            case.optimized.cycles_per_sec,
        );
    }
    println!(
        "  snapshot: clone {:.1} ns/call, reuse {:.1} ns/call",
        report.snapshot.clone_ns_per_call, report.snapshot.reuse_ns_per_call
    );
    println!(
        "  obs guardrail: detached {:.3} ms, attached {:.3} ms, overhead {:+.2}% (budget {:.0}%)",
        report.obs.detached_wall_ms,
        report.obs.attached_wall_ms,
        report.obs.overhead_pct,
        bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT,
    );

    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_sim: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::write(&out_path, json + "\n") {
        eprintln!("bench_sim: write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench_sim: wrote {out_path}");
    if smoke && report.obs.overhead_pct > bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT {
        eprintln!(
            "bench_sim: metrics overhead {:.2}% exceeds the {:.0}% budget",
            report.obs.overhead_pct,
            bwpart_bench::perf::OBS_OVERHEAD_BUDGET_PCT
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
