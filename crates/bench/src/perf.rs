//! Perf-regression harness behind `cargo xtask bench`.
//!
//! Times two canonical workloads — one mix end-to-end and one full scheme
//! sweep — in *seed* mode (single-threaded pool, per-cycle stepping, the
//! behaviour before the performance work) and in the *optimized* default
//! mode (work-stealing pool + event-driven fast-forward), then emits the
//! machine-readable [`BenchReport`] that `bench_sim` writes to
//! `BENCH_sim.json`.
//!
//! Methodology notes:
//!
//! * **Best-of-N, interleaved.** Wall times on a shared machine fluctuate
//!   by ±10 %; each mode runs `reps` times with modes alternating, and the
//!   minimum is reported. The minimum is the right statistic for "how fast
//!   can this code go" — noise only ever adds time.
//! * **Bit-identical outcomes.** Every rep's outcomes are serialized and
//!   compared against the baseline's: the harness panics on any divergence,
//!   so a timing report doubles as a determinism check (parallel + skip vs
//!   sequential + per-cycle).

use std::time::{Duration, Instant};

use bwpart_cmp::hybrid::within_tolerance;
use bwpart_cmp::{
    Access, CacheConfig, CmpConfig, CoreConfig, HybridConfig, LlcConfig, PhaseConfig, RunObserver,
    Runner, ShareSource, SimOutcome, Workload,
};
use bwpart_core::schemes::PartitionScheme;
use bwpart_workloads::mixes::{cache_mixes, fig1_mix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Seed shared by every benchmark run so baseline and optimized modes
/// simulate exactly the same instruction streams.
const SEED: u64 = 0xB417_2013;

/// Wall time and throughput for one mode of one benchmark case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeResult {
    /// Best-of-N wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Simulated CPU cycles per wall-clock second at that best time.
    pub cycles_per_sec: f64,
}

/// The pool/host environment a case was measured under. `cargo xtask
/// bench --check` refuses to compare cases whose environments differ —
/// the committed `BENCH_sim.json` numbers come from a 1-core CI
/// container, and comparing them against a 16-core workstation (or a
/// differently-configured pool) is drift, not regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseEnv {
    /// Worker threads the optimized mode's pool used.
    pub threads: usize,
    /// Whether the optimized mode fanned per-app controller scans over
    /// the pool (`CmpConfig::parallel_channels`).
    pub parallel_channels: bool,
    /// Host logical core count at measurement time.
    pub host_cores: usize,
}

/// One benchmark case measured in both modes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchCase {
    /// Case name (`mix_end_to_end`, `scheme_sweep`, or
    /// `scheme_sweep_hybrid`).
    pub name: String,
    /// Total simulated cycles per run (all schemes, all phases).
    pub simulated_cycles: u64,
    /// Seed behaviour: `rayon` pool pinned to one thread, per-cycle
    /// stepping (`fast_forward: false`).
    pub baseline: ModeResult,
    /// Default behaviour: work-stealing pool + event-driven fast-forward
    /// (plus analytic hybrid stepping in the hybrid case).
    pub optimized: ModeResult,
    /// `baseline.wall_ms / optimized.wall_ms`.
    pub speedup: f64,
    /// Whether every rep of both modes produced byte-identical serialized
    /// outcomes (the harness panics if not, so a written report always
    /// says `true` for exact cases; the hybrid case is *not* bit-exact by
    /// design and records `false`).
    pub identical_outcomes: bool,
    /// Hybrid case only: every scheme's end-state outcome passed
    /// [`within_tolerance`] against the cycle-exact baseline (the harness
    /// panics if not). `None` for exact cases.
    pub tolerance_certified: Option<bool>,
    /// Environment fingerprint for like-for-like `--check` comparison.
    pub env: CaseEnv,
}

/// Observability guardrail: the scheme sweep timed with a per-run metrics
/// registry attached vs. fully detached. The attached mode is what
/// `bwpart trace` does; the delta is the cost of the `obs_*!` hot-path
/// hooks actually firing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsOverhead {
    /// Best-of-N sweep wall time with no observer (milliseconds).
    pub detached_wall_ms: f64,
    /// Best-of-N sweep wall time with a registry attached (milliseconds).
    pub attached_wall_ms: f64,
    /// `(attached - detached) / detached × 100` (negative values are
    /// timing noise). The CI smoke gate fails above
    /// [`OBS_OVERHEAD_BUDGET_PCT`].
    pub overhead_pct: f64,
    /// Whether attached and detached reps produced byte-identical
    /// serialized outcomes (the harness panics if not).
    pub identical_outcomes: bool,
}

/// Maximum tolerated metrics-attached overhead, in percent, enforced by
/// `bench_sim` in smoke mode.
pub const OBS_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Absolute slack added on top of [`OBS_OVERHEAD_BUDGET_PCT`], in
/// milliseconds. The smoke-mode guardrail sweep runs ~6 ms, where
/// best-of-N attached-vs-detached still jitters by a few hundred
/// microseconds either way; like the `--check` gate's
/// [`CHECK_ABS_SLACK_MS`], the absolute term keeps scheduler noise from
/// failing a run while staying far below any real per-event cost
/// regression (one extra atomic per served transaction costs whole
/// milliseconds at this cycle budget).
pub const OBS_OVERHEAD_ABS_SLACK_MS: f64 = 0.5;

impl ObsOverhead {
    /// Whether the attached run is within budget: no more than
    /// [`OBS_OVERHEAD_BUDGET_PCT`] percent plus
    /// [`OBS_OVERHEAD_ABS_SLACK_MS`] slower than the detached run.
    pub fn within_budget(&self) -> bool {
        self.attached_wall_ms - self.detached_wall_ms
            <= self.detached_wall_ms * OBS_OVERHEAD_BUDGET_PCT / 100.0 + OBS_OVERHEAD_ABS_SLACK_MS
    }
}

/// Cost per call of the two snapshot flavours (see
/// `CmpSystem::snapshot_into`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotMicrobench {
    /// `snapshot()` — allocates four vectors per call.
    pub clone_ns_per_call: f64,
    /// `snapshot_into()` — reuses the caller's buffers.
    pub reuse_ns_per_call: f64,
}

/// The full report serialized to `BENCH_sim.json`. Deserializable so
/// `--check` can reload the committed baseline and compare.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema tag ([`SCHEMA`]).
    pub schema: String,
    /// True when run with the CI smoke budget (timings not comparable to
    /// full runs).
    pub smoke: bool,
    /// Worker threads the optimized mode's pool used.
    pub threads: usize,
    /// Reps per mode (best-of-N).
    pub reps: usize,
    /// The benchmark cases.
    pub cases: Vec<BenchCase>,
    /// Snapshot clone-vs-reuse micro-benchmark.
    pub snapshot: SnapshotMicrobench,
    /// Metrics-attached vs. detached sweep overhead guardrail.
    pub obs: ObsOverhead,
}

/// Phase budgets for the benchmark runs.
fn phases(smoke: bool) -> PhaseConfig {
    if smoke {
        PhaseConfig {
            warmup: 20_000,
            profile: 40_000,
            measure: 60_000,
            repartition_epoch: None,
        }
    } else {
        PhaseConfig {
            warmup: 200_000,
            profile: 400_000,
            measure: 600_000,
            repartition_epoch: None,
        }
    }
}

/// Current report schema tag. Bumped whenever the report shape changes;
/// `check` refuses to compare reports across schema versions.
pub const SCHEMA: &str = "bwpart-bench-sim/v2";

/// Maximum tolerated slowdown of any case's `optimized.wall_ms` against
/// the committed baseline before `--check` fails, in percent.
pub const CHECK_REGRESSION_PCT: f64 = 10.0;

/// Absolute wall-time slack added on top of [`CHECK_REGRESSION_PCT`].
/// The smoke-mode `mix_end_to_end` case finishes in ~1 ms, where best-of-N
/// still jitters by most of a millisecond run to run; a purely relative budget
/// would flake on it while a millisecond-scale absolute term is invisible
/// to the tens-of-milliseconds cases the gate is really protecting.
pub const CHECK_ABS_SLACK_MS: f64 = 1.0;

fn runner(fast_forward: bool, parallel_channels: bool, phases: PhaseConfig) -> Runner {
    Runner {
        cmp: CmpConfig {
            fast_forward,
            parallel_channels,
            ..CmpConfig::default()
        },
        phases,
    }
}

/// The environment fingerprint for the optimized mode as configured right
/// now (default pool width on this host).
fn current_env(parallel_channels: bool) -> CaseEnv {
    CaseEnv {
        threads: rayon::pool::current_num_threads(),
        parallel_channels,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Serialize outcomes for the bit-identity comparison.
fn fingerprint(outcomes: &[SimOutcome]) -> String {
    serde_json::to_string(outcomes)
        // lint: allow(R1): serializing in-memory plain-data structs cannot fail
        .expect("SimOutcome serializes")
}

/// One run of the mix-end-to-end case: `fig1_mix` under the first enforced
/// scheme, warmup → profile → measure. `optimized` selects the default
/// fast path (event-driven fast-forward + parallel per-app gather) vs the
/// seed behaviour (per-cycle, sequential gather).
fn run_mix(optimized: bool, phases: PhaseConfig) -> Vec<SimOutcome> {
    let r = runner(optimized, optimized, phases);
    let mix = fig1_mix();
    let (w, cc) = mix.build(1, SEED);
    vec![r.run_scheme(
        PartitionScheme::ENFORCED_SCHEMES[0],
        w,
        cc,
        ShareSource::OnlineProfile,
    )]
}

/// One run of the scheme-sweep case: `fig1_mix` under every enforced
/// scheme, fanned out over the `rayon` pool (sequential in baseline mode,
/// where the pool is pinned to one thread).
fn run_sweep_cfg(
    fast_forward: bool,
    parallel_channels: bool,
    hybrid: Option<HybridConfig>,
    phases: PhaseConfig,
) -> Vec<SimOutcome> {
    let r = Runner {
        cmp: CmpConfig {
            fast_forward,
            parallel_channels,
            hybrid,
            ..CmpConfig::default()
        },
        phases,
    };
    let mix = fig1_mix();
    PartitionScheme::ENFORCED_SCHEMES
        .par_iter()
        .map(|&s| {
            let (w, cc) = mix.build(1, SEED);
            r.run_scheme(s, w, cc, ShareSource::OnlineProfile)
        })
        .collect()
}

fn run_sweep(optimized: bool, phases: PhaseConfig) -> Vec<SimOutcome> {
    run_sweep_cfg(optimized, optimized, None, phases)
}

/// Way splits driven by the coordinated-enforcement case: the fair split,
/// two asymmetries favouring the cache-fitting app, and one inverted.
const COORD_WAY_SPLITS: [[usize; 2]; 4] = [[8, 8], [12, 4], [15, 1], [4, 12]];

/// One run of the coordinated-enforcement case: the `cache-1` mix (an
/// LLC-fitting app against a streamer) under a shared 16-way LLC, swept
/// over [`COORD_WAY_SPLITS`] with a fixed bandwidth split — the
/// multi-resource enforcement path (`run_with_allocation`: way masks
/// installed before warm-up plus start-time-fair bandwidth scheduling)
/// that coordinated `bwpartd` epochs and the `coordinated_sim` e2e test
/// exercise. Times enforcement, not the solver (which is microseconds).
fn run_coordinated_sweep(optimized: bool, phases: PhaseConfig) -> Vec<SimOutcome> {
    let r = Runner {
        cmp: CmpConfig {
            fast_forward: optimized,
            parallel_channels: optimized,
            llc: Some(LlcConfig {
                cache: CacheConfig {
                    capacity: 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                },
                hit_penalty: 12,
            }),
            ..CmpConfig::default()
        },
        phases,
    };
    let mix = cache_mixes().remove(0);
    COORD_WAY_SPLITS
        .par_iter()
        .map(|ways| {
            let (w, cc) = mix.build(1, SEED);
            // Illustrative square-root-ish β and reference profiles; the
            // fingerprint only needs them identical across modes.
            r.run_with_allocation(
                vec![0.45, 0.55],
                Some(ways),
                "coordinated",
                w,
                cc,
                vec![0.003, 0.0095],
                vec![0.01, 0.05],
            )
        })
        .collect()
}

/// Stationary two-region workload for the hybrid case: every
/// `stream_period`-th access streams through memory, the rest hit an
/// L1-resident hot set, and the inter-access gap is drawn from a seeded
/// xorshift64 over {3,4,5,6}. The jitter is load-bearing: with perfectly
/// periodic streams the composite system (periodic apps × refresh clock ×
/// bank timing) wanders a multi-million-cycle transient before locking
/// into its periodic attractor, and the rates *after* lock-in differ from
/// the rates before — a macro-transition the steady-state detector cannot
/// see at window scale and a jump cannot reproduce. Per-access jitter
/// breaks the cross-app phase coherence, making per-window rates genuinely
/// stationary (verified flat to <0.1 % from 2 M to 5 M cycles), while CLT
/// averaging over ~2 k accesses keeps window counts well inside the
/// detector's stability band. Unlike the `BenchProfile`-driven synthetic
/// mixes it has no burst structure longer than an observation window —
/// which is the regime the analytic stepper is *for* — so the hybrid case
/// measures steady-phase workloads and the exact cases keep the rng mix.
struct SteadyStream {
    name: String,
    stream_period: u32,
    counter: u32,
    stream_next: u64,
    hot_next: u64,
    rng: u64,
}

impl SteadyStream {
    fn new(name: &str, seed: u64, stream_period: u32) -> Self {
        SteadyStream {
            name: name.into(),
            stream_period,
            counter: 0,
            stream_next: 1 << 24,
            hot_next: 0,
            rng: seed,
        }
    }
}

impl Workload for SteadyStream {
    fn next_access(&mut self) -> Access {
        self.counter += 1;
        let addr = if self.counter.is_multiple_of(self.stream_period) {
            let a = self.stream_next;
            self.stream_next += 64;
            a
        } else {
            let a = self.hot_next % (16 * 1024);
            self.hot_next += 64;
            a
        };
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        Access {
            gap: 3 + (self.rng % 4) as u32,
            addr,
            is_write: false,
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Two heavy + two light steady streams with distinct intensities (ties
/// between identical apps make discrete-priority schemes knife-edged).
fn steady_mix() -> (Vec<Box<dyn Workload>>, Vec<CoreConfig>) {
    let w: Vec<Box<dyn Workload>> = vec![
        Box::new(SteadyStream::new("steady-heavy0", 0x9e3779b97f4a7c15, 2)),
        Box::new(SteadyStream::new("steady-heavy1", 0xd1b54a32d192ed03, 3)),
        Box::new(SteadyStream::new("steady-light0", 0x94d049bb133111eb, 40)),
        Box::new(SteadyStream::new("steady-light1", 0xbf58476d1ce4e5b9, 50)),
    ];
    let cc = vec![CoreConfig::default(); 4];
    (w, cc)
}

/// One run of the hybrid-case sweep: the steady mix under every enforced
/// scheme.
fn run_steady_sweep(
    fast_forward: bool,
    parallel_channels: bool,
    hybrid: Option<HybridConfig>,
    phases: PhaseConfig,
) -> Vec<SimOutcome> {
    let r = Runner {
        cmp: CmpConfig {
            fast_forward,
            parallel_channels,
            hybrid,
            ..CmpConfig::default()
        },
        phases,
    };
    PartitionScheme::ENFORCED_SCHEMES
        .par_iter()
        .map(|&s| {
            let (w, cc) = steady_mix();
            r.run_scheme(s, w, cc, ShareSource::OnlineProfile)
        })
        .collect()
}

/// Fingerprint of the full scheme sweep under the **current** pool
/// configuration (thread count is whatever `RAYON_NUM_THREADS` /
/// `pool::set_num_threads` says). The CI determinism matrix runs this
/// across thread counts, fast-forward modes, and gather modes, and diffs
/// the outputs: any divergence means the parallel merge, the fast-forward
/// path, or the parallel candidate gather changed observable simulation
/// results.
pub fn sweep_fingerprint(fast_forward: bool, parallel_channels: bool, smoke: bool) -> String {
    fingerprint(&run_sweep_cfg(
        fast_forward,
        parallel_channels,
        None,
        phases(smoke),
    ))
}

/// Time `f` once, in `mode_threads` pool mode, returning the wall time and
/// the outcomes.
fn timed<T, F: FnOnce() -> T>(mode_threads: usize, f: F) -> (Duration, T) {
    rayon::pool::set_num_threads(mode_threads);
    let t0 = Instant::now();
    let out = f();
    let wall = t0.elapsed();
    rayon::pool::set_num_threads(0);
    (wall, out)
}

/// Measure one case in both modes, best-of-`reps` interleaved, asserting
/// outcome bit-identity across every rep of every mode.
fn bench_case(
    name: &str,
    simulated_cycles: u64,
    reps: usize,
    run: impl Fn(bool) -> Vec<SimOutcome>,
) -> BenchCase {
    let mut best_base = Duration::MAX;
    let mut best_opt = Duration::MAX;
    let mut reference: Option<String> = None;
    for _ in 0..reps.max(1) {
        // Baseline: seed behaviour — one pool thread, per-cycle stepping.
        let (wall, out) = timed(1, || run(false));
        best_base = best_base.min(wall);
        let fp = fingerprint(&out);
        let expected = reference.get_or_insert(fp.clone());
        assert_eq!(
            *expected, fp,
            "{name}: baseline outcomes diverged between reps"
        );
        // Optimized: default pool width + event-driven fast-forward.
        let (wall, out) = timed(0, || run(true));
        best_opt = best_opt.min(wall);
        assert_eq!(
            *expected,
            fingerprint(&out),
            "{name}: optimized outcomes diverged from the sequential baseline"
        );
    }
    let per_sec = |wall: Duration| simulated_cycles as f64 / wall.as_secs_f64().max(1e-12);
    let round = |ms: f64| (ms * 1000.0).round() / 1000.0;
    BenchCase {
        name: name.to_string(),
        simulated_cycles,
        baseline: ModeResult {
            wall_ms: round(best_base.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_base).round(),
        },
        optimized: ModeResult {
            wall_ms: round(best_opt.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_opt).round(),
        },
        speedup: {
            let s = best_base.as_secs_f64() / best_opt.as_secs_f64().max(1e-12);
            (s * 100.0).round() / 100.0
        },
        identical_outcomes: true,
        tolerance_certified: None,
        env: current_env(true),
    }
}

/// Measure the hybrid sweep case: the [`steady_mix`] under every enforced
/// scheme. Baseline is the seed behaviour (one pool thread, per-cycle
/// stepping, no hybrid); optimized adds analytic hybrid
/// stepping on top of the default fast path. Hybrid runs are *not*
/// bit-exact by design, so instead of fingerprint identity every rep's
/// outcomes are certified against the cycle-exact baseline with
/// [`within_tolerance`] — the harness panics if any scheme drifts outside
/// the configured epsilon.
fn bench_hybrid_case(
    simulated_cycles: u64,
    reps: usize,
    hc: HybridConfig,
    phases: PhaseConfig,
) -> BenchCase {
    let mut best_base = Duration::MAX;
    let mut best_opt = Duration::MAX;
    let mut reference: Option<Vec<SimOutcome>> = None;
    for _ in 0..reps.max(1) {
        let (wall, out) = timed(1, || run_steady_sweep(false, false, None, phases));
        best_base = best_base.min(wall);
        let exact = reference.get_or_insert_with(|| out.clone());
        assert_eq!(
            fingerprint(exact),
            fingerprint(&out),
            "scheme_sweep_hybrid: baseline outcomes diverged between reps"
        );
        let (wall, out) = timed(0, || run_steady_sweep(true, true, Some(hc), phases));
        best_opt = best_opt.min(wall);
        for (i, (e, h)) in exact.iter().zip(&out).enumerate() {
            assert!(
                within_tolerance(e, h, hc.epsilon),
                "scheme_sweep_hybrid: scheme {} outside the certified epsilon {}",
                PartitionScheme::ENFORCED_SCHEMES[i].name(),
                hc.epsilon,
            );
        }
    }
    let per_sec = |wall: Duration| simulated_cycles as f64 / wall.as_secs_f64().max(1e-12);
    let round = |ms: f64| (ms * 1000.0).round() / 1000.0;
    BenchCase {
        name: "scheme_sweep_hybrid".to_string(),
        simulated_cycles,
        baseline: ModeResult {
            wall_ms: round(best_base.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_base).round(),
        },
        optimized: ModeResult {
            wall_ms: round(best_opt.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_opt).round(),
        },
        speedup: {
            let s = best_base.as_secs_f64() / best_opt.as_secs_f64().max(1e-12);
            (s * 100.0).round() / 100.0
        },
        identical_outcomes: false,
        tolerance_certified: Some(true),
        env: current_env(true),
    }
}

/// One sweep run with (or without) a fresh per-run observer attached,
/// returning the outcomes and the total `cmp_steps_total` collected — a
/// sanity signal that the attached mode really recorded metrics.
fn run_sweep_observed(phases: PhaseConfig, attach: bool) -> (Vec<SimOutcome>, u64) {
    let r = runner(true, true, phases);
    let mix = fig1_mix();
    let per_run: Vec<(SimOutcome, u64)> = PartitionScheme::ENFORCED_SCHEMES
        .par_iter()
        .map(|&s| {
            let (w, cc) = mix.build(1, SEED);
            let observer = attach.then(RunObserver::new);
            let out = r.run_scheme_traced(s, w, cc, ShareSource::OnlineProfile, observer.as_ref());
            let steps = observer
                .map(|o| o.registry.counter("cmp_steps_total").get())
                .unwrap_or(0);
            (out, steps)
        })
        .collect();
    let steps = per_run.iter().map(|(_, s)| s).sum();
    (per_run.into_iter().map(|(o, _)| o).collect(), steps)
}

/// Measure the attached-vs-detached sweep, best-of-`reps` interleaved,
/// asserting outcome bit-identity (observation must never change results).
fn obs_overhead_bench(smoke: bool, reps: usize) -> ObsOverhead {
    let p = phases(smoke);
    let mut best_det = Duration::MAX;
    let mut best_att = Duration::MAX;
    let mut reference: Option<String> = None;
    for _ in 0..reps.max(1) {
        let (wall, (out, _)) = timed(0, || run_sweep_observed(p, false));
        best_det = best_det.min(wall);
        let fp = fingerprint(&out);
        let expected = reference.get_or_insert(fp.clone());
        assert_eq!(
            *expected, fp,
            "obs: detached outcomes diverged between reps"
        );

        let (wall, (out, steps)) = timed(0, || run_sweep_observed(p, true));
        best_att = best_att.min(wall);
        assert_eq!(
            *expected,
            fingerprint(&out),
            "obs: attaching a metrics registry changed simulation outcomes"
        );
        assert!(
            steps > 0,
            "obs: attached sweep collected no metrics — is the `trace` feature on?"
        );
    }
    let round = |x: f64| (x * 1000.0).round() / 1000.0;
    let det = best_det.as_secs_f64();
    let att = best_att.as_secs_f64();
    ObsOverhead {
        detached_wall_ms: round(det * 1e3),
        attached_wall_ms: round(att * 1e3),
        overhead_pct: ((att - det) / det.max(1e-12) * 100.0 * 100.0).round() / 100.0,
        identical_outcomes: true,
    }
}

/// Time `snapshot()` (allocating) vs `snapshot_into()` (buffer-reusing) on
/// a warmed system.
fn snapshot_microbench() -> SnapshotMicrobench {
    use bwpart_cmp::{CmpSystem, Snapshot};
    use bwpart_mc::Policy;

    let mix = fig1_mix();
    let (w, cc) = mix.build(1, SEED);
    let n = w.len();
    let mut sys = CmpSystem::new(&CmpConfig::default(), w, cc, Policy::fcfs(n));
    sys.run(10_000);

    const ITERS: u32 = 10_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(sys.snapshot());
    }
    let clone_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let mut snap = Snapshot::default();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        sys.snapshot_into(&mut snap);
        std::hint::black_box(&snap);
    }
    let reuse_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let round = |ns: f64| (ns * 10.0).round() / 10.0;
    SnapshotMicrobench {
        clone_ns_per_call: round(clone_ns),
        reuse_ns_per_call: round(reuse_ns),
    }
}

/// Phase budgets for the hybrid case. The measure phase is deliberately
/// long: the analytic stepper needs room to amortize its observation
/// windows (`history + 1` windows between jumps) into large jumps, which
/// is exactly the regime the hybrid mode exists for — long steady-state
/// measurement runs.
fn hybrid_phases(smoke: bool) -> PhaseConfig {
    PhaseConfig {
        // Warm-up and profile match `PhaseConfig::fast()`: the stepper is
        // disarmed there anyway, and shorter budgets leave the system in a
        // still-warming transient at measure start that the first jump
        // would extrapolate (measured: ~30 % retirement undercredit).
        warmup: 100_000,
        profile: 300_000,
        measure: if smoke { 5_160_000 } else { 10_500_000 },
        repartition_epoch: None,
    }
}

/// The hybrid configuration benchmarked (and certified) by the
/// `scheme_sweep_hybrid` case. `jump_windows` is raised from the default
/// so each full jump covers 960 k cycles; with the run loop clipping the
/// final jump of a phase to the remaining budget, >85 % of the measure
/// phase rides the analytic path and only the 60 k-cycle evidence spans
/// between jumps are stepped exactly. `epsilon` stays at the default
/// certified tolerance.
fn hybrid_bench_config() -> HybridConfig {
    HybridConfig {
        jump_windows: 96,
        ..HybridConfig::default()
    }
}

/// Run the full harness. `smoke` shrinks the cycle budgets ~10× for CI;
/// `reps` is the best-of-N count per mode.
pub fn run(smoke: bool, reps: usize) -> BenchReport {
    let p = phases(smoke);
    let per_run = p.warmup + p.profile + p.measure;
    let n_schemes = PartitionScheme::ENFORCED_SCHEMES.len() as u64;
    let hp = hybrid_phases(smoke);
    let hybrid_cycles = (hp.warmup + hp.profile + hp.measure) * n_schemes;
    let threads = rayon::pool::current_num_threads();

    let cases = vec![
        bench_case("mix_end_to_end", per_run, reps, |opt| run_mix(opt, p)),
        bench_case("scheme_sweep", per_run * n_schemes, reps, |opt| {
            run_sweep(opt, p)
        }),
        bench_hybrid_case(hybrid_cycles, reps, hybrid_bench_config(), hp),
        bench_case(
            "coordinated_sweep",
            per_run * COORD_WAY_SPLITS.len() as u64,
            reps,
            |opt| run_coordinated_sweep(opt, p),
        ),
    ];

    BenchReport {
        schema: SCHEMA.to_string(),
        smoke,
        threads,
        reps,
        cases,
        snapshot: snapshot_microbench(),
        obs: obs_overhead_bench(smoke, reps),
    }
}

/// Outcome of comparing a fresh report against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Cases compared like-for-like, with the measured wall-time delta in
    /// percent (positive = fresh is slower).
    pub compared: Vec<(String, f64)>,
    /// Cases skipped, with the reason (environment or budget mismatch —
    /// comparing them would be drift, not regression).
    pub skipped: Vec<(String, String)>,
    /// Human-readable regression descriptions; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl CheckOutcome {
    /// True when no compared case regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// One-line coverage-shrinkage summary: `skipped N case(s) (env
    /// mismatch)`, with the parenthetical listing each distinct skip
    /// class seen. `None` when nothing was skipped. Printed on pass AND
    /// fail paths so CI logs always show how much the gate actually
    /// compared.
    pub fn skipped_summary(&self) -> Option<String> {
        if self.skipped.is_empty() {
            return None;
        }
        let mut classes: Vec<&str> = Vec::new();
        for (_, why) in &self.skipped {
            let class = if why.contains("environment mismatch") {
                "env mismatch"
            } else if why.contains("budget mismatch") {
                "budget mismatch"
            } else {
                "no committed entry"
            };
            if !classes.contains(&class) {
                classes.push(class);
            }
        }
        Some(format!(
            "skipped {} case(s) ({})",
            self.skipped.len(),
            classes.join(", ")
        ))
    }
}

/// Compare a fresh report against the committed baseline, like-for-like.
///
/// A case is only compared when its name, smoke flag, simulated cycle
/// count, and [`CaseEnv`] all match the committed entry — the committed
/// numbers come from a specific container (1 core in CI), and wall times
/// measured under a different pool width or host core count are
/// incommensurable. Mismatched cases are reported as skipped, not failed.
/// A compared case regresses when its `optimized.wall_ms` exceeds the
/// committed number by more than [`CHECK_REGRESSION_PCT`] percent plus
/// [`CHECK_ABS_SLACK_MS`] (the absolute term keeps millisecond-scale
/// cases from flaking on scheduler jitter).
pub fn check(committed: &BenchReport, fresh: &BenchReport) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    if committed.schema != fresh.schema {
        out.regressions.push(format!(
            "schema mismatch: committed {} vs fresh {} — regenerate BENCH_sim.json",
            committed.schema, fresh.schema
        ));
        return out;
    }
    for f in &fresh.cases {
        let Some(c) = committed.cases.iter().find(|c| c.name == f.name) else {
            out.skipped
                .push((f.name.clone(), "no committed entry".to_string()));
            continue;
        };
        if committed.smoke != fresh.smoke || c.simulated_cycles != f.simulated_cycles {
            out.skipped.push((
                f.name.clone(),
                format!(
                    "budget mismatch (smoke {} vs {}, cycles {} vs {})",
                    committed.smoke, fresh.smoke, c.simulated_cycles, f.simulated_cycles
                ),
            ));
            continue;
        }
        if c.env != f.env {
            out.skipped.push((
                f.name.clone(),
                format!("environment mismatch ({:?} vs {:?})", c.env, f.env),
            ));
            continue;
        }
        let delta_pct = (f.optimized.wall_ms - c.optimized.wall_ms) / c.optimized.wall_ms * 100.0;
        out.compared.push((f.name.clone(), delta_pct));
        let budget_ms = c.optimized.wall_ms * CHECK_REGRESSION_PCT / 100.0 + CHECK_ABS_SLACK_MS;
        if f.optimized.wall_ms - c.optimized.wall_ms > budget_ms {
            out.regressions.push(format!(
                "{}: optimized {:.3} ms vs committed {:.3} ms \
                 ({:+.1}% > {:.0}% + {:.1} ms budget)",
                f.name,
                f.optimized.wall_ms,
                c.optimized.wall_ms,
                delta_pct,
                CHECK_REGRESSION_PCT,
                CHECK_ABS_SLACK_MS
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_consistent() {
        let report = run(true, 1);
        assert_eq!(report.schema, SCHEMA);
        assert!(report.smoke);
        assert_eq!(report.cases.len(), 4);
        assert_eq!(report.cases[0].name, "mix_end_to_end");
        assert_eq!(report.cases[1].name, "scheme_sweep");
        assert_eq!(report.cases[2].name, "scheme_sweep_hybrid");
        assert_eq!(report.cases[3].name, "coordinated_sweep");
        for case in &report.cases {
            assert!(case.baseline.wall_ms > 0.0);
            assert!(case.optimized.wall_ms > 0.0);
            assert!(case.speedup > 0.0);
            assert!(case.env.threads >= 1);
            assert!(case.env.host_cores >= 1);
            assert!(case.env.parallel_channels);
        }
        assert!(report.cases[0].identical_outcomes);
        assert!(report.cases[1].identical_outcomes);
        assert!(report.cases[3].identical_outcomes);
        assert_eq!(report.cases[0].tolerance_certified, None);
        assert_eq!(report.cases[3].tolerance_certified, None);
        // The hybrid case is tolerance-certified, not bit-exact.
        assert!(!report.cases[2].identical_outcomes);
        assert_eq!(report.cases[2].tolerance_certified, Some(true));
        assert_eq!(
            report.cases[1].simulated_cycles,
            report.cases[0].simulated_cycles * 6
        );
        assert!(report.snapshot.clone_ns_per_call > 0.0);
        assert!(report.snapshot.reuse_ns_per_call > 0.0);
        assert!(report.obs.identical_outcomes);
        assert!(report.obs.detached_wall_ms > 0.0);
        assert!(report.obs.attached_wall_ms > 0.0);
        assert!(report.obs.overhead_pct.is_finite());
        // The report must round-trip through serde_json for BENCH_sim.json
        // and back for `--check`.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("scheme_sweep"));
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, report.schema);
        assert_eq!(back.cases.len(), report.cases.len());
        assert_eq!(back.cases[2].env, report.cases[2].env);
        assert_eq!(back.cases[2].tolerance_certified, Some(true));

        // `check` against itself compares every case and passes.
        let outcome = check(&back, &report);
        assert!(outcome.passed());
        assert_eq!(outcome.compared.len(), 4);
        assert!(outcome.skipped.is_empty());

        // A >10 % slowdown on an optimized case is a regression...
        let mut slow = report.clone();
        slow.cases[1].optimized.wall_ms *= 1.5;
        slow.cases[1].optimized.wall_ms += 2.0 * CHECK_ABS_SLACK_MS;
        let outcome = check(&back, &slow);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);

        // A sub-slack absolute delta is noise, not a regression, even when
        // it exceeds the relative budget on a tiny case.
        let mut noisy = report.clone();
        noisy.cases[0].optimized.wall_ms += 0.8 * CHECK_ABS_SLACK_MS;
        let outcome = check(&back, &noisy);
        assert!(outcome.passed());

        // ...but the same slowdown under a different environment is drift,
        // skipped rather than failed.
        slow.cases[1].env.host_cores += 64;
        let outcome = check(&back, &slow);
        assert!(outcome.passed());
        assert_eq!(outcome.skipped.len(), 1);
    }

    #[test]
    fn skipped_summary_is_one_line_with_distinct_classes() {
        let outcome = CheckOutcome::default();
        assert_eq!(outcome.skipped_summary(), None);

        let outcome = CheckOutcome {
            skipped: vec![
                (
                    "scheme_sweep".into(),
                    "environment mismatch (a vs b)".into(),
                ),
                ("qos_probe".into(), "environment mismatch (a vs b)".into()),
                (
                    "soa_hybrid".into(),
                    "budget mismatch (smoke true vs false, cycles 1 vs 2)".into(),
                ),
            ],
            ..CheckOutcome::default()
        };
        assert_eq!(
            outcome.skipped_summary().as_deref(),
            Some("skipped 3 case(s) (env mismatch, budget mismatch)")
        );
    }

    #[test]
    fn obs_budget_has_relative_and_absolute_terms() {
        let obs = |det: f64, att: f64| ObsOverhead {
            detached_wall_ms: det,
            attached_wall_ms: att,
            overhead_pct: (att - det) / det * 100.0,
            identical_outcomes: true,
        };
        // 7 % over on a 6 ms sweep is within the absolute slack.
        assert!(obs(6.0, 6.0 * 1.07).within_budget());
        // The same percentage on a 100 ms sweep is a real regression.
        assert!(!obs(100.0, 107.0).within_budget());
        // Inside the relative budget always passes.
        assert!(obs(100.0, 104.0).within_budget());
    }
}
