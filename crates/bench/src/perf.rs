//! Perf-regression harness behind `cargo xtask bench`.
//!
//! Times two canonical workloads — one mix end-to-end and one full scheme
//! sweep — in *seed* mode (single-threaded pool, per-cycle stepping, the
//! behaviour before the performance work) and in the *optimized* default
//! mode (work-stealing pool + event-driven fast-forward), then emits the
//! machine-readable [`BenchReport`] that `bench_sim` writes to
//! `BENCH_sim.json`.
//!
//! Methodology notes:
//!
//! * **Best-of-N, interleaved.** Wall times on a shared machine fluctuate
//!   by ±10 %; each mode runs `reps` times with modes alternating, and the
//!   minimum is reported. The minimum is the right statistic for "how fast
//!   can this code go" — noise only ever adds time.
//! * **Bit-identical outcomes.** Every rep's outcomes are serialized and
//!   compared against the baseline's: the harness panics on any divergence,
//!   so a timing report doubles as a determinism check (parallel + skip vs
//!   sequential + per-cycle).

use std::time::{Duration, Instant};

use bwpart_cmp::{CmpConfig, PhaseConfig, RunObserver, Runner, ShareSource, SimOutcome};
use bwpart_core::schemes::PartitionScheme;
use bwpart_workloads::mixes::fig1_mix;
use rayon::prelude::*;
use serde::Serialize;

/// Seed shared by every benchmark run so baseline and optimized modes
/// simulate exactly the same instruction streams.
const SEED: u64 = 0xB417_2013;

/// Wall time and throughput for one mode of one benchmark case.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    /// Best-of-N wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Simulated CPU cycles per wall-clock second at that best time.
    pub cycles_per_sec: f64,
}

/// One benchmark case measured in both modes.
#[derive(Debug, Clone, Serialize)]
pub struct BenchCase {
    /// Case name (`mix_end_to_end` or `scheme_sweep`).
    pub name: String,
    /// Total simulated cycles per run (all schemes, all phases).
    pub simulated_cycles: u64,
    /// Seed behaviour: `rayon` pool pinned to one thread, per-cycle
    /// stepping (`fast_forward: false`).
    pub baseline: ModeResult,
    /// Default behaviour: work-stealing pool + event-driven fast-forward.
    pub optimized: ModeResult,
    /// `baseline.wall_ms / optimized.wall_ms`.
    pub speedup: f64,
    /// Whether every rep of both modes produced byte-identical serialized
    /// outcomes (the harness panics if not, so a written report always
    /// says `true`; the field documents that the check ran).
    pub identical_outcomes: bool,
}

/// Observability guardrail: the scheme sweep timed with a per-run metrics
/// registry attached vs. fully detached. The attached mode is what
/// `bwpart trace` does; the delta is the cost of the `obs_*!` hot-path
/// hooks actually firing.
#[derive(Debug, Clone, Serialize)]
pub struct ObsOverhead {
    /// Best-of-N sweep wall time with no observer (milliseconds).
    pub detached_wall_ms: f64,
    /// Best-of-N sweep wall time with a registry attached (milliseconds).
    pub attached_wall_ms: f64,
    /// `(attached - detached) / detached × 100` (negative values are
    /// timing noise). The CI smoke gate fails above
    /// [`OBS_OVERHEAD_BUDGET_PCT`].
    pub overhead_pct: f64,
    /// Whether attached and detached reps produced byte-identical
    /// serialized outcomes (the harness panics if not).
    pub identical_outcomes: bool,
}

/// Maximum tolerated metrics-attached overhead, in percent, enforced by
/// `bench_sim` in smoke mode.
pub const OBS_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Cost per call of the two snapshot flavours (see
/// `CmpSystem::snapshot_into`).
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotMicrobench {
    /// `snapshot()` — allocates four vectors per call.
    pub clone_ns_per_call: f64,
    /// `snapshot_into()` — reuses the caller's buffers.
    pub reuse_ns_per_call: f64,
}

/// The full report serialized to `BENCH_sim.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Report schema tag.
    pub schema: &'static str,
    /// True when run with the CI smoke budget (timings not comparable to
    /// full runs).
    pub smoke: bool,
    /// Worker threads the optimized mode's pool used.
    pub threads: usize,
    /// Reps per mode (best-of-N).
    pub reps: usize,
    /// The benchmark cases.
    pub cases: Vec<BenchCase>,
    /// Snapshot clone-vs-reuse micro-benchmark.
    pub snapshot: SnapshotMicrobench,
    /// Metrics-attached vs. detached sweep overhead guardrail.
    pub obs: ObsOverhead,
}

/// Phase budgets for the benchmark runs.
fn phases(smoke: bool) -> PhaseConfig {
    if smoke {
        PhaseConfig {
            warmup: 20_000,
            profile: 40_000,
            measure: 60_000,
            repartition_epoch: None,
        }
    } else {
        PhaseConfig {
            warmup: 200_000,
            profile: 400_000,
            measure: 600_000,
            repartition_epoch: None,
        }
    }
}

fn runner(fast_forward: bool, phases: PhaseConfig) -> Runner {
    Runner {
        cmp: CmpConfig {
            fast_forward,
            ..CmpConfig::default()
        },
        phases,
    }
}

/// Serialize outcomes for the bit-identity comparison.
fn fingerprint(outcomes: &[SimOutcome]) -> String {
    serde_json::to_string(outcomes)
        // lint: allow(R1): serializing in-memory plain-data structs cannot fail
        .expect("SimOutcome serializes")
}

/// One run of the mix-end-to-end case: `fig1_mix` under the first enforced
/// scheme, warmup → profile → measure.
fn run_mix(fast_forward: bool, phases: PhaseConfig) -> Vec<SimOutcome> {
    let r = runner(fast_forward, phases);
    let mix = fig1_mix();
    let (w, cc) = mix.build(1, SEED);
    vec![r.run_scheme(
        PartitionScheme::ENFORCED_SCHEMES[0],
        w,
        cc,
        ShareSource::OnlineProfile,
    )]
}

/// One run of the scheme-sweep case: `fig1_mix` under every enforced
/// scheme, fanned out over the `rayon` pool (sequential in baseline mode,
/// where the pool is pinned to one thread).
fn run_sweep(fast_forward: bool, phases: PhaseConfig) -> Vec<SimOutcome> {
    let r = runner(fast_forward, phases);
    let mix = fig1_mix();
    PartitionScheme::ENFORCED_SCHEMES
        .par_iter()
        .map(|&s| {
            let (w, cc) = mix.build(1, SEED);
            r.run_scheme(s, w, cc, ShareSource::OnlineProfile)
        })
        .collect()
}

/// Fingerprint of the full scheme sweep under the **current** pool
/// configuration (thread count is whatever `RAYON_NUM_THREADS` /
/// `pool::set_num_threads` says). The CI determinism matrix runs this
/// across thread counts and fast-forward modes and diffs the outputs:
/// any divergence means the parallel merge or the fast-forward path
/// changed observable simulation results.
pub fn sweep_fingerprint(fast_forward: bool, smoke: bool) -> String {
    fingerprint(&run_sweep(fast_forward, phases(smoke)))
}

/// Time `f` once, in `mode_threads` pool mode, returning the wall time and
/// the outcomes.
fn timed<T, F: FnOnce() -> T>(mode_threads: usize, f: F) -> (Duration, T) {
    rayon::pool::set_num_threads(mode_threads);
    let t0 = Instant::now();
    let out = f();
    let wall = t0.elapsed();
    rayon::pool::set_num_threads(0);
    (wall, out)
}

/// Measure one case in both modes, best-of-`reps` interleaved, asserting
/// outcome bit-identity across every rep of every mode.
fn bench_case(
    name: &str,
    simulated_cycles: u64,
    reps: usize,
    run: impl Fn(bool) -> Vec<SimOutcome>,
) -> BenchCase {
    let mut best_base = Duration::MAX;
    let mut best_opt = Duration::MAX;
    let mut reference: Option<String> = None;
    for _ in 0..reps.max(1) {
        // Baseline: seed behaviour — one pool thread, per-cycle stepping.
        let (wall, out) = timed(1, || run(false));
        best_base = best_base.min(wall);
        let fp = fingerprint(&out);
        let expected = reference.get_or_insert(fp.clone());
        assert_eq!(
            *expected, fp,
            "{name}: baseline outcomes diverged between reps"
        );
        // Optimized: default pool width + event-driven fast-forward.
        let (wall, out) = timed(0, || run(true));
        best_opt = best_opt.min(wall);
        assert_eq!(
            *expected,
            fingerprint(&out),
            "{name}: optimized outcomes diverged from the sequential baseline"
        );
    }
    let per_sec = |wall: Duration| simulated_cycles as f64 / wall.as_secs_f64().max(1e-12);
    let round = |ms: f64| (ms * 1000.0).round() / 1000.0;
    BenchCase {
        name: name.to_string(),
        simulated_cycles,
        baseline: ModeResult {
            wall_ms: round(best_base.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_base).round(),
        },
        optimized: ModeResult {
            wall_ms: round(best_opt.as_secs_f64() * 1e3),
            cycles_per_sec: per_sec(best_opt).round(),
        },
        speedup: {
            let s = best_base.as_secs_f64() / best_opt.as_secs_f64().max(1e-12);
            (s * 100.0).round() / 100.0
        },
        identical_outcomes: true,
    }
}

/// One sweep run with (or without) a fresh per-run observer attached,
/// returning the outcomes and the total `cmp_steps_total` collected — a
/// sanity signal that the attached mode really recorded metrics.
fn run_sweep_observed(phases: PhaseConfig, attach: bool) -> (Vec<SimOutcome>, u64) {
    let r = runner(true, phases);
    let mix = fig1_mix();
    let per_run: Vec<(SimOutcome, u64)> = PartitionScheme::ENFORCED_SCHEMES
        .par_iter()
        .map(|&s| {
            let (w, cc) = mix.build(1, SEED);
            let observer = attach.then(RunObserver::new);
            let out = r.run_scheme_traced(s, w, cc, ShareSource::OnlineProfile, observer.as_ref());
            let steps = observer
                .map(|o| o.registry.counter("cmp_steps_total").get())
                .unwrap_or(0);
            (out, steps)
        })
        .collect();
    let steps = per_run.iter().map(|(_, s)| s).sum();
    (per_run.into_iter().map(|(o, _)| o).collect(), steps)
}

/// Measure the attached-vs-detached sweep, best-of-`reps` interleaved,
/// asserting outcome bit-identity (observation must never change results).
fn obs_overhead_bench(smoke: bool, reps: usize) -> ObsOverhead {
    let p = phases(smoke);
    let mut best_det = Duration::MAX;
    let mut best_att = Duration::MAX;
    let mut reference: Option<String> = None;
    for _ in 0..reps.max(1) {
        let (wall, (out, _)) = timed(0, || run_sweep_observed(p, false));
        best_det = best_det.min(wall);
        let fp = fingerprint(&out);
        let expected = reference.get_or_insert(fp.clone());
        assert_eq!(
            *expected, fp,
            "obs: detached outcomes diverged between reps"
        );

        let (wall, (out, steps)) = timed(0, || run_sweep_observed(p, true));
        best_att = best_att.min(wall);
        assert_eq!(
            *expected,
            fingerprint(&out),
            "obs: attaching a metrics registry changed simulation outcomes"
        );
        assert!(
            steps > 0,
            "obs: attached sweep collected no metrics — is the `trace` feature on?"
        );
    }
    let round = |x: f64| (x * 1000.0).round() / 1000.0;
    let det = best_det.as_secs_f64();
    let att = best_att.as_secs_f64();
    ObsOverhead {
        detached_wall_ms: round(det * 1e3),
        attached_wall_ms: round(att * 1e3),
        overhead_pct: ((att - det) / det.max(1e-12) * 100.0 * 100.0).round() / 100.0,
        identical_outcomes: true,
    }
}

/// Time `snapshot()` (allocating) vs `snapshot_into()` (buffer-reusing) on
/// a warmed system.
fn snapshot_microbench() -> SnapshotMicrobench {
    use bwpart_cmp::{CmpSystem, Snapshot};
    use bwpart_mc::Policy;

    let mix = fig1_mix();
    let (w, cc) = mix.build(1, SEED);
    let n = w.len();
    let mut sys = CmpSystem::new(&CmpConfig::default(), w, cc, Policy::fcfs(n));
    sys.run(10_000);

    const ITERS: u32 = 10_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(sys.snapshot());
    }
    let clone_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let mut snap = Snapshot::default();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        sys.snapshot_into(&mut snap);
        std::hint::black_box(&snap);
    }
    let reuse_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let round = |ns: f64| (ns * 10.0).round() / 10.0;
    SnapshotMicrobench {
        clone_ns_per_call: round(clone_ns),
        reuse_ns_per_call: round(reuse_ns),
    }
}

/// Run the full harness. `smoke` shrinks the cycle budgets ~10× for CI;
/// `reps` is the best-of-N count per mode.
pub fn run(smoke: bool, reps: usize) -> BenchReport {
    let p = phases(smoke);
    let per_run = p.warmup + p.profile + p.measure;
    let n_schemes = PartitionScheme::ENFORCED_SCHEMES.len() as u64;
    let threads = rayon::pool::current_num_threads();

    let cases = vec![
        bench_case("mix_end_to_end", per_run, reps, |ff| run_mix(ff, p)),
        bench_case("scheme_sweep", per_run * n_schemes, reps, |ff| {
            run_sweep(ff, p)
        }),
    ];

    BenchReport {
        schema: "bwpart-bench-sim/v1",
        smoke,
        threads,
        reps,
        cases,
        snapshot: snapshot_microbench(),
        obs: obs_overhead_bench(smoke, reps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_consistent() {
        let report = run(true, 1);
        assert_eq!(report.schema, "bwpart-bench-sim/v1");
        assert!(report.smoke);
        assert_eq!(report.cases.len(), 2);
        assert_eq!(report.cases[0].name, "mix_end_to_end");
        assert_eq!(report.cases[1].name, "scheme_sweep");
        for case in &report.cases {
            assert!(case.identical_outcomes);
            assert!(case.baseline.wall_ms > 0.0);
            assert!(case.optimized.wall_ms > 0.0);
            assert!(case.speedup > 0.0);
        }
        assert_eq!(
            report.cases[1].simulated_cycles,
            report.cases[0].simulated_cycles * 6
        );
        assert!(report.snapshot.clone_ns_per_call > 0.0);
        assert!(report.snapshot.reuse_ns_per_call > 0.0);
        assert!(report.obs.identical_outcomes);
        assert!(report.obs.detached_wall_ms > 0.0);
        assert!(report.obs.attached_wall_ms > 0.0);
        assert!(report.obs.overhead_pct.is_finite());
        // The report must round-trip through serde_json for BENCH_sim.json.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("scheme_sweep"));
    }
}
