//! Criterion bench crate; see benches/.
