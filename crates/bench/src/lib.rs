//! Benchmark harnesses for the bwpart workspace.
//!
//! Two kinds live here:
//!
//! * `benches/` — criterion microbenches, one per paper table/figure plus
//!   DRAM/simulator microbenches (`cargo bench -p bwpart-bench`).
//! * [`perf`] — the perf-regression harness behind `cargo xtask bench`,
//!   which times canonical workloads in seed mode vs the optimized default
//!   and writes `BENCH_sim.json`.
//! * [`serve_perf`] — the `bwpartd` service harness behind
//!   `cargo xtask bench-serve`: wire-protocol throughput/latency against a
//!   live loopback server plus epoch-decision latency in the bare engine;
//!   writes `BENCH_serve.json`.

pub mod perf;
pub mod serve_perf;
