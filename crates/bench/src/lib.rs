//! Benchmark harnesses for the bwpart workspace.
//!
//! Two kinds live here:
//!
//! * `benches/` — criterion microbenches, one per paper table/figure plus
//!   DRAM/simulator microbenches (`cargo bench -p bwpart-bench`).
//! * [`perf`] — the perf-regression harness behind `cargo xtask bench`,
//!   which times canonical workloads in seed mode vs the optimized default
//!   and writes `BENCH_sim.json`.

pub mod perf;
