//! Benchmark: Table III standalone profiling — a single benchmark and the
//! whole 16-benchmark sweep at reduced fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bwpart_cmp::{CmpConfig, PhaseConfig, Runner};
use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::table3;
use bwpart_workloads::BenchProfile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig::fast(),
    };
    let lbm = BenchProfile::by_name("lbm").unwrap();
    g.bench_function("lbm_alone", |b| {
        b.iter(|| runner.run_alone(lbm.spawn(1), lbm.core_config()))
    });
    g.bench_function("all_16_alone", |b| {
        b.iter(|| table3::run(&ExpConfig::fast()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
