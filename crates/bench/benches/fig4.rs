//! Benchmark: the Figure 4 scalability sweep (one mix, three bandwidth
//! points, 4→16 cores).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bwpart_experiments::fig4;
use bwpart_experiments::harness::ExpConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10).measurement_time(Duration::from_secs(40));
    g.bench_function("scaling_one_mix", |b| {
        b.iter(|| fig4::run_with_limit(&ExpConfig::fast(), 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
