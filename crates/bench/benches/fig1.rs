//! Benchmark: regenerate Figure 1 (motivation experiment) at reduced
//! fidelity. The full-fidelity run is `cargo run --release -p
//! bwpart-experiments --bin fig1`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bwpart_experiments::fig1;
use bwpart_experiments::harness::ExpConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("motivation_mix_5_schemes", |b| {
        b.iter(|| {
            let r = fig1::run(&ExpConfig::fast());
            assert!(r.normalized.len() == fig1::FIG1_SCHEMES.len());
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
