//! Benchmark: one representative heterogeneous mix through all seven
//! schemes (the Figure 2 inner loop). The full 14-mix grid is `cargo run
//! --release -p bwpart-experiments --bin fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bwpart_core::schemes::PartitionScheme;
use bwpart_experiments::harness::ExpConfig;
use bwpart_workloads::mixes;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10).measurement_time(Duration::from_secs(25));
    let cfg = ExpConfig::fast();
    let mix = mixes::hetero_mixes().remove(4); // the Figure 1/2 hetero-5 mix
    g.bench_function("hetero5_all_schemes", |b| {
        b.iter(|| cfg.run_schemes(&mix, &PartitionScheme::PAPER_SCHEMES))
    });
    g.bench_function("hetero5_one_scheme", |b| {
        b.iter(|| cfg.run_one(&mix, PartitionScheme::SquareRoot))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
