//! Benchmark: the Figure 3 QoS-guarantee pipeline on one mix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bwpart_experiments::fig3;
use bwpart_experiments::harness::ExpConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10).measurement_time(Duration::from_secs(30));
    g.bench_function("qos_two_mixes", |b| {
        b.iter(|| fig3::run(&ExpConfig::fast()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
