//! Microbenchmarks: DRAM engine throughput — how many transactions per
//! second the timing model sustains under streaming and random traffic,
//! and the cost of a probe.

use criterion::{criterion_group, criterion_main, Criterion};

use bwpart_dram::{DramConfig, DramSystem, MemTransaction};

fn drive(pattern: impl Fn(u64) -> u64, n: u64) -> u64 {
    let mut sys = DramSystem::new(DramConfig::ddr2_400());
    sys.set_app_count(4);
    let mut now = 40_000; // past the first refresh blackouts
    for i in 0..n {
        let txn = MemTransaction {
            app: (i % 4) as usize,
            addr: pattern(i),
            is_write: i % 5 == 0,
        };
        let p = sys.probe(&txn, now);
        let c = sys.issue(&txn, p.start.max(now));
        now = c.start_cycle;
    }
    now
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.bench_function("streaming_1k_txns", |b| {
        b.iter(|| drive(|i| (1 << 24) + i * 64, 1_000))
    });
    g.bench_function("random_1k_txns", |b| {
        b.iter(|| drive(|i| i.wrapping_mul(0x9E3779B97F4A7C15) & 0x3FFF_FFC0, 1_000))
    });
    g.bench_function("probe_only", |b| {
        let mut sys = DramSystem::new(DramConfig::ddr2_400());
        sys.set_app_count(4);
        let txn = MemTransaction {
            app: 0,
            addr: 0x123440,
            is_write: false,
        };
        b.iter(|| sys.probe(&txn, 40_000))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
