//! Microbenchmarks: the analytical model itself — share-vector
//! computation, the solvers, and forward prediction. These are the
//! operations a production memory controller's firmware would run every
//! repartitioning epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bwpart_core::prelude::*;
use bwpart_core::solver;

fn apps(n: usize) -> Vec<AppProfile> {
    (0..n)
        .map(|i| {
            AppProfile::new(
                format!("app{i}"),
                0.002 + 0.003 * (i % 7) as f64,
                0.0005 + 0.0009 * (i % 11) as f64,
            )
            .unwrap()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("schemes");
    for n in [4usize, 16, 64] {
        let a = apps(n);
        let b = 0.01 * (n as f64 / 4.0);
        g.bench_with_input(BenchmarkId::new("square_root_shares", n), &n, |bch, _| {
            bch.iter(|| PartitionScheme::SquareRoot.shares(&a, b).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("priority_apc_alloc", n), &n, |bch, _| {
            bch.iter(|| PartitionScheme::PriorityApc.allocation(&a, b).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("predict_all_metrics", n), &n, |bch, _| {
            bch.iter(|| {
                let p = predict::evaluate_scheme(&a, PartitionScheme::SquareRoot, b).unwrap();
                p.all_metrics()
            })
        });
        g.bench_with_input(BenchmarkId::new("qos_partition", n), &n, |bch, _| {
            let req = [QosRequest {
                app: 0,
                target_ipc: 0.25 * a[0].ipc_alone(),
            }];
            bch.iter(|| qos::partition(&a, &req, PartitionScheme::SquareRoot, b).unwrap())
        });
    }
    let a4 = apps(4);
    g.bench_function("water_fill_4", |bch| {
        let caps: Vec<f64> = a4.iter().map(|x| x.apc_alone).collect();
        let w: Vec<f64> = a4.iter().map(|x| x.apc_alone.sqrt()).collect();
        bch.iter(|| solver::water_fill(&w, &caps, 0.008))
    });
    g.bench_function("numeric_optimizer_4", |bch| {
        bch.iter(|| solver::maximize_on_simplex(4, |beta| beta.iter().map(|x| x.sqrt()).sum(), 50))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
