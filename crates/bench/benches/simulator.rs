//! Microbenchmarks: full-system simulation speed (cycles/second), cache
//! access cost and policy-pick cost — the numbers that size experiment
//! wall-clock budgets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use bwpart_cmp::cache::{Cache, CacheConfig};
use bwpart_cmp::{CmpConfig, CmpSystem};
use bwpart_mc::policy::Candidate;
use bwpart_mc::Policy;
use bwpart_workloads::mixes;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    let cycles = 200_000u64;
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("four_core_hetero_cycles", |b| {
        b.iter(|| {
            let mix = mixes::hetero_mixes().remove(4);
            let (w, cc) = mix.build(1, 42);
            let mut sys = CmpSystem::new(&CmpConfig::default(), w, cc, Policy::fcfs(4));
            sys.run(cycles);
            sys.snapshot()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("micro");
    g.bench_function("l2_cache_access", |b| {
        let mut cache = Cache::new(CacheConfig::l2());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            cache.access(i & 0xF_FFC0, i.is_multiple_of(4))
        })
    });
    g.bench_function("stf_pick_4apps", |b| {
        let mut policy = Policy::stf(vec![0.4, 0.3, 0.2, 0.1]);
        let cands: Vec<Candidate> = (0..4)
            .map(|app| Candidate {
                app,
                arrival: app as u64,
                issuable: true,
                row_hit: false,
                queue_len: 4,
            })
            .collect();
        b.iter(|| policy.pick(&cands))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
