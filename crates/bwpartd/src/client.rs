//! Typed client for the `bwpartd` wire protocol.
//!
//! One method per request type, sharing a single blocking TCP stream and
//! the same [`protocol`](crate::protocol) codec the server uses. Service
//! errors come back as [`ClientError::Service`] with their structured
//! [`ErrorCode`](crate::protocol::ErrorCode) intact, so callers can branch
//! on e.g. a QoS rejection without string-matching.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bwpart_mc::TelemetryDelta;

use crate::protocol::{
    self, CacheSpec, Codec, FrameError, MetricsReply, QosGrant, Request, Response, ServiceError,
    ServiceSnapshot, SharesReply,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as a frame.
    Frame(FrameError),
    /// The server answered with a structured error.
    Service(ServiceError),
    /// The server answered with the wrong response type for the request.
    UnexpectedReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::UnexpectedReply(got) => write!(f, "unexpected reply: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a `bwpartd` service.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    codec: Codec,
}

impl Client {
    /// Connect to the service at `addr` (anything `ToSocketAddrs`
    /// accepts, e.g. `"127.0.0.1:4780"` or a `SocketAddr`), speaking the
    /// default v1 JSON codec.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, Codec::Json)
    }

    /// Connect speaking a specific codec ([`Codec::Binary`] for the
    /// compact v2 framing). The server answers each request in the codec
    /// it arrived in, so no negotiation round-trip is needed.
    pub fn connect_with(
        addr: impl std::net::ToSocketAddrs,
        codec: Codec,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            codec,
        })
    }

    /// The codec this client frames its requests in.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Surrender the underlying socket (for load generators that pipeline
    /// raw frames instead of the one-in-flight call discipline). Any
    /// buffered reply bytes are discarded — only take the stream when no
    /// call is mid-flight.
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Bound how long calls wait for the server's reply.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Register (or re-register) this application; returns its id.
    pub fn register(&mut self, name: &str, api: f64) -> Result<usize, ClientError> {
        self.register_with_cache(name, api, None)
    }

    /// Register with a client-measured cache profile (sampled miss-ratio
    /// curve and CPI decomposition), enabling the application to take
    /// part in coordinated (bandwidth × LLC ways) solves.
    pub fn register_with_cache(
        &mut self,
        name: &str,
        api: f64,
        cache: Option<CacheSpec>,
    ) -> Result<usize, ClientError> {
        match self.call(&Request::Register {
            name: name.to_string(),
            api,
            cache,
        })? {
            Response::Registered { app_id } => Ok(app_id),
            other => Err(unexpected(other)),
        }
    }

    /// Report one telemetry delta; returns the epoch it will fold into.
    pub fn telemetry(&mut self, app_id: usize, delta: TelemetryDelta) -> Result<u64, ClientError> {
        match self.call(&Request::Telemetry {
            app_id,
            accesses: delta.accesses,
            shared_cycles: delta.shared_cycles,
            interference_cycles: delta.interference_cycles,
        })? {
            Response::TelemetryAck { epoch, .. } => Ok(epoch),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the published shares (`scheme = None`) or a what-if solve
    /// under another scheme (canonical kebab-case name).
    pub fn get_shares(&mut self, scheme: Option<&str>) -> Result<SharesReply, ClientError> {
        match self.call(&Request::GetShares {
            scheme: scheme.map(str::to_string),
        })? {
            Response::Shares(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch one tenant group's published shares (its own certified
    /// simplex over the full bandwidth), or a what-if solve for it.
    /// Only meaningful against a sharded service; on an unsharded one the
    /// single group is named `default`.
    pub fn group_shares(
        &mut self,
        group: &str,
        scheme: Option<&str>,
    ) -> Result<SharesReply, ClientError> {
        match self.call(&Request::GroupShares {
            group: group.to_string(),
            scheme: scheme.map(str::to_string),
        })? {
            Response::Shares(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Ask for an Eq. 11 QoS guarantee.
    pub fn qos_admit(&mut self, app_id: usize, ipc_target: f64) -> Result<QosGrant, ClientError> {
        match self.call(&Request::QosAdmit { app_id, ipc_target })? {
            Response::QosAdmitted(grant) => Ok(grant),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch service counters and per-application state.
    pub fn snapshot(&mut self) -> Result<ServiceSnapshot, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot(snap) => Ok(snap),
            other => Err(unexpected(other)),
        }
    }

    /// Fetch the service's observability metrics (Prometheus text plus
    /// the typed snapshot).
    pub fn metrics(&mut self) -> Result<MetricsReply, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Stop the service.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Send one request and read exactly one response.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = protocol::encode_with(req, self.codec)?;
        self.stream.write_all(&frame)?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((resp, used)) = protocol::decode::<Response>(&self.buf)? {
                self.buf.drain(..used);
                if let Response::Error(e) = resp {
                    return Err(ClientError::Service(e));
                }
                return Ok(resp);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection mid-reply",
                    )))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::UnexpectedReply(format!("{resp:?}"))
}
