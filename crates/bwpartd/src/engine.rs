//! The epoch engine: fold telemetry, re-estimate, re-partition, publish.
//!
//! This is the service's brain, deliberately free of any networking so it
//! can be driven deterministically in tests. Each call to
//! [`Engine::run_epoch`] performs one Section IV-C cycle:
//!
//! 1. **Fold** — drain every application's bounded telemetry queue into a
//!    [`DeltaAccumulator`] and form the epoch's raw Eq. 12–13 `APC_alone`
//!    estimate.
//! 2. **Smooth** — blend the raw estimate into the application's running
//!    estimate with an EWMA, unless the jump is large enough to be a
//!    *phase change*, in which case the estimate snaps to the new value so
//!    the partition tracks the phase instead of averaging across it.
//! 3. **Solve** — recompute the partition with the configured
//!    [`PartitionScheme`] (honouring Eq. 11 QoS reservations when
//!    applications have been admitted), certify the result with the model
//!    contracts, and publish it — unless **hysteresis** judges the change
//!    too small to be worth disturbing the enforcement mechanism.
//!
//! Degradation is explicit: an all-idle epoch keeps the previous estimates
//! and shares; a failed solve keeps the last-good shares and marks the
//! reply `degraded` until a solve succeeds again.

use std::collections::VecDeque;
use std::time::Instant;

use bwpart_core::prelude::*;
use bwpart_core::{contracts, ensures_capped, ensures_simplex, qos};
use bwpart_mc::{DeltaAccumulator, TelemetryDelta};
use bwpart_obs::{Counter, Gauge, Histogram, Registry};

use crate::protocol::{
    AppShare, AppStatus, CacheSpec, ErrorCode, MetricsReply, QosGrant, ResourceShare, ServiceError,
    ServiceSnapshot, SharesReply,
};

/// Tuning knobs for the epoch engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheme used for the epoch repartition (and as the best-effort
    /// scheme under QoS reservations).
    pub scheme: PartitionScheme,
    /// Total off-chip bandwidth `B` to partition, in APC units.
    pub bandwidth: f64,
    /// EWMA weight of the *new* epoch estimate in `[0, 1]`; `1` disables
    /// smoothing entirely.
    pub ewma_alpha: f64,
    /// Minimum `max_i |Δβ_i|` that justifies republishing; smaller changes
    /// are held (the enforcement mechanism keeps its current partition).
    pub hysteresis: f64,
    /// Relative jump in an application's raw estimate that is treated as a
    /// phase change: `|new − old| / old > phase_change_ratio` snaps the
    /// estimate to `new` instead of smoothing toward it.
    pub phase_change_ratio: f64,
    /// Floor on `T_cyc,alone` as a fraction of the reported window
    /// (mirrors [`bwpart_mc::ApcProfiler`]).
    pub min_alone_fraction: f64,
    /// Telemetry deltas buffered per application between epochs; the
    /// oldest are shed when a client reports faster than epochs run.
    pub queue_capacity: usize,
    /// Total shared-LLC ways the service may partition. Required (and
    /// only used) when `scheme` is [`PartitionScheme::Coordinated`]; the
    /// bandwidth-only schemes ignore it.
    pub total_ways: Option<usize>,
}

impl Default for EngineConfig {
    /// Square_root partitioning of the paper's Mix-1 bandwidth
    /// (`B = 0.0095` APC) with moderate smoothing.
    fn default() -> Self {
        EngineConfig {
            scheme: PartitionScheme::SquareRoot,
            bandwidth: 0.0095,
            ewma_alpha: 0.5,
            hysteresis: 0.002,
            phase_change_ratio: 0.5,
            min_alone_fraction: 0.02,
            queue_capacity: 1024,
            total_ways: None,
        }
    }
}

impl EngineConfig {
    /// Config with the given scheme and bandwidth, defaults elsewhere.
    pub fn new(scheme: PartitionScheme, bandwidth: f64) -> Self {
        EngineConfig {
            scheme,
            bandwidth,
            ..EngineConfig::default()
        }
    }

    /// Validate the numeric fields, returning a structured error for the
    /// first violation.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |what: &str, v: f64| {
            Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                format!("invalid {what}: {v}"),
            ))
        };
        if !(self.bandwidth.is_finite() && self.bandwidth > 0.0) {
            return bad("bandwidth", self.bandwidth);
        }
        if !(self.ewma_alpha.is_finite() && self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return bad("ewma_alpha", self.ewma_alpha);
        }
        if !(self.hysteresis.is_finite() && self.hysteresis >= 0.0) {
            return bad("hysteresis", self.hysteresis);
        }
        if !(self.phase_change_ratio.is_finite() && self.phase_change_ratio > 0.0) {
            return bad("phase_change_ratio", self.phase_change_ratio);
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity", 0.0);
        }
        if matches!(self.scheme, PartitionScheme::Coordinated) && self.total_ways.is_none() {
            return Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                "coordinated scheme requires total_ways",
            ));
        }
        if self.total_ways == Some(0) {
            return bad("total_ways", 0.0);
        }
        Ok(())
    }
}

/// What one [`Engine::run_epoch`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    /// New shares were computed, certified, and published.
    Repartitioned,
    /// The solve succeeded but the change was below the hysteresis
    /// threshold; the previous shares stand.
    Held,
    /// No application reported any cycles; estimates and shares are
    /// untouched.
    Idle,
    /// The solve failed; last-good shares remain published and replies are
    /// marked degraded until a solve succeeds.
    Failed,
}

/// Per-application engine state.
#[derive(Debug, Clone)]
struct AppState {
    name: String,
    api: f64,
    queue: VecDeque<TelemetryDelta>,
    shed: u64,
    /// Smoothed `APC_alone` estimate; `None` until the first non-idle
    /// epoch mentions this application.
    estimate: Option<f64>,
    qos_target: Option<f64>,
    /// Fitted cache-aware profile, present when the client registered a
    /// [`CacheSpec`]; required for coordinated solves.
    cache: Option<CacheAwareProfile>,
    /// LLC ways most recently *published* for this application; the
    /// calibration anchor for the next coordinated solve (`None` until
    /// the first coordinated publish — the fair split is assumed).
    ways: Option<usize>,
    /// Pre-resolved `bwpartd_app_share{app="<name>"}` gauge, resolved
    /// once at registration so the per-epoch publish never resolves
    /// through the registry (and its internal table lock) while the
    /// server holds the engine mutex.
    share_gauge: Gauge,
}

/// Pre-resolved handles for every metric the epoch path touches. The
/// server calls [`Engine::run_epoch`] and [`Engine::push_telemetry`] with
/// the `engine` mutex held; resolving a metric by name goes through the
/// registry's internal `table` lock, so per-epoch resolution would nest
/// that lock under `engine` on every epoch (workspace lock-order rule
/// A4). Resolving once at construction keeps the epoch path down to
/// plain atomic updates.
#[derive(Debug)]
struct EpochMetrics {
    /// `bwpartd_epochs_total`.
    epochs: Counter,
    /// `bwpartd_repartitions_total`.
    repartitions: Counter,
    /// `bwpartd_held_epochs_total`.
    held: Counter,
    /// `bwpartd_idle_epochs_total`.
    idle: Counter,
    /// `bwpartd_failed_epochs_total`.
    failed: Counter,
    /// `bwpartd_degraded_transitions_total`.
    degraded_transitions: Counter,
    /// `bwpartd_degraded` (0/1).
    degraded: Gauge,
    /// `bwpartd_telemetry_shed_total`.
    telemetry_shed: Counter,
}

impl EpochMetrics {
    fn resolve(registry: &Registry) -> Self {
        EpochMetrics {
            epochs: registry.counter("bwpartd_epochs_total"),
            repartitions: registry.counter("bwpartd_repartitions_total"),
            held: registry.counter("bwpartd_held_epochs_total"),
            idle: registry.counter("bwpartd_idle_epochs_total"),
            failed: registry.counter("bwpartd_failed_epochs_total"),
            degraded_transitions: registry.counter("bwpartd_degraded_transitions_total"),
            degraded: registry.gauge("bwpartd_degraded"),
            telemetry_shed: registry.counter("bwpartd_telemetry_shed_total"),
        }
    }
}

/// The deterministic, network-free service core. The TCP layer
/// ([`crate::server`]) wraps one `Engine` in a mutex; tests drive it
/// directly.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    apps: Vec<AppState>,
    epoch: u64,
    published: Option<SharesReply>,
    repartitions: u64,
    held_epochs: u64,
    idle_epochs: u64,
    failed_epochs: u64,
    phase_changes: u64,
    degraded: bool,
    /// Observability registry: every service counter/gauge/histogram lives
    /// here and is served verbatim by [`Engine::metrics`]. The engine is
    /// cold-path code (one call per epoch), so it uses the registry
    /// directly — lint rule R9's macro-only discipline applies to the
    /// per-cycle simulator loops, not here.
    registry: Registry,
    /// Pre-resolved epoch-decision latency histogram
    /// (`bwpartd_epoch_latency_seconds`).
    epoch_latency: Histogram,
    /// Pre-resolved counters/gauges for the epoch path (see
    /// [`EpochMetrics`]).
    epoch_metrics: EpochMetrics,
}

impl Engine {
    /// Build an engine; fails on nonsensical configuration.
    pub fn new(cfg: EngineConfig) -> Result<Self, ServiceError> {
        Engine::with_registry(cfg, Registry::new())
    }

    /// Build an engine publishing into an existing registry. Cloned
    /// registries share their metric cells, so the per-tenant engines of a
    /// [`ShardMap`] aggregate into one set of service counters for free
    /// (`bwpartd_epochs_total` counts every tenant's epochs, etc.); the
    /// `bwpartd_degraded` gauge is last-writer-wins across tenants — use
    /// [`ShardMap::snapshot`]'s `degraded` (any tenant) for the aggregate.
    pub fn with_registry(cfg: EngineConfig, registry: Registry) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let epoch_latency = registry.histogram("bwpartd_epoch_latency_seconds");
        let epoch_metrics = EpochMetrics::resolve(&registry);
        Ok(Engine {
            cfg,
            apps: Vec::new(),
            epoch: 0,
            published: None,
            repartitions: 0,
            held_epochs: 0,
            idle_epochs: 0,
            failed_epochs: 0,
            phase_changes: 0,
            degraded: false,
            registry,
            epoch_latency,
            epoch_metrics,
        })
    }

    /// The engine's observability registry (shared handles; cloning a
    /// metric elsewhere observes the same cells).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The service metrics in both machine-readable forms (the payload of
    /// the wire protocol's `Metrics` request).
    pub fn metrics(&self) -> MetricsReply {
        let snapshot = self.registry.snapshot();
        MetricsReply {
            epoch: self.epoch,
            prometheus: snapshot.render_prometheus(),
            snapshot,
        }
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current epoch number (epochs completed so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register an application by name. Idempotent: a known name gets its
    /// existing id back (with `api` refreshed); a new name is appended.
    pub fn register(&mut self, name: &str, api: f64) -> Result<usize, ServiceError> {
        self.register_with_cache(name, api, None)
    }

    /// Register with an optional client-measured [`CacheSpec`], fitted
    /// here into a [`CacheAwareProfile`] (re-registering refreshes both
    /// `api` and the cache profile; `None` clears it).
    pub fn register_with_cache(
        &mut self,
        name: &str,
        api: f64,
        cache: Option<CacheSpec>,
    ) -> Result<usize, ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                "application name must be non-empty",
            ));
        }
        if !(api.is_finite() && api > 0.0) {
            return Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                format!("invalid api: {api} (must be finite and positive)"),
            ));
        }
        let cache = cache.map(|spec| fit_cache_spec(name, &spec)).transpose()?;
        if let Some(id) = self.apps.iter().position(|a| a.name == name) {
            self.apps[id].api = api;
            self.apps[id].cache = cache;
            return Ok(id);
        }
        self.apps.push(AppState {
            name: name.to_string(),
            api,
            queue: VecDeque::new(),
            shed: 0,
            estimate: None,
            qos_target: None,
            cache,
            ways: None,
            // Once per registration, not per epoch (see `EpochMetrics`).
            share_gauge: self
                .registry
                .gauge(&format!("bwpartd_app_share{{app=\"{name}\"}}")),
        });
        Ok(self.apps.len() - 1)
    }

    /// Queue one telemetry delta for the next epoch. The queue is bounded:
    /// when full, the *oldest* delta is shed (newest data wins) and the
    /// shed counter ticks — backpressure never blocks and never errors.
    /// Returns the epoch the delta will be folded into.
    pub fn push_telemetry(
        &mut self,
        app_id: usize,
        delta: TelemetryDelta,
    ) -> Result<u64, ServiceError> {
        let cap = self.cfg.queue_capacity;
        let app = self.app_mut(app_id)?;
        let mut shed = false;
        if app.queue.len() >= cap {
            app.queue.pop_front();
            app.shed += 1;
            shed = true;
        }
        app.queue.push_back(delta);
        if shed {
            self.epoch_metrics.telemetry_shed.inc();
        }
        Ok(self.epoch + 1)
    }

    /// Eq. 11 admission control. Admits the application (recording its
    /// target for every subsequent epoch solve) only if the target is
    /// reachable (`IPC_target ≤ IPC_alone`) and the total reservation
    /// `Σ IPC_target,i × API_i` still fits inside `B`. A rejection is a
    /// structured error and leaves all previously admitted applications
    /// untouched.
    pub fn qos_admit(&mut self, app_id: usize, ipc_target: f64) -> Result<QosGrant, ServiceError> {
        if !(ipc_target.is_finite() && ipc_target > 0.0) {
            return Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                format!("invalid ipc_target: {ipc_target}"),
            ));
        }
        let b = self.cfg.bandwidth;
        let app = self.app(app_id)?;
        let Some(apc_alone) = app.estimate else {
            return Err(ServiceError::new(
                ErrorCode::NotReady,
                format!(
                    "no APC_alone estimate for `{}` yet; send telemetry and wait an epoch",
                    app.name
                ),
            ));
        };
        // Eq. 1: IPC_alone = APC_alone / API.
        let ipc_alone = apc_alone / app.api;
        if ipc_target > ipc_alone {
            return Err(ServiceError::new(
                ErrorCode::QosUnreachable,
                format!(
                    "target IPC {ipc_target} exceeds `{}`'s standalone IPC {ipc_alone:.6}",
                    app.name
                ),
            ));
        }
        // Eq. 11 reservation, checked against B together with every
        // already-admitted application's reservation.
        let reserve = ipc_target * app.api;
        let existing: f64 = self
            .apps
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != app_id)
            .filter_map(|(_, a)| a.qos_target.map(|t| t * a.api))
            .sum();
        let total = existing + reserve;
        if !contracts::approx_le(total, b, contracts::TOLERANCE) {
            return Err(ServiceError::new(
                ErrorCode::QosInfeasible,
                format!(
                    "reserving {reserve:.6} APC would bring QoS reservations to {total:.6}, \
                     exceeding B = {b:.6} (Eq. 11)"
                ),
            ));
        }
        self.app_mut(app_id)?.qos_target = Some(ipc_target);
        Ok(QosGrant {
            app_id,
            reserved_apc: reserve,
            remaining_apc: b - total,
        })
    }

    /// Run one epoch: fold queued telemetry, refresh estimates, re-solve,
    /// and (subject to hysteresis) publish. Also records the epoch's
    /// decision latency and outcome counters into the metrics registry.
    pub fn run_epoch(&mut self) -> EpochOutcome {
        let t0 = Instant::now();
        let was_degraded = self.degraded;
        let outcome = self.run_epoch_inner();
        self.epoch_latency.record(t0.elapsed().as_secs_f64());
        // Pre-resolved handles only from here down: the server calls
        // run_epoch with the engine mutex held, and resolving through the
        // registry would take its internal table lock under that guard
        // (workspace lock-order rule A4) — as well as paying a hash
        // lookup per metric per epoch.
        self.epoch_metrics.epochs.inc();
        match outcome {
            EpochOutcome::Repartitioned => self.epoch_metrics.repartitions.inc(),
            EpochOutcome::Held => self.epoch_metrics.held.inc(),
            EpochOutcome::Idle => self.epoch_metrics.idle.inc(),
            EpochOutcome::Failed => self.epoch_metrics.failed.inc(),
        }
        if self.degraded != was_degraded {
            self.epoch_metrics.degraded_transitions.inc();
        }
        self.epoch_metrics
            .degraded
            .set(if self.degraded { 1.0 } else { 0.0 });
        if let Some(p) = &self.published {
            for a in &p.apps {
                // Published replies only ever name registered apps; the
                // linear scan is over the (small) service population.
                if let Some(state) = self.apps.iter().find(|s| s.name == a.name) {
                    state.share_gauge.set(a.beta);
                }
            }
        }
        outcome
    }

    fn run_epoch_inner(&mut self) -> EpochOutcome {
        self.epoch += 1;
        let frac = self.cfg.min_alone_fraction;
        let alpha = self.cfg.ewma_alpha;
        let snap_ratio = self.cfg.phase_change_ratio;

        let mut any_signal = false;
        let mut phase_changes = 0u64;
        for app in &mut self.apps {
            let mut acc = DeltaAccumulator::new();
            for d in app.queue.drain(..) {
                acc.fold(d);
            }
            let Some(raw) = acc.apc_alone(frac) else {
                continue; // idle this epoch: keep the previous estimate
            };
            any_signal = true;
            app.estimate = Some(match app.estimate {
                None => raw,
                Some(old) => {
                    // Relative jump beyond the ratio is a phase change:
                    // snap so the partition tracks the new phase instead
                    // of averaging across the boundary.
                    if old > 0.0 && ((raw - old).abs() / old) > snap_ratio {
                        phase_changes += 1;
                        raw
                    } else {
                        alpha * raw + (1.0 - alpha) * old
                    }
                }
            });
        }
        self.phase_changes += phase_changes;

        if !any_signal {
            self.idle_epochs += 1;
            return EpochOutcome::Idle;
        }

        match self.solve_current() {
            Ok(mut reply) => {
                self.degraded = false;
                // The reply was assembled while the previous epoch's
                // degraded flag was still set; a successful solve clears
                // it for the reply being published too.
                reply.degraded = false;
                if let Some(prev) = &self.published {
                    let delta = max_share_delta(prev, &reply);
                    if delta < self.cfg.hysteresis {
                        self.held_epochs += 1;
                        // Clear any stale degraded flag on the held reply.
                        if let Some(p) = &mut self.published {
                            p.degraded = false;
                        }
                        return EpochOutcome::Held;
                    }
                }
                self.published = Some(reply);
                self.note_published_ways();
                self.repartitions += 1;
                EpochOutcome::Repartitioned
            }
            Err(_) => {
                self.failed_epochs += 1;
                self.degraded = true;
                // Last-good fallback: keep serving the previous shares,
                // flagged degraded so clients can tell.
                if let Some(p) = &mut self.published {
                    p.degraded = true;
                }
                EpochOutcome::Failed
            }
        }
    }

    /// The currently published shares (epoch-consistent: identical for
    /// every caller between two repartitions).
    pub fn get_shares(&self) -> Result<SharesReply, ServiceError> {
        self.published.clone().ok_or_else(|| {
            ServiceError::new(
                ErrorCode::NotReady,
                "no shares published yet; send telemetry and wait an epoch",
            )
        })
    }

    /// What-if solve under a different scheme using the current estimates.
    /// Bypasses QoS reservations (it answers "what would `scheme` give?",
    /// not "what will be enforced") and does not touch published state.
    pub fn solve_with(&self, scheme: PartitionScheme) -> Result<SharesReply, ServiceError> {
        if scheme == PartitionScheme::Coordinated {
            return self.solve_coordinated_current(false);
        }
        let (ids, profiles) = self.profiled_apps();
        if profiles.is_empty() {
            return Err(ServiceError::new(
                ErrorCode::NotReady,
                "no application has an APC_alone estimate yet",
            ));
        }
        let outcome = scheme
            .solve(&profiles, self.cfg.bandwidth)
            .map_err(|e| ServiceError::new(ErrorCode::SolveFailed, e.to_string()))?;
        Ok(self.assemble_reply(&ids, outcome))
    }

    /// Service counters and per-application state.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            epoch: self.epoch,
            scheme: self.cfg.scheme.canonical_name(),
            bandwidth: self.cfg.bandwidth,
            repartitions: self.repartitions,
            held_epochs: self.held_epochs,
            idle_epochs: self.idle_epochs,
            failed_epochs: self.failed_epochs,
            phase_changes: self.phase_changes,
            telemetry_shed_total: self.apps.iter().map(|a| a.shed).sum(),
            degraded: self.degraded,
            shards: 1,
            groups: Vec::new(),
            apps: self
                .apps
                .iter()
                .enumerate()
                .map(|(id, a)| AppStatus {
                    app_id: id,
                    name: a.name.clone(),
                    api: a.api,
                    apc_alone_estimate: a.estimate,
                    qos_target: a.qos_target,
                    queued: a.queue.len(),
                    shed: a.shed,
                    llc_ways: a.ways,
                })
                .collect(),
        }
    }

    // -- internals ---------------------------------------------------------

    /// Fold the just-published coordinated way counts back into per-app
    /// state: they are the calibration anchor for the next epoch's solve
    /// (what the enforcement mechanism is now giving each application).
    fn note_published_ways(&mut self) {
        let Some(p) = &self.published else { return };
        let published: Vec<(usize, usize)> = p
            .apps
            .iter()
            .filter_map(|row| {
                let rs = row.resources.as_ref()?;
                let w = rs.iter().find(|r| r.kind == "llc-ways")?;
                Some((row.app_id, w.amount.round() as usize))
            })
            .collect();
        for (id, w) in published {
            if let Some(a) = self.apps.get_mut(id) {
                a.ways = Some(w);
            }
        }
    }

    fn app(&self, app_id: usize) -> Result<&AppState, ServiceError> {
        self.apps.get(app_id).ok_or_else(|| unknown_app(app_id))
    }

    fn app_mut(&mut self, app_id: usize) -> Result<&mut AppState, ServiceError> {
        self.apps.get_mut(app_id).ok_or_else(|| unknown_app(app_id))
    }

    /// Applications with a usable (positive) estimate, as model profiles,
    /// plus their engine ids.
    fn profiled_apps(&self) -> (Vec<usize>, Vec<AppProfile>) {
        let mut ids = Vec::new();
        let mut profiles = Vec::new();
        for (id, a) in self.apps.iter().enumerate() {
            let Some(est) = a.estimate else { continue };
            let Ok(p) = AppProfile::new(a.name.clone(), a.api, est) else {
                continue; // zero-rate estimate: nothing to allocate to
            };
            ids.push(id);
            profiles.push(p);
        }
        (ids, profiles)
    }

    /// Solve for the configured scheme with QoS reservations and certify
    /// the result. The share vector this produces is the service's public
    /// contract, so it is certified here (simplex + caps) even though the
    /// underlying solvers certify too — the remap from solver indices back
    /// to engine ids is exactly the step a bug would hide in.
    fn solve_current(&self) -> Result<SharesReply, ServiceError> {
        if self.cfg.scheme == PartitionScheme::Coordinated {
            return self.solve_coordinated_current(true);
        }
        let (ids, profiles) = self.profiled_apps();
        if profiles.is_empty() {
            return Err(ServiceError::new(
                ErrorCode::NotReady,
                "no application has an APC_alone estimate yet",
            ));
        }
        let b = self.cfg.bandwidth;
        let requests: Vec<qos::QosRequest> = ids
            .iter()
            .enumerate()
            .filter_map(|(solver_idx, &id)| {
                self.apps[id].qos_target.map(|t| qos::QosRequest {
                    app: solver_idx,
                    target_ipc: t,
                })
            })
            .collect();

        let outcome = if requests.is_empty() {
            self.cfg
                .scheme
                .solve(&profiles, b)
                .map_err(|e| ServiceError::new(ErrorCode::SolveFailed, e.to_string()))?
        } else {
            let part = qos::partition(&profiles, &requests, self.cfg.scheme, b)
                .map_err(|e| ServiceError::new(ErrorCode::SolveFailed, e.to_string()))?;
            SharesOutcome {
                scheme: self.cfg.scheme.canonical_name(),
                bandwidth: b,
                beta: part.shares(),
                allocation: part.allocation,
            }
        };

        // Certify the published contract (debug builds / CI with
        // debug-assertions): β on the simplex, allocation within each
        // application's standalone cap.
        ensures_simplex!(outcome.beta);
        let caps: Vec<f64> = profiles.iter().map(|p| p.apc_alone).collect();
        ensures_capped!(outcome.allocation, caps);

        Ok(self.assemble_reply(&ids, outcome))
    }

    /// The coordinated (bandwidth × LLC ways) epoch solve. Every profiled
    /// application must have registered a [`CacheSpec`]; the analytic
    /// `APC_alone(w)` of each fitted profile is calibrated so it matches
    /// the Eq. 12–13 telemetry estimate at the currently enforced way
    /// count, then [`solve_coordinated_scaled`] runs the alternating
    /// descent. QoS reservations (when honoured) re-split the bandwidth
    /// dimension at the solved way vector through Eq. 11.
    fn solve_coordinated_current(&self, honour_qos: bool) -> Result<SharesReply, ServiceError> {
        let total_ways = self.cfg.total_ways.ok_or_else(|| {
            ServiceError::new(
                ErrorCode::SolveFailed,
                "coordinated solve requires total_ways in the engine config",
            )
        })?;
        let b = self.cfg.bandwidth;

        let mut ids = Vec::new();
        let mut caches: Vec<CacheAwareProfile> = Vec::new();
        let mut estimates = Vec::new();
        for (id, a) in self.apps.iter().enumerate() {
            let Some(est) = a.estimate else { continue };
            if !(est.is_finite() && est > 0.0) {
                continue; // zero-rate estimate: nothing to allocate to
            }
            let Some(cache) = &a.cache else {
                return Err(ServiceError::new(
                    ErrorCode::SolveFailed,
                    format!(
                        "`{}` has telemetry but no cache spec; \
                         coordinated solves need every application's MRC",
                        a.name
                    ),
                ));
            };
            ids.push(id);
            caches.push(cache.clone());
            estimates.push(est);
        }
        if ids.is_empty() {
            return Err(ServiceError::new(
                ErrorCode::NotReady,
                "no application has an APC_alone estimate yet",
            ));
        }
        let n = ids.len();

        // Calibrate: the telemetry estimate reflects the ways currently
        // enforced (last published coordinated split, or the fair split
        // before any publish), so the model is scaled to agree there and
        // extrapolated along the MRC everywhere else.
        let fair = (total_ways / n).max(1);
        let scales: Vec<f64> = ids
            .iter()
            .zip(&caches)
            .zip(&estimates)
            .map(|((&id, cache), &est)| {
                let anchor = self.apps[id].ways.unwrap_or(fair) as f64;
                let model = cache.apc_alone_at(anchor);
                if model > 0.0 && (est / model).is_finite() {
                    (est / model).max(1e-6)
                } else {
                    1.0
                }
            })
            .collect();

        let coord_cfg = CoordConfig::new(b, total_ways);
        let coord = solve_coordinated_scaled(&caches, &scales, &coord_cfg)
            .map_err(|e| ServiceError::new(ErrorCode::SolveFailed, e.to_string()))?;

        let requests: Vec<qos::QosRequest> = if honour_qos {
            ids.iter()
                .enumerate()
                .filter_map(|(solver_idx, &id)| {
                    self.apps[id].qos_target.map(|t| qos::QosRequest {
                        app: solver_idx,
                        target_ipc: t,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let scheme = PartitionScheme::Coordinated.canonical_name();
        let outcome = if requests.is_empty() {
            SharesOutcome {
                scheme,
                bandwidth: b,
                beta: coord.bandwidth.beta.clone(),
                allocation: coord.bandwidth.allocation.clone(),
            }
        } else {
            // QoS applies to the bandwidth dimension: Eq. 11 reservations
            // over the profiles materialized at the coordinated ways.
            let part = qos::partition(&coord.profiles, &requests, coord_cfg.inner, b)
                .map_err(|e| ServiceError::new(ErrorCode::SolveFailed, e.to_string()))?;
            SharesOutcome {
                scheme,
                bandwidth: b,
                beta: part.shares(),
                allocation: part.allocation,
            }
        };

        // Certify the published contract per resource: the bandwidth β on
        // the simplex and capped by the calibrated standalone rates, the
        // way shares on the simplex and each count within the LLC.
        ensures_simplex!(outcome.beta);
        let caps: Vec<f64> = coord.profiles.iter().map(|p| p.apc_alone).collect();
        ensures_capped!(outcome.allocation, caps);
        let way_shares: Vec<f64> = coord
            .ways
            .iter()
            .map(|&w| w as f64 / total_ways as f64)
            .collect();
        ensures_simplex!(way_shares);
        let ways_f: Vec<f64> = coord.ways.iter().map(|&w| w as f64).collect();
        ensures_capped!(ways_f, vec![total_ways as f64; n]);

        Ok(self.assemble_reply_with_ways(&ids, outcome, Some((&coord.ways, total_ways))))
    }

    /// Expand a solver outcome (indexed over profiled apps) into a reply
    /// covering every registered application (unprofiled ones get 0).
    fn assemble_reply(&self, ids: &[usize], outcome: SharesOutcome) -> SharesReply {
        self.assemble_reply_with_ways(ids, outcome, None)
    }

    /// As [`Engine::assemble_reply`], additionally attaching a
    /// per-resource breakdown (`bandwidth` + `llc-ways`) to each solved
    /// row when a coordinated way vector is present.
    fn assemble_reply_with_ways(
        &self,
        ids: &[usize],
        outcome: SharesOutcome,
        ways: Option<(&[usize], usize)>,
    ) -> SharesReply {
        let mut apps: Vec<AppShare> = self
            .apps
            .iter()
            .enumerate()
            .map(|(id, a)| AppShare {
                app_id: id,
                name: a.name.clone(),
                beta: 0.0,
                allocation: 0.0,
                resources: None,
            })
            .collect();
        for (solver_idx, &id) in ids.iter().enumerate() {
            apps[id].beta = outcome.beta[solver_idx];
            apps[id].allocation = outcome.allocation[solver_idx];
            if let Some((ways, total)) = ways {
                let w = ways[solver_idx];
                apps[id].resources = Some(vec![
                    ResourceShare {
                        kind: "bandwidth".into(),
                        share: outcome.beta[solver_idx],
                        amount: outcome.allocation[solver_idx],
                    },
                    ResourceShare {
                        kind: "llc-ways".into(),
                        share: w as f64 / total as f64,
                        amount: w as f64,
                    },
                ]);
            }
        }
        SharesReply {
            epoch: self.epoch,
            outcome,
            apps,
            degraded: self.degraded,
        }
    }
}

fn unknown_app(app_id: usize) -> ServiceError {
    ServiceError::new(
        ErrorCode::UnknownApp,
        format!("no application with id {app_id}; register first"),
    )
}

/// Fit a wire [`CacheSpec`] into the model's cache-aware profile,
/// translating model validation errors into structured service errors (a
/// bad spec is the *client's* mistake, so it surfaces at registration,
/// not as a failed epoch later).
fn fit_cache_spec(name: &str, spec: &CacheSpec) -> Result<CacheAwareProfile, ServiceError> {
    let bad = |e: ModelError| {
        ServiceError::new(
            ErrorCode::InvalidArgument,
            format!("cache spec for `{name}`: {e}"),
        )
    };
    let samples: Vec<(f64, f64)> = spec.mrc.iter().map(|p| (p.ways, p.miss_ratio)).collect();
    let mrc = MissRatioCurve::fit(&samples).map_err(bad)?;
    CacheAwareProfile::new(name, spec.api_llc, spec.cpi_base, spec.mem_penalty, mrc).map_err(bad)
}

// ---------------------------------------------------------------------------
// Tenant sharding
// ---------------------------------------------------------------------------

/// The tenant group of an application name: the prefix before the first
/// `/`, or `"default"` for unprefixed names. `lbm` and `hmmer` share the
/// default group; `acme/lbm` and `acme/web` form group `acme`.
pub fn tenant_of(name: &str) -> &str {
    match name.split_once('/') {
        Some((group, _)) if !group.is_empty() => group,
        _ => "default",
    }
}

/// FNV-1a over the tenant name: stable across runs (no hasher
/// randomization), so an app always lands on the same shard.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One tenant group's independent epoch engine.
#[derive(Debug)]
struct TenantCell {
    group: String,
    engine: Engine,
}

/// One shard: the tenants hashed here plus the id directory that maps
/// this shard's registration sequence numbers to `(tenant, local id)`.
#[derive(Debug, Default)]
struct Shard {
    tenants: Vec<TenantCell>,
    dir: Vec<(usize, usize)>,
}

/// `N` independent groups of epoch engines behind `N` locks.
///
/// Tenant groups (see [`tenant_of`]) hash to shards by FNV-1a, and each
/// group gets its *own* [`Engine`] — its own telemetry queues, QoS
/// reservations, hysteresis state, and epoch counter — so one tenant's
/// burst cannot delay another's repartition decision, and two shards'
/// epochs run concurrently on the reactor's workers. Every solve is still
/// certified per-engine (`ensures_simplex!` / `ensures_capped!` in
/// [`Engine::run_epoch`]); each group partitions the full configured
/// bandwidth `B` independently, modelling separate enforcement domains.
///
/// Public application ids interleave shards (`id = seq × shards + shard`)
/// so a `ShardMap` with one shard and unprefixed names hands out exactly
/// the sequential ids the unsharded engine did.
///
/// All methods take `&self`; shards are locked one at a time via
/// [`ShardMap::lock_shard`] and never nested, so cross-shard aggregation
/// cannot deadlock regardless of traversal order.
// The engine resolves metrics through the registry's internal table lock
// at registration time, under the shard lock.
// lint: lock-order: shard < table
#[derive(Debug)]
pub struct ShardMap {
    cfg: EngineConfig,
    registry: Registry,
    shards: Vec<std::sync::Mutex<Shard>>,
}

impl ShardMap {
    /// A map of `shards` independent engine groups (clamped to ≥ 1);
    /// fails on a nonsensical engine configuration.
    pub fn new(cfg: EngineConfig, shards: usize) -> Result<Self, ServiceError> {
        cfg.validate()?;
        let registry = Registry::new();
        // Touch the epoch-path metrics once so an idle service still
        // exposes zero-valued counters (and so does a sharded one).
        let _ = EpochMetrics::resolve(&registry);
        let _ = registry.histogram("bwpartd_epoch_latency_seconds");
        Ok(ShardMap {
            cfg,
            registry,
            shards: (0..shards.max(1)).map(|_| Default::default()).collect(),
        })
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration every tenant engine is built from.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The shared observability registry (all tenant engines publish into
    /// it; see [`Engine::with_registry`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Lock shard `idx`. The single choke point for shard locking so the
    /// lock-order table has one name for it; recovers from poisoning the
    /// same way the server's engine lock does (a panicked epoch must not
    /// take the service down).
    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[idx]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn shard_of(&self, group: &str) -> usize {
        (fnv1a(group) % self.shards.len() as u64) as usize
    }

    /// Split a public id into `(shard, seq)`.
    fn locate(&self, app_id: usize) -> (usize, usize) {
        (app_id % self.shards.len(), app_id / self.shards.len())
    }

    /// Public id of this shard's `seq`-th registration.
    fn public_id(&self, shard: usize, seq: usize) -> usize {
        seq * self.shards.len() + shard
    }

    /// Register an application, creating its tenant group's engine on
    /// first sight. Idempotent like [`Engine::register`]: a known name
    /// returns its existing public id.
    pub fn register(&self, name: &str, api: f64) -> Result<usize, ServiceError> {
        self.register_with_cache(name, api, None)
    }

    /// Register with an optional cache profile (see
    /// [`Engine::register_with_cache`]).
    pub fn register_with_cache(
        &self,
        name: &str,
        api: f64,
        cache: Option<CacheSpec>,
    ) -> Result<usize, ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::new(
                ErrorCode::InvalidArgument,
                "application name must be non-empty",
            ));
        }
        let group = tenant_of(name);
        let shard_idx = self.shard_of(group);
        let mut shard = self.lock_shard(shard_idx);
        let tenant = match shard.tenants.iter().position(|t| t.group == group) {
            Some(t) => t,
            None => {
                let engine = Engine::with_registry(self.cfg.clone(), self.registry.clone())?;
                shard.tenants.push(TenantCell {
                    group: group.to_string(),
                    engine,
                });
                shard.tenants.len() - 1
            }
        };
        let local = shard.tenants[tenant]
            .engine
            .register_with_cache(name, api, cache)?;
        if let Some(seq) = shard.dir.iter().position(|&e| e == (tenant, local)) {
            return Ok(self.public_id(shard_idx, seq));
        }
        shard.dir.push((tenant, local));
        Ok(self.public_id(shard_idx, shard.dir.len() - 1))
    }

    /// Look up a public id inside its (already locked) shard.
    fn entry(shard: &Shard, seq: usize, app_id: usize) -> Result<(usize, usize), ServiceError> {
        shard
            .dir
            .get(seq)
            .copied()
            .ok_or_else(|| unknown_app(app_id))
    }

    /// Queue one telemetry delta; returns the epoch of the application's
    /// *group* engine that will fold it (groups tick independently).
    pub fn push_telemetry(
        &self,
        app_id: usize,
        delta: TelemetryDelta,
    ) -> Result<u64, ServiceError> {
        let (shard_idx, seq) = self.locate(app_id);
        let mut shard = self.lock_shard(shard_idx);
        let (tenant, local) = Self::entry(&shard, seq, app_id)?;
        shard.tenants[tenant].engine.push_telemetry(local, delta)
    }

    /// Eq. 11 admission against the application's group engine (each
    /// group reserves out of its own bandwidth `B`).
    pub fn qos_admit(&self, app_id: usize, ipc_target: f64) -> Result<QosGrant, ServiceError> {
        let (shard_idx, seq) = self.locate(app_id);
        let mut shard = self.lock_shard(shard_idx);
        let (tenant, local) = Self::entry(&shard, seq, app_id)?;
        let grant = shard.tenants[tenant].engine.qos_admit(local, ipc_target)?;
        Ok(QosGrant { app_id, ..grant })
    }

    /// Run one epoch on every tenant engine of shard `idx` (the reactor
    /// assigns shards to workers, so epochs tick concurrently across
    /// shards while staying serialized within one).
    pub fn run_shard_epochs(&self, idx: usize) -> EpochOutcome {
        let mut shard = self.lock_shard(idx);
        let mut agg = EpochOutcome::Idle;
        for cell in &mut shard.tenants {
            agg = combine_outcomes(agg, cell.engine.run_epoch());
        }
        agg
    }

    /// Run one epoch on every tenant engine of every shard, locking the
    /// shards one at a time. Returns the aggregate outcome
    /// (Repartitioned ≻ Failed ≻ Held ≻ Idle), the identity for a single
    /// engine.
    pub fn run_epochs(&self) -> EpochOutcome {
        let mut agg = EpochOutcome::Idle;
        for idx in 0..self.shards.len() {
            agg = combine_outcomes(agg, self.run_shard_epochs(idx));
        }
        agg
    }

    /// The published shares of every group, concatenated in public-id
    /// order. Each group's rows come from its own certified simplex, so
    /// in the aggregate reply `β` sums to the number of *published*
    /// groups, not 1 — per-group replies ([`ShardMap::group_shares`])
    /// preserve the single-simplex contract. `epoch` is the maximum group
    /// epoch and `degraded` is true if *any* group is degraded. Errors
    /// with `NotReady` only when no group has published anything.
    pub fn get_shares(&self) -> Result<SharesReply, ServiceError> {
        self.collect_shares(|engine| engine.get_shares())
    }

    /// What-if aggregate: every group re-solved under `scheme` (see
    /// [`Engine::solve_with`]; bypasses QoS, does not touch published
    /// state).
    pub fn solve_with(&self, scheme: PartitionScheme) -> Result<SharesReply, ServiceError> {
        self.collect_shares(|engine| engine.solve_with(scheme))
    }

    /// One group's shares, exactly as its engine published them (a single
    /// certified simplex) with public ids substituted; `scheme` asks for
    /// a what-if solve instead of the published allocation.
    pub fn group_shares(
        &self,
        group: &str,
        scheme: Option<PartitionScheme>,
    ) -> Result<SharesReply, ServiceError> {
        let shard_idx = self.shard_of(group);
        let shard = self.lock_shard(shard_idx);
        let Some(tenant) = shard.tenants.iter().position(|t| t.group == group) else {
            return Err(ServiceError::new(
                ErrorCode::UnknownApp,
                format!("no tenant group `{group}`; register an application in it first"),
            ));
        };
        let engine = &shard.tenants[tenant].engine;
        let mut reply = match scheme {
            Some(s) => engine.solve_with(s)?,
            None => engine.get_shares()?,
        };
        for row in &mut reply.apps {
            row.app_id = self.resolve_public(&shard, shard_idx, tenant, row.app_id);
        }
        Ok(reply)
    }

    /// Aggregate service counters and per-application state across every
    /// group: counters are summed, `epoch` is the maximum group epoch,
    /// rows are in public-id order, and `groups` lists the tenant groups
    /// alphabetically.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let mut agg = ServiceSnapshot {
            epoch: 0,
            scheme: self.cfg.scheme.canonical_name(),
            bandwidth: self.cfg.bandwidth,
            repartitions: 0,
            held_epochs: 0,
            idle_epochs: 0,
            failed_epochs: 0,
            phase_changes: 0,
            telemetry_shed_total: 0,
            degraded: false,
            shards: self.shards.len(),
            groups: Vec::new(),
            apps: Vec::new(),
        };
        let mut rows: Vec<AppStatus> = Vec::new();
        for shard_idx in 0..self.shards.len() {
            let shard = self.lock_shard(shard_idx);
            for (tenant, cell) in shard.tenants.iter().enumerate() {
                let snap = cell.engine.snapshot();
                agg.epoch = agg.epoch.max(snap.epoch);
                agg.repartitions += snap.repartitions;
                agg.held_epochs += snap.held_epochs;
                agg.idle_epochs += snap.idle_epochs;
                agg.failed_epochs += snap.failed_epochs;
                agg.phase_changes += snap.phase_changes;
                agg.telemetry_shed_total += snap.telemetry_shed_total;
                agg.degraded |= snap.degraded;
                agg.groups.push(cell.group.clone());
                for mut row in snap.apps {
                    row.app_id = self.resolve_public(&shard, shard_idx, tenant, row.app_id);
                    rows.push(row);
                }
            }
        }
        rows.sort_by_key(|r| r.app_id);
        agg.apps = rows;
        agg.groups.sort();
        agg
    }

    /// The shared metrics registry in both machine-readable forms;
    /// `epoch` is the maximum group epoch (like [`ShardMap::snapshot`]).
    pub fn metrics(&self) -> MetricsReply {
        // Collect the epoch *before* snapshotting so the registry's table
        // lock is never taken while a shard lock is held.
        let mut epoch = 0;
        for idx in 0..self.shards.len() {
            let shard = self.lock_shard(idx);
            for cell in &shard.tenants {
                epoch = epoch.max(cell.engine.epoch());
            }
        }
        let snapshot = self.registry.snapshot();
        MetricsReply {
            epoch,
            prometheus: snapshot.render_prometheus(),
            snapshot,
        }
    }

    /// Public id of `(tenant, local)` within an already locked shard.
    /// Registered rows always have a directory entry; a missing one would
    /// be an internal inconsistency, reported as the row's local id
    /// rather than a panic.
    fn resolve_public(
        &self,
        shard: &Shard,
        shard_idx: usize,
        tenant: usize,
        local: usize,
    ) -> usize {
        shard
            .dir
            .iter()
            .position(|&e| e == (tenant, local))
            .map(|seq| self.public_id(shard_idx, seq))
            .unwrap_or(local)
    }

    /// Shared shape of [`ShardMap::get_shares`] / [`ShardMap::solve_with`]:
    /// apply `per_engine` to every tenant engine, substitute public ids,
    /// and concatenate in public-id order.
    fn collect_shares(
        &self,
        per_engine: impl Fn(&Engine) -> Result<SharesReply, ServiceError>,
    ) -> Result<SharesReply, ServiceError> {
        let mut rows: Vec<AppShare> = Vec::new();
        let mut epoch = 0u64;
        let mut degraded = false;
        let mut published_groups = 0usize;
        let mut last_err = None;
        // The per-engine replies all carry the same scheme (every group
        // engine shares this config, and a what-if solve passes one scheme
        // to all of them) — keep it rather than assuming the configured
        // one, so what-if aggregates answer under the asked-for scheme.
        let mut scheme = self.cfg.scheme.canonical_name();
        for shard_idx in 0..self.shards.len() {
            // lint: allow(A4): the reported cycle goes through the
            // name-based call graph conflating `Engine::solve_with`
            // (called by `group_shares` on a *tenant engine*, no shard
            // lock inside) with `ShardMap::solve_with`; no caller of
            // collect_shares holds a shard lock.
            let shard = self.lock_shard(shard_idx);
            for (tenant, cell) in shard.tenants.iter().enumerate() {
                match per_engine(&cell.engine) {
                    Ok(reply) => {
                        published_groups += 1;
                        epoch = epoch.max(reply.epoch);
                        degraded |= reply.degraded;
                        scheme = reply.outcome.scheme;
                        for mut row in reply.apps {
                            row.app_id = self.resolve_public(&shard, shard_idx, tenant, row.app_id);
                            rows.push(row);
                        }
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        if published_groups == 0 {
            return Err(last_err.unwrap_or_else(|| {
                ServiceError::new(
                    ErrorCode::NotReady,
                    "no shares published yet; send telemetry and wait an epoch",
                )
            }));
        }
        rows.sort_by_key(|r| r.app_id);
        Ok(SharesReply {
            epoch,
            outcome: SharesOutcome {
                scheme,
                bandwidth: self.cfg.bandwidth,
                beta: rows.iter().map(|r| r.beta).collect(),
                allocation: rows.iter().map(|r| r.allocation).collect(),
            },
            apps: rows,
            degraded,
        })
    }
}

/// Aggregate two epoch outcomes: a repartition anywhere dominates (shares
/// changed), then a failure anywhere (something is degraded), then a hold
/// (a solve ran), then idle. Identity: `combine(Idle, x) = x`.
fn combine_outcomes(a: EpochOutcome, b: EpochOutcome) -> EpochOutcome {
    let rank = |o: EpochOutcome| match o {
        EpochOutcome::Repartitioned => 3,
        EpochOutcome::Failed => 2,
        EpochOutcome::Held => 1,
        EpochOutcome::Idle => 0,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Largest per-application `|Δβ|` between two replies, matching rows by
/// app id. A changed application set always counts as a full change.
fn max_share_delta(prev: &SharesReply, next: &SharesReply) -> f64 {
    if prev.apps.len() != next.apps.len() {
        return f64::INFINITY;
    }
    prev.apps
        .iter()
        .zip(&next.apps)
        .map(|(p, n)| (p.beta - n.beta).abs().max(resource_delta(p, n)))
        .fold(0.0, f64::max)
}

/// Largest per-resource share change between two rows of the same app
/// (0 when neither row carries a resource breakdown; ∞ when the shape
/// changed, so hysteresis can never mask a way reallocation).
fn resource_delta(prev: &AppShare, next: &AppShare) -> f64 {
    match (&prev.resources, &next.resources) {
        (None, None) => 0.0,
        (Some(p), Some(n)) => {
            let mut delta = 0.0f64;
            for nr in n {
                match p.iter().find(|pr| pr.kind == nr.kind) {
                    Some(pr) => delta = delta.max((pr.share - nr.share).abs()),
                    None => return f64::INFINITY,
                }
            }
            delta
        }
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A delta whose Eq. 12 estimate is exactly `apc_alone` (no
    /// interference, one mega-cycle window).
    fn clean_delta(apc_alone: f64) -> TelemetryDelta {
        let cycles = 1_000_000u64;
        TelemetryDelta {
            accesses: (apc_alone * cycles as f64) as u64,
            shared_cycles: cycles,
            interference_cycles: 0,
        }
    }

    fn four_app_engine() -> (Engine, Vec<usize>) {
        let mut e = Engine::new(EngineConfig::default()).unwrap();
        let ids = vec![
            e.register("lbm", 0.00939).unwrap(),
            e.register("libquantum", 0.00692).unwrap(),
            e.register("omnetpp", 0.00519).unwrap(),
            e.register("hmmer", 0.00529).unwrap(),
        ];
        (e, ids)
    }

    const ALONE: [f64; 4] = [0.0531, 0.0341, 0.0306, 0.0046];

    fn feed_epoch(e: &mut Engine, ids: &[usize]) {
        for (&id, &apc) in ids.iter().zip(&ALONE) {
            e.push_telemetry(id, clean_delta(apc)).unwrap();
        }
    }

    #[test]
    fn register_is_idempotent_by_name() {
        let mut e = Engine::new(EngineConfig::default()).unwrap();
        let a = e.register("milc", 0.01).unwrap();
        let b = e.register("milc", 0.02).unwrap();
        assert_eq!(a, b);
        assert!((e.snapshot().apps[a].api - 0.02).abs() < 1e-15);
        assert!(e.register("", 0.01).is_err());
        assert!(e.register("x", f64::NAN).is_err());
    }

    #[test]
    fn epoch_converges_to_offline_solution() {
        let (mut e, ids) = four_app_engine();
        assert_eq!(e.run_epoch(), EpochOutcome::Idle);

        feed_epoch(&mut e, &ids);
        assert_eq!(e.run_epoch(), EpochOutcome::Repartitioned);
        let reply = e.get_shares().unwrap();
        assert!(!reply.degraded);

        // Offline closed-form reference on the true profiles.
        let profiles: Vec<AppProfile> = ids
            .iter()
            .zip(&ALONE)
            .map(|(&id, &apc)| {
                let st = e.snapshot();
                AppProfile::new(st.apps[id].name.clone(), st.apps[id].api, apc).unwrap()
            })
            .collect();
        let offline = PartitionScheme::SquareRoot
            .solve(&profiles, e.config().bandwidth)
            .unwrap();
        for (got, want) in reply.outcome.beta.iter().zip(&offline.beta) {
            assert!(
                (got - want).abs() / want < 0.02,
                "beta {got} vs offline {want}"
            );
        }
    }

    #[test]
    fn hysteresis_holds_tiny_changes() {
        let (mut e, ids) = four_app_engine();
        feed_epoch(&mut e, &ids);
        assert_eq!(e.run_epoch(), EpochOutcome::Repartitioned);
        let first = e.get_shares().unwrap();

        // Same telemetry again → same estimates → max|Δβ| = 0 < hysteresis.
        feed_epoch(&mut e, &ids);
        assert_eq!(e.run_epoch(), EpochOutcome::Held);
        let second = e.get_shares().unwrap();
        assert_eq!(first, second, "held epoch must serve the identical reply");
    }

    #[test]
    fn phase_change_snaps_instead_of_smoothing() {
        let (mut e, ids) = four_app_engine();
        feed_epoch(&mut e, &ids);
        e.run_epoch();

        // lbm triples its standalone rate: a >50% jump must snap.
        e.push_telemetry(ids[0], clean_delta(ALONE[0] * 3.0))
            .unwrap();
        for (&id, &apc) in ids.iter().zip(&ALONE).skip(1) {
            e.push_telemetry(id, clean_delta(apc)).unwrap();
        }
        e.run_epoch();
        let st = e.snapshot();
        assert_eq!(st.phase_changes, 1);
        let est = st.apps[ids[0]].apc_alone_estimate.unwrap();
        assert!(
            (est - ALONE[0] * 3.0).abs() / (ALONE[0] * 3.0) < 0.01,
            "estimate {est} should have snapped to {}",
            ALONE[0] * 3.0
        );
    }

    #[test]
    fn idle_epoch_keeps_last_shares() {
        let (mut e, ids) = four_app_engine();
        feed_epoch(&mut e, &ids);
        e.run_epoch();
        let before = e.get_shares().unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Idle);
        assert_eq!(e.get_shares().unwrap(), before);
        assert_eq!(e.snapshot().idle_epochs, 1);
    }

    #[test]
    fn bounded_queue_sheds_oldest() {
        let cfg = EngineConfig {
            queue_capacity: 4,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg).unwrap();
        let id = e.register("burst", 0.01).unwrap();
        for _ in 0..10 {
            e.push_telemetry(id, clean_delta(0.02)).unwrap();
        }
        let st = e.snapshot();
        assert_eq!(st.apps[id].queued, 4);
        assert_eq!(st.apps[id].shed, 6);
    }

    #[test]
    fn qos_admission_and_structured_rejection() {
        let (mut e, ids) = four_app_engine();
        // No estimate yet → NotReady.
        assert_eq!(
            e.qos_admit(ids[3], 0.5).unwrap_err().code,
            ErrorCode::NotReady
        );

        feed_epoch(&mut e, &ids);
        e.run_epoch();

        // hmmer: IPC_alone = 0.0046 / 0.00529 ≈ 0.8696.
        let grant = e.qos_admit(ids[3], 0.6).unwrap();
        assert!((grant.reserved_apc - 0.6 * 0.00529).abs() < 1e-9);

        // Unreachable target (above standalone IPC) → QosUnreachable.
        assert_eq!(
            e.qos_admit(ids[3], 2.0).unwrap_err().code,
            ErrorCode::QosUnreachable
        );

        // Infeasible: omnetpp asking for enough to blow the budget.
        // IPC_alone(omnetpp) ≈ 0.0306/0.00519 ≈ 5.896; a target of 1.4
        // needs 0.007266 APC, and 0.007266 + 0.003174 > B = 0.0095.
        let before = e.snapshot();
        let err = e.qos_admit(ids[2], 1.4).unwrap_err();
        assert_eq!(err.code, ErrorCode::QosInfeasible);
        // The rejection must not disturb admitted state.
        let after = e.snapshot();
        assert_eq!(before.apps, after.apps);

        // Unknown app id → UnknownApp.
        assert_eq!(
            e.qos_admit(99, 0.1).unwrap_err().code,
            ErrorCode::UnknownApp
        );

        // The next epoch honours the admitted reservation exactly (Eq. 11).
        feed_epoch(&mut e, &ids);
        e.run_epoch();
        let reply = e.get_shares().unwrap();
        assert!((reply.apps[ids[3]].allocation - 0.6 * 0.00529).abs() < 1e-6);
    }

    #[test]
    fn all_idle_engine_never_publishes_nan() {
        // Regression companion to the profiler-level all-idle test: an
        // engine fed only empty/zero telemetry must stay NotReady (never
        // publish NaN shares).
        let mut e = Engine::new(EngineConfig::default()).unwrap();
        let id = e.register("ghost", 0.01).unwrap();
        e.push_telemetry(id, TelemetryDelta::default()).unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Idle);
        assert_eq!(e.get_shares().unwrap_err().code, ErrorCode::NotReady);

        // Cycles but zero accesses: a live-but-silent app solves to a zero
        // rate, which is excluded rather than folded into a NaN β.
        e.push_telemetry(
            id,
            TelemetryDelta {
                accesses: 0,
                shared_cycles: 1_000,
                interference_cycles: 0,
            },
        )
        .unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Failed);
        assert_eq!(e.get_shares().unwrap_err().code, ErrorCode::NotReady);
        assert_eq!(e.snapshot().failed_epochs, 1);
    }

    #[test]
    fn what_if_solve_does_not_touch_published_state() {
        let (mut e, ids) = four_app_engine();
        feed_epoch(&mut e, &ids);
        e.run_epoch();
        let published = e.get_shares().unwrap();
        let whatif = e.solve_with(PartitionScheme::Proportional).unwrap();
        assert_eq!(whatif.outcome.scheme, "proportional");
        assert_ne!(whatif.outcome.beta, published.outcome.beta);
        assert_eq!(e.get_shares().unwrap(), published);
    }

    #[test]
    fn metrics_track_epochs_sheds_and_shares() {
        let cfg = EngineConfig {
            queue_capacity: 2,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg).unwrap();
        let ids = [
            e.register("lbm", 0.00939).unwrap(),
            e.register("hmmer", 0.00529).unwrap(),
        ];
        // Overflow one queue: 5 pushes into capacity 2 shed 3.
        for _ in 0..5 {
            e.push_telemetry(ids[0], clean_delta(0.05)).unwrap();
        }
        e.push_telemetry(ids[1], clean_delta(0.005)).unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Repartitioned);
        assert_eq!(e.run_epoch(), EpochOutcome::Idle);

        let m = e.metrics();
        assert_eq!(m.epoch, 2);
        let counter = |name: &str| {
            m.snapshot
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert_eq!(counter("bwpartd_epochs_total"), 2);
        assert_eq!(counter("bwpartd_repartitions_total"), 1);
        assert_eq!(counter("bwpartd_idle_epochs_total"), 1);
        assert_eq!(counter("bwpartd_telemetry_shed_total"), 3);
        // Snapshot mirrors the aggregate shed count.
        assert_eq!(e.snapshot().telemetry_shed_total, 3);
        // Epoch latency was sampled once per epoch.
        let lat = m
            .snapshot
            .histograms
            .iter()
            .find(|h| h.name == "bwpartd_epoch_latency_seconds")
            .expect("latency histogram registered");
        assert_eq!(lat.count, 2);
        // Per-app share gauges exist for both registered apps.
        assert!(m.prometheus.contains("bwpartd_app_share{app=\"lbm\"}"));
        assert!(m.prometheus.contains("bwpartd_app_share{app=\"hmmer\"}"));
    }

    #[test]
    fn degraded_transitions_are_counted_once_per_flip() {
        let mut e = Engine::new(EngineConfig::default()).unwrap();
        let id = e.register("silent", 0.01).unwrap();
        let zero_rate = TelemetryDelta {
            accesses: 0,
            shared_cycles: 1_000,
            interference_cycles: 0,
        };
        // Two consecutive failing epochs: one transition, not two.
        for _ in 0..2 {
            e.push_telemetry(id, zero_rate).unwrap();
            assert_eq!(e.run_epoch(), EpochOutcome::Failed);
        }
        // Recovery: a real estimate flips degraded back off.
        e.push_telemetry(id, clean_delta(0.02)).unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Repartitioned);
        let m = e.metrics();
        let flips = m
            .snapshot
            .counters
            .iter()
            .find(|c| c.name == "bwpartd_degraded_transitions_total")
            .map(|c| c.value);
        assert_eq!(flips, Some(2), "off→on and on→off");
    }

    #[test]
    fn tenant_of_splits_on_first_slash() {
        assert_eq!(tenant_of("lbm"), "default");
        assert_eq!(tenant_of("acme/lbm"), "acme");
        assert_eq!(tenant_of("acme/a/b"), "acme");
        assert_eq!(tenant_of("/weird"), "default");
    }

    #[test]
    fn single_shard_default_group_matches_unsharded_engine() {
        // A one-shard map with unprefixed names is the legacy service:
        // sequential ids and byte-identical share rows.
        let map = ShardMap::new(EngineConfig::default(), 1).unwrap();
        let (mut engine, _) = four_app_engine();
        let names = [
            ("lbm", 0.00939),
            ("libquantum", 0.00692),
            ("omnetpp", 0.00519),
            ("hmmer", 0.00529),
        ];
        for (i, (name, api)) in names.iter().enumerate() {
            assert_eq!(map.register(name, *api).unwrap(), i);
        }
        // Idempotent re-registration returns the same public id.
        assert_eq!(map.register("lbm", 0.00939).unwrap(), 0);

        for (id, &apc) in ALONE.iter().enumerate() {
            map.push_telemetry(id, clean_delta(apc)).unwrap();
            engine.push_telemetry(id, clean_delta(apc)).unwrap();
        }
        assert_eq!(map.run_epochs(), EpochOutcome::Repartitioned);
        assert_eq!(engine.run_epoch(), EpochOutcome::Repartitioned);

        let sharded = map.get_shares().unwrap();
        let plain = engine.get_shares().unwrap();
        assert_eq!(sharded.apps, plain.apps);
        assert_eq!(sharded.epoch, plain.epoch);
        assert_eq!(sharded.outcome.beta, plain.outcome.beta);

        let snap = map.snapshot();
        assert_eq!(snap.shards, 1);
        assert_eq!(snap.groups, vec!["default".to_string()]);
        assert_eq!(snap.apps.len(), 4);
    }

    #[test]
    fn groups_partition_independently() {
        let map = ShardMap::new(EngineConfig::default(), 4).unwrap();
        let a0 = map.register("acme/lbm", 0.00939).unwrap();
        let a1 = map.register("acme/libquantum", 0.00692).unwrap();
        let b0 = map.register("globex/omnetpp", 0.00519).unwrap();
        let b1 = map.register("globex/hmmer", 0.00529).unwrap();
        let ids = [a0, a1, b0, b1];
        // Public ids are distinct and decode back to their shard.
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "public ids must be unique: {ids:?}");

        for (&id, &apc) in ids.iter().zip(&ALONE) {
            map.push_telemetry(id, clean_delta(apc)).unwrap();
        }
        assert_eq!(map.run_epochs(), EpochOutcome::Repartitioned);

        // Each group is its own certified simplex over the full B.
        for group in ["acme", "globex"] {
            let reply = map.group_shares(group, None).unwrap();
            assert_eq!(reply.apps.len(), 2, "{group} rows");
            let total: f64 = reply.outcome.beta.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{group} β sums to {total}");
            assert!(!reply.degraded);
        }
        // Unknown group is a structured error, not a panic.
        assert_eq!(
            map.group_shares("initech", None).unwrap_err().code,
            ErrorCode::UnknownApp
        );

        // The aggregate view concatenates both simplexes in id order.
        let all = map.get_shares().unwrap();
        assert_eq!(all.apps.len(), 4);
        let total: f64 = all.outcome.beta.iter().sum();
        assert!((total - 2.0).abs() < 1e-9, "two groups → β sums to {total}");
        let row_ids: Vec<usize> = all.apps.iter().map(|r| r.app_id).collect();
        assert_eq!(row_ids, sorted, "rows must be in public-id order");

        // One group going degraded does not touch the other. Zero-rate
        // deltas snap BOTH acme estimates to zero (|0 − old|/old = 1 >
        // phase_change_ratio), leaving acme's solve nothing to allocate.
        for id in [a0, a1] {
            map.push_telemetry(
                id,
                TelemetryDelta {
                    accesses: 0,
                    shared_cycles: 1_000,
                    interference_cycles: 0,
                },
            )
            .unwrap();
        }
        // globex idle this epoch; acme's zero-rate solve fails.
        assert_eq!(map.run_epochs(), EpochOutcome::Failed);
        assert!(map.group_shares("acme", None).unwrap().degraded);
        assert!(!map.group_shares("globex", None).unwrap().degraded);
        let snap = map.snapshot();
        assert!(snap.degraded);
        assert_eq!(snap.shards, 4);
        assert_eq!(snap.groups, vec!["acme".to_string(), "globex".to_string()]);
        assert_eq!(snap.failed_epochs, 1);

        // QoS admission is per-group: both groups can reserve out of
        // their own full B.
        map.push_telemetry(b1, clean_delta(ALONE[3])).unwrap();
        map.run_epochs();
        let grant = map.qos_admit(b1, 0.6).unwrap();
        assert_eq!(grant.app_id, b1);
        assert!((grant.reserved_apc - 0.6 * 0.00529).abs() < 1e-9);
        assert_eq!(
            map.qos_admit(999, 0.1).unwrap_err().code,
            ErrorCode::UnknownApp
        );
    }

    #[test]
    fn shared_registry_aggregates_group_metrics() {
        let map = ShardMap::new(EngineConfig::default(), 2).unwrap();
        let a = map.register("acme/lbm", 0.00939).unwrap();
        let b = map.register("globex/hmmer", 0.00529).unwrap();
        map.push_telemetry(a, clean_delta(ALONE[0])).unwrap();
        map.push_telemetry(b, clean_delta(ALONE[3])).unwrap();
        map.run_epochs();
        let m = map.metrics();
        let counter = |name: &str| {
            m.snapshot
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        // Both tenant engines ticked once into the shared counter.
        assert_eq!(counter("bwpartd_epochs_total"), 2);
        assert_eq!(counter("bwpartd_repartitions_total"), 2);
        assert!(m.prometheus.contains("bwpartd_app_share{app=\"acme/lbm\"}"));
        assert!(m
            .prometheus
            .contains("bwpartd_app_share{app=\"globex/hmmer\"}"));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let base = EngineConfig::default;
        assert!(Engine::new(EngineConfig {
            bandwidth: -1.0,
            ..base()
        })
        .is_err());
        assert!(Engine::new(EngineConfig {
            ewma_alpha: 0.0,
            ..base()
        })
        .is_err());
        assert!(Engine::new(EngineConfig {
            queue_capacity: 0,
            ..base()
        })
        .is_err());
        // The coordinated scheme cannot run without an LLC to partition.
        assert!(Engine::new(EngineConfig {
            scheme: PartitionScheme::Coordinated,
            ..base()
        })
        .is_err());
        assert!(Engine::new(EngineConfig {
            total_ways: Some(0),
            ..base()
        })
        .is_err());
    }

    // -- coordinated (bandwidth × LLC ways) epochs --------------------------

    use crate::protocol::MrcPoint;

    /// A latency-sensitive app: steep MRC, big per-miss stall.
    fn steep_spec() -> CacheSpec {
        CacheSpec {
            api_llc: 0.05,
            cpi_base: 1.0,
            mem_penalty: 60.0,
            mrc: [
                (1.0, 0.95),
                (4.0, 0.70),
                (8.0, 0.40),
                (12.0, 0.10),
                (16.0, 0.03),
            ]
            .into_iter()
            .map(|(ways, miss_ratio)| MrcPoint { ways, miss_ratio })
            .collect(),
        }
    }

    /// A streaming app: the LLC barely helps regardless of ways.
    fn flat_spec() -> CacheSpec {
        CacheSpec {
            api_llc: 0.02,
            cpi_base: 1.2,
            mem_penalty: 40.0,
            mrc: [(1.0, 1.0), (16.0, 0.98)]
                .into_iter()
                .map(|(ways, miss_ratio)| MrcPoint { ways, miss_ratio })
                .collect(),
        }
    }

    /// The engine-side fit of a wire spec, for building offline references.
    fn fitted(name: &str, spec: &CacheSpec) -> CacheAwareProfile {
        fit_cache_spec(name, spec).unwrap()
    }

    fn coordinated_engine() -> (Engine, [usize; 2], Vec<CacheAwareProfile>) {
        let cfg = EngineConfig {
            total_ways: Some(16),
            ..EngineConfig::new(PartitionScheme::Coordinated, 0.0095)
        };
        let mut e = Engine::new(cfg).unwrap();
        let specs = [steep_spec(), flat_spec()];
        let ids = [
            e.register_with_cache("llcfit", 0.002, Some(specs[0].clone()))
                .unwrap(),
            e.register_with_cache("stream", 0.02, Some(specs[1].clone()))
                .unwrap(),
        ];
        let caches = vec![fitted("llcfit", &specs[0]), fitted("stream", &specs[1])];
        (e, ids, caches)
    }

    /// The ISSUE's acceptance criterion: telemetry-driven coordinated
    /// epochs converge to within 2% of the offline
    /// [`solve_coordinated`] answer. Each epoch the emulated system
    /// reports the model's standalone rate *at the ways the service
    /// currently enforces*, so the calibration loop (estimate ÷ model at
    /// the anchor) has a consistent fixed point to find.
    #[test]
    fn coordinated_epochs_converge_to_offline_solve() {
        let (mut e, ids, caches) = coordinated_engine();
        let offline = solve_coordinated(&caches, &CoordConfig::new(0.0095, 16)).unwrap();
        assert!(
            offline.ways[0] > offline.ways[1],
            "the steep-MRC app must win ways offline: {:?}",
            offline.ways
        );

        // Before any coordinated publish the fair split is enforced.
        let mut enforced = [8usize, 8];
        for _ in 0..6 {
            for ((&id, cache), &w) in ids.iter().zip(&caches).zip(&enforced) {
                e.push_telemetry(id, clean_delta(cache.apc_alone_at(w as f64)))
                    .unwrap();
            }
            e.run_epoch();
            let snap = e.snapshot();
            for (slot, &id) in enforced.iter_mut().zip(&ids) {
                if let Some(w) = snap.apps[id].llc_ways {
                    *slot = w;
                }
            }
        }

        let reply = e.get_shares().unwrap();
        assert!(!reply.degraded);
        assert_eq!(reply.outcome.scheme, "coordinated");
        let ways: Vec<usize> = ids
            .iter()
            .map(|&id| {
                let rs = reply.apps[id].resources.as_ref().expect("resource rows");
                rs.iter()
                    .find(|r| r.kind == "llc-ways")
                    .expect("llc-ways row")
                    .amount
                    .round() as usize
            })
            .collect();
        assert_eq!(ways, offline.ways, "way allocation must match offline");
        for (&id, want) in ids.iter().zip(&offline.bandwidth.beta) {
            let got = reply.apps[id].beta;
            assert!(
                (got - want).abs() / want < 0.02,
                "beta {got} vs offline {want}"
            );
        }
        // The snapshot reports the enforced ways per app.
        let snap = e.snapshot();
        for (&id, &w) in ids.iter().zip(&offline.ways) {
            assert_eq!(snap.apps[id].llc_ways, Some(w));
        }
    }

    /// Coordinated solves need every profiled application's MRC; a
    /// missing spec degrades the epoch instead of publishing nonsense.
    #[test]
    fn coordinated_epoch_fails_without_cache_specs() {
        let cfg = EngineConfig {
            total_ways: Some(16),
            ..EngineConfig::new(PartitionScheme::Coordinated, 0.0095)
        };
        let mut e = Engine::new(cfg).unwrap();
        let a = e
            .register_with_cache("llcfit", 0.002, Some(steep_spec()))
            .unwrap();
        let b = e.register("legacy", 0.02).unwrap();
        e.push_telemetry(a, clean_delta(0.004)).unwrap();
        e.push_telemetry(b, clean_delta(0.009)).unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Failed);
        assert!(e.snapshot().degraded);
        // Re-registering with a spec repairs the next epoch.
        e.register_with_cache("legacy", 0.02, Some(flat_spec()))
            .unwrap();
        e.push_telemetry(a, clean_delta(0.004)).unwrap();
        e.push_telemetry(b, clean_delta(0.009)).unwrap();
        assert_eq!(e.run_epoch(), EpochOutcome::Repartitioned);
        assert!(!e.snapshot().degraded);
    }

    /// A bandwidth-only engine can answer a coordinated what-if when it
    /// knows the LLC geometry, without touching its published shares.
    #[test]
    fn coordinated_what_if_from_a_bandwidth_engine() {
        let cfg = EngineConfig {
            total_ways: Some(16),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg).unwrap();
        let ids = [
            e.register_with_cache("llcfit", 0.002, Some(steep_spec()))
                .unwrap(),
            e.register_with_cache("stream", 0.02, Some(flat_spec()))
                .unwrap(),
        ];
        for &id in &ids {
            e.push_telemetry(id, clean_delta(0.006)).unwrap();
        }
        e.run_epoch();
        let published = e.get_shares().unwrap();
        assert_eq!(published.outcome.scheme, "square-root");
        assert!(published.apps.iter().all(|a| a.resources.is_none()));

        let whatif = e.solve_with(PartitionScheme::Coordinated).unwrap();
        assert_eq!(whatif.outcome.scheme, "coordinated");
        let total: usize = whatif
            .apps
            .iter()
            .filter_map(|a| a.resources.as_ref())
            .flat_map(|rs| rs.iter())
            .filter(|r| r.kind == "llc-ways")
            .map(|r| r.amount.round() as usize)
            .sum();
        assert_eq!(total, 16);
        assert_eq!(
            e.get_shares().unwrap(),
            published,
            "what-if must not publish"
        );
    }

    /// Eq. 11 reservations ride the bandwidth dimension of a coordinated
    /// publish: the admitted app's allocation covers its reservation.
    #[test]
    fn coordinated_epoch_honours_qos_reservations() {
        let (mut e, ids, caches) = coordinated_engine();
        for (&id, cache) in ids.iter().zip(&caches) {
            e.push_telemetry(id, clean_delta(cache.apc_alone_at(8.0)))
                .unwrap();
        }
        e.run_epoch();

        // Reserve most of what the streamer can use.
        let st = e.snapshot();
        let ipc_alone = st.apps[ids[1]].apc_alone_estimate.unwrap() / st.apps[ids[1]].api;
        let grant = e.qos_admit(ids[1], ipc_alone * 0.9).unwrap();

        for (&id, cache) in ids.iter().zip(&caches) {
            e.push_telemetry(id, clean_delta(cache.apc_alone_at(8.0)))
                .unwrap();
        }
        e.run_epoch();
        let reply = e.get_shares().unwrap();
        assert_eq!(reply.outcome.scheme, "coordinated");
        assert!(
            reply.apps[ids[1]].allocation >= grant.reserved_apc - 1e-9,
            "allocation {} must cover the reservation {}",
            reply.apps[ids[1]].allocation,
            grant.reserved_apc
        );
    }
}
