#![warn(missing_docs)]

//! # bwpartd — the online bandwidth-partitioning service
//!
//! Everything else in this workspace is offline: profiles in, closed-form
//! shares out. `bwpartd` closes the loop the paper sketches in Section IV —
//! a long-running service that *continuously* re-derives the partition
//! from live telemetry:
//!
//! * [`protocol`] — a versioned, length-prefixed JSON wire protocol
//!   (pure codec, testable without sockets).
//! * [`engine`] — the epoch engine: fold Section IV-C telemetry deltas
//!   into Eq. 12–13 `APC_alone` estimates (EWMA-smoothed, with phase-change
//!   snapping), re-solve the configured [`PartitionScheme`] each epoch
//!   (honouring Eq. 11 QoS reservations), certify the result against the
//!   model contracts, and publish it subject to hysteresis.
//! * [`server`] — the threaded TCP front-end (`std::net` only, no
//!   runtime): accept loop, per-connection threads with read timeouts,
//!   epoch timer.
//! * [`rserver`] — the reactor TCP front-end (vendored-`mio` epoll/poll
//!   readiness loop, DESIGN.md §16): a fixed pool of nonblocking workers
//!   multiplexing hundreds of pipelined connections, with per-tenant
//!   engine shards ([`engine::ShardMap`]) ticking on a timer wheel.
//! * [`client`] — a typed blocking client speaking the same codec
//!   (JSON or the v2 binary framing, see [`protocol::Codec`]).
//!
//! Degradation is deliberate and bounded: malformed frames kill one
//! connection, telemetry queues shed oldest-first, failed solves serve
//! last-good shares flagged `degraded`, and all-idle epochs change nothing.
//!
//! ```no_run
//! use bwpartd::{serve, Client, ServeConfig};
//! use bwpart_mc::TelemetryDelta;
//!
//! let handle = serve(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let id = client.register("milc", 0.00692).unwrap();
//! client.telemetry(id, TelemetryDelta {
//!     accesses: 34_100,
//!     shared_cycles: 1_000_000,
//!     interference_cycles: 120_000,
//! }).unwrap();
//! // ... after an epoch: client.get_shares(None) / client.qos_admit(...)
//! client.shutdown().unwrap();
//! handle.join();
//! ```

pub use bwpart_core::PartitionScheme;

pub mod client;
pub mod engine;
pub mod protocol;
pub mod rserver;
pub mod server;

pub use client::{Client, ClientError};
pub use engine::{Engine, EngineConfig, EpochOutcome, ShardMap};
pub use protocol::{
    AppShare, AppStatus, CacheSpec, Codec, ErrorCode, FrameError, MetricsReply, MrcPoint, QosGrant,
    Request, ResourceShare, Response, ServiceError, ServiceSnapshot, SharesReply,
};
pub use server::{serve, ServeConfig, ServerHandle};
