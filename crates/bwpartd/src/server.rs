//! The TCP front-end: accept loop, per-connection threads, epoch timer.
//!
//! Design constraints (all from the "degrade gracefully" requirement):
//!
//! * **Malformed frames kill the connection, not the server.** A frame
//!   error gets a best-effort [`Response::Error`] with
//!   [`ErrorCode::BadFrame`], then the connection closes; every other
//!   client is untouched.
//! * **Stalled clients cannot pin resources.** Every connection runs with
//!   a read timeout; a client that goes quiet for longer is disconnected
//!   (it can reconnect — registration is idempotent by name).
//! * **Telemetry backpressure never blocks.** The engine's per-application
//!   queues are bounded and shed oldest-first; the TCP layer never buffers
//!   unboundedly either ([`protocol::MAX_PAYLOAD`] caps a frame before any
//!   allocation happens).
//! * **The engine is the only shared state**, behind a mutex. A poisoned
//!   mutex (a panicking thread mid-epoch in a debug build) degrades to
//!   serving the inner value rather than cascading panics.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use bwpart_mc::TelemetryDelta;

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{self, ErrorCode, Request, Response, ServiceError};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port; read
    /// the actual one from [`ServerHandle::addr`]).
    pub addr: String,
    /// Epoch-engine tuning.
    pub engine: EngineConfig,
    /// Wall-clock interval between epochs. The engine also exposes manual
    /// epochs through [`ServerHandle::force_epoch`] for deterministic
    /// tests, so the interval may be generous.
    pub epoch_interval: Duration,
    /// Per-connection read timeout; a client silent for longer is
    /// disconnected.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            epoch_interval: Duration::from_millis(100),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Handle to a running service.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Mutex<Engine>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    epoch_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the service actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown (idempotent; also triggered by a client's
    /// [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Run one epoch immediately (deterministic alternative to waiting for
    /// the timer; used by tests and the CLI's one-shot mode).
    pub fn force_epoch(&self) -> crate::engine::EpochOutcome {
        lock_engine(&self.engine).run_epoch()
    }

    /// In-process view of the engine's counters (what a client would get
    /// from [`Request::Snapshot`]).
    pub fn snapshot(&self) -> crate::protocol::ServiceSnapshot {
        lock_engine(&self.engine).snapshot()
    }

    /// Wait for the service to stop (after [`ServerHandle::shutdown`] or a
    /// client-issued shutdown), returning the engine's final counters —
    /// a snapshot taken any earlier would miss every epoch run while
    /// blocked here.
    pub fn join(mut self) -> crate::protocol::ServiceSnapshot {
        for t in [self.accept_thread.take(), self.epoch_thread.take()]
            .into_iter()
            .flatten()
        {
            // lint: allow(R1): joining service threads; a panicking worker
            // already aborted the run in debug, best-effort in release
            let _ = t.join();
        }
        lock_engine(&self.engine).snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in [self.accept_thread.take(), self.epoch_thread.take()]
            .into_iter()
            .flatten()
        {
            let _ = t.join();
        }
    }
}

// The server's declared mutex acquisition order, checked by lint rule
// R13 (this file) and workspace-wide by analyze rule A4: `engine` is the
// connection/epoch-thread guard, and `table` is the obs registry's
// internal metric-table lock, reached while `engine` is held whenever a
// guarded call resolves or snapshots metrics (`Engine::metrics`,
// `Engine::register`'s gauge resolution). The epoch path itself uses
// pre-resolved handles and never takes `table`. Any lock added later
// must be placed in this table (and nested acquisitions must follow it)
// or the lint fails.
// lint: lock-order: engine < table

/// A poisoned engine mutex means a connection thread panicked mid-call in
/// a debug build; the engine state itself is still the last consistent
/// value, so serving it beats cascading the panic to every client.
fn lock_engine(engine: &Arc<Mutex<Engine>>) -> MutexGuard<'_, Engine> {
    engine.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Start the service: bind, spawn the accept loop and the epoch timer,
/// return immediately.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let engine = Engine::new(cfg.engine.clone())
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let engine = Arc::new(Mutex::new(engine));
    let shutdown = Arc::new(AtomicBool::new(false));

    let epoch_thread = {
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let interval = cfg.epoch_interval;
        std::thread::spawn(move || {
            let tick = Duration::from_millis(5).min(interval);
            let mut elapsed = Duration::ZERO;
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let _ = lock_engine(&engine).run_epoch();
                }
            }
        })
    };

    let accept_thread = {
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let read_timeout = cfg.read_timeout;
        std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let engine = Arc::clone(&engine);
                        let shutdown = Arc::clone(&shutdown);
                        workers.push(std::thread::spawn(move || {
                            serve_connection(stream, &engine, &shutdown, read_timeout);
                        }));
                        workers.retain(|w| !w.is_finished());
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted handshake):
                        // keep serving.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            for w in workers {
                let _ = w.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        engine,
        shutdown,
        accept_thread: Some(accept_thread),
        epoch_thread: Some(epoch_thread),
    })
}

/// Serve one connection until it closes, errors, times out, or the service
/// shuts down.
fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Mutex<Engine>>,
    shutdown: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    // A short poll timeout (bounded by the caller's read timeout) keeps the
    // shutdown flag responsive; `idle` accumulates toward the real timeout.
    let poll = Duration::from_millis(50).min(read_timeout);
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Drain complete frames already buffered before reading more.
        loop {
            match protocol::decode::<Request>(&buf) {
                Ok(Some((req, used))) => {
                    buf.drain(..used);
                    let is_shutdown = matches!(req, Request::Shutdown);
                    let resp = handle_request(req, engine, shutdown);
                    if write_response(&mut stream, &resp).is_err() {
                        return;
                    }
                    if is_shutdown {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Malformed frame: answer (best-effort) and isolate by
                    // closing this connection only.
                    let resp =
                        Response::Error(ServiceError::new(ErrorCode::BadFrame, e.to_string()));
                    let _ = write_response(&mut stream, &resp);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += poll;
                if idle >= read_timeout {
                    return; // stalled client: free the thread
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let frame = protocol::encode(resp)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(&frame)
}

/// Dispatch one request against the engine. Never panics; every failure is
/// a structured [`Response::Error`].
fn handle_request(
    req: Request,
    engine: &Arc<Mutex<Engine>>,
    shutdown: &Arc<AtomicBool>,
) -> Response {
    match req {
        Request::Register { name, api } => match lock_engine(engine).register(&name, api) {
            Ok(app_id) => Response::Registered { app_id },
            Err(e) => Response::Error(e),
        },
        Request::Telemetry {
            app_id,
            accesses,
            shared_cycles,
            interference_cycles,
        } => {
            let delta = TelemetryDelta {
                accesses,
                shared_cycles,
                interference_cycles,
            };
            match lock_engine(engine).push_telemetry(app_id, delta) {
                Ok(epoch) => Response::TelemetryAck { app_id, epoch },
                Err(e) => Response::Error(e),
            }
        }
        Request::GetShares { scheme } => {
            let eng = lock_engine(engine);
            let result = match scheme {
                None => eng.get_shares(),
                Some(name) => match name.parse::<bwpart_core::PartitionScheme>() {
                    Ok(s) => eng.solve_with(s),
                    Err(e) => Err(ServiceError::new(ErrorCode::UnknownScheme, e.to_string())),
                },
            };
            match result {
                Ok(reply) => Response::Shares(reply),
                Err(e) => Response::Error(e),
            }
        }
        Request::QosAdmit { app_id, ipc_target } => {
            match lock_engine(engine).qos_admit(app_id, ipc_target) {
                Ok(grant) => Response::QosAdmitted(grant),
                Err(e) => Response::Error(e),
            }
        }
        Request::Snapshot => Response::Snapshot(lock_engine(engine).snapshot()),
        Request::Metrics => Response::Metrics(lock_engine(engine).metrics()),
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}
