//! The threaded TCP front-end: accept loop, per-connection threads, epoch
//! timer. (The reactor front-end in [`crate::rserver`] shares this file's
//! dispatch and framing; [`serve`] picks between them.)
//!
//! Design constraints (all from the "degrade gracefully" requirement):
//!
//! * **Malformed frames kill the connection, not the server.** A frame
//!   error gets a best-effort [`Response::Error`] — with
//!   [`ErrorCode::UnsupportedVersion`](crate::protocol::ErrorCode) for a
//!   version byte this build does not speak, [`ErrorCode::BadFrame`]
//!   otherwise — then the connection closes; every other client is
//!   untouched.
//! * **Stalled clients cannot pin resources.** Every connection runs with
//!   a read timeout; a client that goes quiet for longer is disconnected
//!   (it can reconnect — registration is idempotent by name).
//! * **Telemetry backpressure never blocks.** The engine's per-application
//!   queues are bounded and shed oldest-first; the TCP layer never buffers
//!   unboundedly either ([`protocol::MAX_PAYLOAD`] caps a frame before any
//!   allocation happens).
//! * **The shard map is the only shared state.** Its per-shard mutexes
//!   live inside [`ShardMap`] (lock-order table in `engine.rs`); the
//!   front-ends themselves hold no locks.
//!
//! Codec negotiation is per-frame: the server decodes both wire versions
//! and answers each request in the codec it arrived in, so JSON and
//! binary clients can share one connection-handling path (and, in tests,
//! one server).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bwpart_mc::TelemetryDelta;

use crate::engine::{EngineConfig, ShardMap};
use crate::protocol::{self, Codec, ErrorCode, Request, Response, ServiceError};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port; read
    /// the actual one from [`ServerHandle::addr`]).
    pub addr: String,
    /// Epoch-engine tuning (every tenant group's engine is built from
    /// this).
    pub engine: EngineConfig,
    /// Wall-clock interval between epochs. The engine also exposes manual
    /// epochs through [`ServerHandle::force_epoch`] for deterministic
    /// tests, so the interval may be generous.
    pub epoch_interval: Duration,
    /// Per-connection read timeout; a client silent for longer is
    /// disconnected.
    pub read_timeout: Duration,
    /// Tenant-shard count (≥ 1); see [`ShardMap`].
    pub shards: usize,
    /// Serve with the nonblocking reactor front-end
    /// ([`crate::rserver`]) instead of a thread per connection.
    pub reactor: bool,
    /// Reactor worker threads; `0` picks a default from the host's
    /// parallelism. Ignored by the threaded front-end.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            epoch_interval: Duration::from_millis(100),
            read_timeout: Duration::from_secs(5),
            shards: 1,
            reactor: false,
            workers: 0,
        }
    }
}

/// Handle to a running service (either front-end).
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) map: Arc<ShardMap>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// One waker per reactor worker so [`ServerHandle::shutdown`] can
    /// interrupt blocked polls immediately (empty for the threaded
    /// front-end, whose loops poll on short timeouts).
    pub(crate) wakers: Vec<mio::Waker>,
    pub(crate) threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the service actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown (idempotent; also triggered by a client's
    /// [`Request::Shutdown`]).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            let _ = w.wake();
        }
    }

    /// Run one epoch on every tenant engine immediately (deterministic
    /// alternative to waiting for the timer; used by tests and the CLI's
    /// one-shot mode).
    pub fn force_epoch(&self) -> crate::engine::EpochOutcome {
        self.map.run_epochs()
    }

    /// In-process view of the service counters (what a client would get
    /// from [`Request::Snapshot`]).
    pub fn snapshot(&self) -> crate::protocol::ServiceSnapshot {
        self.map.snapshot()
    }

    /// Wait for the service to stop (after [`ServerHandle::shutdown`] or a
    /// client-issued shutdown), returning the final counters — a snapshot
    /// taken any earlier would miss every epoch run while blocked here.
    pub fn join(mut self) -> crate::protocol::ServiceSnapshot {
        for t in self.threads.drain(..) {
            // lint: allow(R1): joining service threads; a panicking worker
            // already aborted the run in debug, best-effort in release
            let _ = t.join();
        }
        self.map.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            let _ = w.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Start the service with the front-end `cfg.reactor` selects: bind,
/// spawn the serving threads and the epoch ticker, return immediately.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    if cfg.reactor {
        crate::rserver::serve_reactor(cfg)
    } else {
        serve_threaded(cfg)
    }
}

/// The classic thread-per-connection front-end.
fn serve_threaded(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let map = ShardMap::new(cfg.engine.clone(), cfg.shards)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let map = Arc::new(map);
    let shutdown = Arc::new(AtomicBool::new(false));

    let epoch_thread = {
        let map = Arc::clone(&map);
        let shutdown = Arc::clone(&shutdown);
        let interval = cfg.epoch_interval;
        std::thread::spawn(move || {
            let tick = Duration::from_millis(5).min(interval);
            let mut elapsed = Duration::ZERO;
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let _ = map.run_epochs();
                }
            }
        })
    };

    let accept_thread = {
        let map = Arc::clone(&map);
        let shutdown = Arc::clone(&shutdown);
        let read_timeout = cfg.read_timeout;
        std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let map = Arc::clone(&map);
                        let shutdown = Arc::clone(&shutdown);
                        workers.push(std::thread::spawn(move || {
                            serve_connection(stream, &map, &shutdown, read_timeout);
                        }));
                        workers.retain(|w| !w.is_finished());
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        // Transient accept failure (e.g. aborted handshake):
                        // keep serving.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            for w in workers {
                let _ = w.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        map,
        shutdown,
        wakers: Vec::new(),
        threads: vec![accept_thread, epoch_thread],
    })
}

/// Serve one connection until it closes, errors, times out, or the service
/// shuts down.
fn serve_connection(
    mut stream: TcpStream,
    map: &Arc<ShardMap>,
    shutdown: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    // A short poll timeout (bounded by the caller's read timeout) keeps the
    // shutdown flag responsive; `idle` accumulates toward the real timeout.
    let poll = Duration::from_millis(50).min(read_timeout);
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    // The codec of the most recent well-formed frame: frame-*error*
    // replies go out in it (for the very first frame, JSON — the one
    // codec any peer of any version can be assumed to read).
    let mut last_codec = Codec::Json;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Drain complete frames already buffered before reading more.
        loop {
            match protocol::decode_frame::<Request>(&buf) {
                Ok(Some((req, used, codec))) => {
                    buf.drain(..used);
                    last_codec = codec;
                    let is_shutdown = matches!(req, Request::Shutdown);
                    let resp = handle_request(req, map, shutdown);
                    if write_response(&mut stream, &resp, codec).is_err() {
                        return;
                    }
                    if is_shutdown {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Malformed frame: answer (best-effort) and isolate by
                    // closing this connection only.
                    let resp = Response::Error(ServiceError::new(e.error_code(), e.to_string()));
                    let _ = write_response(&mut stream, &resp, last_codec);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += poll;
                if idle >= read_timeout {
                    return; // stalled client: free the thread
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, codec: Codec) -> std::io::Result<()> {
    let frame = protocol::encode_with(resp, codec)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(&frame)
}

/// Dispatch one request against the shard map. Never panics; every
/// failure is a structured [`Response::Error`]. Shared by both
/// front-ends.
pub(crate) fn handle_request(req: Request, map: &ShardMap, shutdown: &AtomicBool) -> Response {
    match req {
        Request::Register { name, api, cache } => {
            match map.register_with_cache(&name, api, cache) {
                Ok(app_id) => Response::Registered { app_id },
                Err(e) => Response::Error(e),
            }
        }
        Request::Telemetry {
            app_id,
            accesses,
            shared_cycles,
            interference_cycles,
        } => {
            let delta = TelemetryDelta {
                accesses,
                shared_cycles,
                interference_cycles,
            };
            match map.push_telemetry(app_id, delta) {
                Ok(epoch) => Response::TelemetryAck { app_id, epoch },
                Err(e) => Response::Error(e),
            }
        }
        Request::GetShares { scheme } => {
            let result = match parse_scheme(scheme) {
                Ok(None) => map.get_shares(),
                Ok(Some(s)) => map.solve_with(s),
                Err(e) => Err(e),
            };
            match result {
                Ok(reply) => Response::Shares(reply),
                Err(e) => Response::Error(e),
            }
        }
        Request::GroupShares { group, scheme } => {
            let result = parse_scheme(scheme).and_then(|scheme| map.group_shares(&group, scheme));
            match result {
                Ok(reply) => Response::Shares(reply),
                Err(e) => Response::Error(e),
            }
        }
        Request::QosAdmit { app_id, ipc_target } => match map.qos_admit(app_id, ipc_target) {
            Ok(grant) => Response::QosAdmitted(grant),
            Err(e) => Response::Error(e),
        },
        Request::Snapshot => Response::Snapshot(map.snapshot()),
        Request::Metrics => Response::Metrics(map.metrics()),
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
    }
}

fn parse_scheme(
    scheme: Option<String>,
) -> Result<Option<bwpart_core::PartitionScheme>, ServiceError> {
    match scheme {
        None => Ok(None),
        Some(name) => name
            .parse::<bwpart_core::PartitionScheme>()
            .map(Some)
            .map_err(|e| ServiceError::new(ErrorCode::UnknownScheme, e.to_string())),
    }
}
