//! The `bwpartd` wire protocol: versioned, length-prefixed JSON frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  `b"BW"`
//! 2       1     wire version (currently [`WIRE_VERSION`])
//! 3       1     reserved, must be 0
//! 4       4     payload length, big-endian u32, ≤ [`MAX_PAYLOAD`]
//! 8       n     payload: UTF-8 JSON for one [`Request`] / [`Response`]
//! ```
//!
//! The codec here is pure (`&[u8]` in, frames out) so it can be tested
//! without sockets — including under miri — and so both the server's read
//! loop and the [`client`](crate::client) share one parsing path.
//! [`decode`] is *incremental*: a partial frame yields `Ok(None)` ("need
//! more bytes"), while a malformed one yields a [`FrameError`] that the
//! server answers with a best-effort [`Response::Error`] before closing
//! that connection only.

use bwpart_core::SharesOutcome;
use serde::{Deserialize, Serialize};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"BW";
/// Wire protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Hard ceiling on payload size; larger frames are rejected without
/// buffering (a garbage length prefix must not make the server allocate).
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Why a byte sequence failed to parse as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually seen.
        got: [u8; 2],
    },
    /// The version byte did not match [`WIRE_VERSION`].
    UnsupportedVersion {
        /// The version actually seen.
        got: u8,
    },
    /// The reserved byte was non-zero.
    NonZeroReserved {
        /// The byte actually seen.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The payload was not valid UTF-8 JSON for the expected type.
    BadPayload {
        /// Parser diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:?} (expected {MAGIC:?})")
            }
            FrameError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            FrameError::NonZeroReserved { got } => {
                write!(f, "reserved header byte must be 0, got {got}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "payload length {len} exceeds the {MAX_PAYLOAD}-byte frame limit"
                )
            }
            FrameError::BadPayload { detail } => write!(f, "bad frame payload: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one message as a framed byte vector.
pub fn encode<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| FrameError::BadPayload {
            detail: e.to_string(),
        })?
        .into_bytes();
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len: payload.len() });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((msg, consumed)))` — a complete frame was parsed; the caller
///   should drop the first `consumed` bytes.
/// * `Ok(None)` — `buf` holds a valid but incomplete frame; read more.
/// * `Err(_)` — the stream is unrecoverably out of protocol; the caller
///   should drop the connection (not the server).
pub fn decode<T: serde::de::DeserializeOwned>(
    buf: &[u8],
) -> Result<Option<(T, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(FrameError::BadMagic {
            got: [buf[0], buf[1]],
        });
    }
    if buf[2] != WIRE_VERSION {
        return Err(FrameError::UnsupportedVersion { got: buf[2] });
    }
    if buf[3] != 0 {
        return Err(FrameError::NonZeroReserved { got: buf[3] });
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let text = std::str::from_utf8(payload).map_err(|e| FrameError::BadPayload {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let msg = serde_json::from_str(text).map_err(|e| FrameError::BadPayload {
        detail: e.to_string(),
    })?;
    Ok(Some((msg, HEADER_LEN + len)))
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register an application by name; idempotent (re-registering a name
    /// returns the same id and updates its `API`).
    Register {
        /// Human-readable application name (unique key).
        name: String,
        /// Accesses per instruction (`API`, Eq. 1) — the core-side counter
        /// ratio the client measures for itself.
        api: f64,
    },
    /// One telemetry delta: the Section IV-C counters accumulated since the
    /// previous report.
    Telemetry {
        /// Id returned by `Register`.
        app_id: usize,
        /// `ΔN_accesses`.
        accesses: u64,
        /// `ΔT_cyc,shared`.
        shared_cycles: u64,
        /// `ΔT_cyc,interference`.
        interference_cycles: u64,
    },
    /// Fetch the current published shares, or a what-if solve under a
    /// different scheme (canonical kebab-case name, e.g. `square-root`).
    GetShares {
        /// `None` → the epoch engine's published allocation;
        /// `Some(name)` → an ad-hoc solve that bypasses QoS reservations.
        scheme: Option<String>,
    },
    /// Ask for an Eq. 11 QoS guarantee: reserve `IPC_target × API`.
    QosAdmit {
        /// Id returned by `Register`.
        app_id: usize,
        /// The IPC the service must guarantee.
        ipc_target: f64,
    },
    /// Fetch service counters and per-application state.
    Snapshot,
    /// Fetch the service's observability metrics (Prometheus text plus a
    /// typed [`bwpart_obs::MetricsSnapshot`]).
    Metrics,
    /// Stop the service (all connections, epoch thread, listener).
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Register`].
    Registered {
        /// The application's id for subsequent requests.
        app_id: usize,
    },
    /// Reply to [`Request::Telemetry`].
    TelemetryAck {
        /// Echo of the reporting application.
        app_id: usize,
        /// Epoch the delta will be folded into.
        epoch: u64,
    },
    /// Reply to [`Request::GetShares`].
    Shares(SharesReply),
    /// Reply to a successful [`Request::QosAdmit`].
    QosAdmitted(QosGrant),
    /// Reply to [`Request::Snapshot`].
    Snapshot(ServiceSnapshot),
    /// Reply to [`Request::Metrics`].
    Metrics(MetricsReply),
    /// Reply to [`Request::Shutdown`]; the connection closes after this.
    ShuttingDown,
    /// Any request may fail with a structured error instead of its normal
    /// reply; the connection stays usable (except after frame errors).
    Error(ServiceError),
}

/// A published share vector, consistent within one epoch: every client
/// asking between two repartitions receives an identical reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharesReply {
    /// Epoch in which this allocation was computed.
    pub epoch: u64,
    /// Solver outcome: canonical scheme name, bandwidth `B`, the share
    /// vector `β` and the capped allocation, indexed like `apps`.
    pub outcome: SharesOutcome,
    /// Per-application labels for the `outcome` columns.
    pub apps: Vec<AppShare>,
    /// True when the engine is serving last-good shares because the most
    /// recent epoch solve failed.
    pub degraded: bool,
}

/// One application's row in a [`SharesReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppShare {
    /// Application id.
    pub app_id: usize,
    /// Application name.
    pub name: String,
    /// Nominal share `β_i` (0 for applications not yet profiled).
    pub beta: f64,
    /// Capped allocation in APC units (0 for applications not yet
    /// profiled).
    pub allocation: f64,
}

/// Reply to a successful Eq. 11 admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosGrant {
    /// The admitted application.
    pub app_id: usize,
    /// Reserved bandwidth `B_QoS = IPC_target × API` (APC units).
    pub reserved_apc: f64,
    /// Bandwidth left for best-effort applications after all reservations.
    pub remaining_apc: f64,
}

/// Reply to [`Request::Metrics`]: the service's observability registry in
/// both machine-readable forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Epoch at which the metrics were sampled.
    pub epoch: u64,
    /// Prometheus text exposition of every metric.
    pub prometheus: String,
    /// The same metrics as a typed snapshot.
    pub snapshot: bwpart_obs::MetricsSnapshot,
}

/// Service counters and per-application state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Epochs elapsed since start.
    pub epoch: u64,
    /// Canonical name of the engine's configured scheme.
    pub scheme: String,
    /// Total bandwidth `B` being partitioned (APC units).
    pub bandwidth: f64,
    /// Epochs whose solve repartitioned (published new shares).
    pub repartitions: u64,
    /// Epochs held back by hysteresis (change below threshold).
    pub held_epochs: u64,
    /// Epochs skipped because no application reported any cycles.
    pub idle_epochs: u64,
    /// Epochs whose solve failed (served last-good instead).
    pub failed_epochs: u64,
    /// Phase changes detected (estimate snapped instead of smoothed).
    pub phase_changes: u64,
    /// Telemetry deltas shed across all applications since start (the sum
    /// of every [`AppStatus::shed`], kept here so backpressure is visible
    /// without scanning rows).
    pub telemetry_shed_total: u64,
    /// True while serving last-good shares after a failed solve.
    pub degraded: bool,
    /// Per-application state.
    pub apps: Vec<AppStatus>,
}

/// One application's row in a [`ServiceSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppStatus {
    /// Application id.
    pub app_id: usize,
    /// Application name.
    pub name: String,
    /// Registered accesses-per-instruction ratio.
    pub api: f64,
    /// Current smoothed `APC_alone` estimate (Eq. 12–13 + EWMA), absent
    /// until the first non-idle epoch.
    pub apc_alone_estimate: Option<f64>,
    /// Admitted QoS target IPC, if any.
    pub qos_target: Option<f64>,
    /// Telemetry deltas queued for the next epoch.
    pub queued: usize,
    /// Deltas shed (oldest-first) because the queue was full.
    pub shed: u64,
}

/// Machine-readable error category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame itself was malformed (the connection closes after this).
    BadFrame,
    /// `app_id` does not name a registered application.
    UnknownApp,
    /// The scheme name failed to parse.
    UnknownScheme,
    /// A numeric argument was non-finite or out of domain.
    InvalidArgument,
    /// The engine has no published shares / no estimate yet.
    NotReady,
    /// Eq. 11: the target exceeds the application's standalone IPC.
    QosUnreachable,
    /// Eq. 11: reservations would exceed the total bandwidth `B`.
    QosInfeasible,
    /// The epoch solve failed for the requested inputs.
    SolveFailed,
    /// The service is shutting down.
    ShuttingDown,
}

/// A structured error reply: a stable [`ErrorCode`] plus a human-readable
/// message. Errors never tear down the service; frame-level errors tear
/// down only the offending connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::Telemetry {
            app_id: 3,
            accesses: 1_000,
            shared_cycles: 100_000,
            interference_cycles: 40_000,
        }
    }

    #[test]
    fn round_trip_request() {
        let req = sample_request();
        let frame = encode(&req).unwrap();
        let (back, used): (Request, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let frame = encode(&Request::Snapshot).unwrap();
        for cut in 0..frame.len() {
            let r: Result<Option<(Request, usize)>, FrameError> = decode(&frame[..cut]);
            assert_eq!(r.unwrap(), None, "cut at {cut} should be incomplete");
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut buf = encode(&Request::Snapshot).unwrap();
        buf.extend(encode(&sample_request()).unwrap());
        let (first, used): (Request, usize) = decode(&buf).unwrap().unwrap();
        assert_eq!(first, Request::Snapshot);
        let (second, used2): (Request, usize) = decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, sample_request());
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn bad_magic_version_reserved_rejected() {
        let good = encode(&Request::Snapshot).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode::<Request>(&bad),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[2] = WIRE_VERSION + 1;
        assert_eq!(
            decode::<Request>(&bad),
            Err(FrameError::UnsupportedVersion {
                got: WIRE_VERSION + 1
            })
        );

        let mut bad = good;
        bad[3] = 7;
        assert_eq!(
            decode::<Request>(&bad),
            Err(FrameError::NonZeroReserved { got: 7 })
        );
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&(u32::MAX).to_be_bytes());
        // Only the header is present — the bogus length alone must reject.
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::Oversized { .. })
        ));
        assert!(encode(&vec!["x".repeat(1024); 80]).is_err());
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&[0xff, 0xfe, 0x00, 0x01]);
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::BadPayload { .. })
        ));

        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&2u32.to_be_bytes());
        frame.extend_from_slice(b"{}");
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn metrics_round_trip() {
        let frame = encode(&Request::Metrics).unwrap();
        let (back, _): (Request, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, Request::Metrics);

        let reg = bwpart_obs::Registry::new();
        reg.counter("bwpartd_epochs_total").add(3);
        reg.gauge("bwpartd_app_share{app=\"lbm\"}").set(0.4);
        reg.histogram("bwpartd_epoch_latency_seconds").record(1e-4);
        let snapshot = reg.snapshot();
        let resp = Response::Metrics(MetricsReply {
            epoch: 3,
            prometheus: snapshot.render_prometheus(),
            snapshot,
        });
        let frame = encode(&resp).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Shares(SharesReply {
            epoch: 12,
            outcome: SharesOutcome {
                scheme: "square-root".into(),
                bandwidth: 0.0095,
                beta: vec![0.25, 0.75],
                allocation: vec![0.0025, 0.007],
            },
            apps: vec![
                AppShare {
                    app_id: 0,
                    name: "milc".into(),
                    beta: 0.25,
                    allocation: 0.0025,
                },
                AppShare {
                    app_id: 1,
                    name: "lbm".into(),
                    beta: 0.75,
                    allocation: 0.007,
                },
            ],
            degraded: false,
        });
        let frame = encode(&resp).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, resp);

        let err = Response::Error(ServiceError::new(
            ErrorCode::QosInfeasible,
            "reservations exceed B",
        ));
        let frame = encode(&err).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, err);
    }
}
