//! The `bwpartd` wire protocol: versioned, length-prefixed frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  `b"BW"`
//! 2       1     wire version: [`WIRE_VERSION`] (JSON payload) or
//!               [`WIRE_VERSION_BINARY`] (tagged binary payload)
//! 3       1     reserved, must be 0
//! 4       4     payload length, big-endian u32, ≤ [`MAX_PAYLOAD`]
//! 8       n     payload: one [`Request`] / [`Response`] in the codec
//!               named by the version byte
//! ```
//!
//! The version byte doubles as codec negotiation: v1 frames carry UTF-8
//! JSON, v2 frames carry the compact tagged-binary encoding of the same
//! value tree (see [`Codec::Binary`]). A server answers in whatever codec
//! the request arrived in, so old v1 clients keep working unchanged.
//!
//! The codec here is pure (`&[u8]` in, frames out) so it can be tested
//! without sockets — including under miri — and so both the server's read
//! loop and the [`client`](crate::client) share one parsing path.
//! [`decode_frame`] is *incremental*: a partial frame yields `Ok(None)`
//! ("need more bytes"), while a malformed one yields a [`FrameError`] that
//! the server answers with a best-effort [`Response::Error`] before
//! closing that connection only.

use bwpart_core::SharesOutcome;
use serde::{Deserialize, Serialize};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"BW";
/// Wire version whose payloads are UTF-8 JSON (the v1 codec).
pub const WIRE_VERSION: u8 = 1;
/// Wire version whose payloads are the tagged binary encoding.
pub const WIRE_VERSION_BINARY: u8 = 2;
/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Hard ceiling on payload size; larger frames are rejected without
/// buffering (a garbage length prefix must not make the server allocate).
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// The payload encoding named by a frame's version byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// v1: UTF-8 JSON text (human-debuggable, the compatibility default).
    Json,
    /// v2: tagged binary. Each value is a one-byte tag followed by its
    /// payload: `0` null, `1` false, `2` true, `3` u64 (LEB128 varint),
    /// `4` i64 (zigzag varint), `5` f64 (8 bytes little-endian), `6`
    /// string (varint length + UTF-8 bytes), `7` array (varint count +
    /// values), `8` object (varint count + `(varint key length, key
    /// bytes, value)` pairs). Both codecs encode the same value tree, so
    /// they are semantically interchangeable frame-by-frame.
    Binary,
}

impl Codec {
    /// The version byte this codec travels under.
    pub fn version(self) -> u8 {
        match self {
            Codec::Json => WIRE_VERSION,
            Codec::Binary => WIRE_VERSION_BINARY,
        }
    }

    /// Codec for a version byte, or `None` for versions this build does
    /// not speak.
    pub fn from_version(version: u8) -> Option<Codec> {
        match version {
            WIRE_VERSION => Some(Codec::Json),
            WIRE_VERSION_BINARY => Some(Codec::Binary),
            _ => None,
        }
    }

    /// Canonical lowercase name (CLI flag value, bench metadata).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

impl std::str::FromStr for Codec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(Codec::Json),
            "binary" => Ok(Codec::Binary),
            other => Err(format!("unknown codec `{other}` (expected json|binary)")),
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a byte sequence failed to parse as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually seen.
        got: [u8; 2],
    },
    /// The version byte did not match [`WIRE_VERSION`].
    UnsupportedVersion {
        /// The version actually seen.
        got: u8,
    },
    /// The reserved byte was non-zero.
    NonZeroReserved {
        /// The byte actually seen.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The payload was not valid UTF-8 JSON for the expected type.
    BadPayload {
        /// Parser diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:?} (expected {MAGIC:?})")
            }
            FrameError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            FrameError::NonZeroReserved { got } => {
                write!(f, "reserved header byte must be 0, got {got}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "payload length {len} exceeds the {MAX_PAYLOAD}-byte frame limit"
                )
            }
            FrameError::BadPayload { detail } => write!(f, "bad frame payload: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// The [`ErrorCode`] a server reports for this frame error: version
    /// mismatches get their own code (a peer can downgrade on it), every
    /// other framing fault is [`ErrorCode::BadFrame`].
    pub fn error_code(&self) -> ErrorCode {
        match self {
            FrameError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            _ => ErrorCode::BadFrame,
        }
    }
}

/// Encode one message as a framed byte vector in the v1 JSON codec.
pub fn encode<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    encode_with(msg, Codec::Json)
}

/// Encode one message as a framed byte vector in the given codec.
pub fn encode_with<T: Serialize>(msg: &T, codec: Codec) -> Result<Vec<u8>, FrameError> {
    let payload = match codec {
        Codec::Json => serde_json::to_string(msg)
            .map_err(|e| FrameError::BadPayload {
                detail: e.to_string(),
            })?
            .into_bytes(),
        Codec::Binary => {
            let mut bytes = Vec::new();
            binary::encode_value(&msg.to_value(), &mut bytes);
            bytes
        }
    };
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len: payload.len() });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(codec.version());
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Try to decode one frame from the front of `buf`, accepting any codec
/// this build speaks and reporting which one the frame used (so a server
/// can reply in kind).
///
/// * `Ok(Some((msg, consumed, codec)))` — a complete frame was parsed;
///   the caller should drop the first `consumed` bytes.
/// * `Ok(None)` — `buf` holds a valid but incomplete frame; read more.
/// * `Err(_)` — the stream is unrecoverably out of protocol; the caller
///   should drop the connection (not the server).
pub fn decode_frame<T: serde::de::DeserializeOwned>(
    buf: &[u8],
) -> Result<Option<(T, usize, Codec)>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(FrameError::BadMagic {
            got: [buf[0], buf[1]],
        });
    }
    let codec =
        Codec::from_version(buf[2]).ok_or(FrameError::UnsupportedVersion { got: buf[2] })?;
    if buf[3] != 0 {
        return Err(FrameError::NonZeroReserved { got: buf[3] });
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    let msg = match codec {
        Codec::Json => {
            let text = std::str::from_utf8(payload).map_err(|e| FrameError::BadPayload {
                detail: format!("payload is not UTF-8: {e}"),
            })?;
            serde_json::from_str(text).map_err(|e| FrameError::BadPayload {
                detail: e.to_string(),
            })?
        }
        Codec::Binary => {
            let value = binary::decode_value(payload).map_err(|detail| FrameError::BadPayload {
                detail: format!("binary payload: {detail}"),
            })?;
            T::from_value(&value).map_err(|e| FrameError::BadPayload {
                detail: e.to_string(),
            })?
        }
    };
    Ok(Some((msg, HEADER_LEN + len, codec)))
}

/// [`decode_frame`] without the codec report, for callers that do not
/// need to reply in kind.
pub fn decode<T: serde::de::DeserializeOwned>(
    buf: &[u8],
) -> Result<Option<(T, usize)>, FrameError> {
    Ok(decode_frame(buf)?.map(|(msg, used, _)| (msg, used)))
}

/// The v2 tagged-binary payload codec: a direct byte encoding of the
/// serde [`Value`](serde::Value) tree (see [`Codec::Binary`] for the tag
/// table), so JSON and binary frames are interconvertible by
/// construction.
///
/// Decoding is defensive to the same standard as the frame header: no
/// input — truncated, corrupted, or adversarial — may panic or allocate
/// proportionally to a length *claimed* by the input rather than bytes
/// actually present. Collections are built with `push`, never
/// `with_capacity(claimed)`, and claimed counts are sanity-checked
/// against the bytes remaining.
pub mod binary {
    use serde::Value;

    /// Maximum value-tree nesting; deeper input is rejected (the protocol
    /// types nest ~4 levels, and unbounded recursion on attacker input
    /// would overflow the stack long before this limit matters).
    pub const MAX_DEPTH: usize = 64;

    const TAG_NULL: u8 = 0;
    const TAG_FALSE: u8 = 1;
    const TAG_TRUE: u8 = 2;
    const TAG_U64: u8 = 3;
    const TAG_I64: u8 = 4;
    const TAG_F64: u8 = 5;
    const TAG_STRING: u8 = 6;
    const TAG_ARRAY: u8 = 7;
    const TAG_OBJECT: u8 = 8;

    fn push_varint(mut v: u64, out: &mut Vec<u8>) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn zigzag(i: i64) -> u64 {
        ((i << 1) ^ (i >> 63)) as u64
    }

    fn unzigzag(u: u64) -> i64 {
        ((u >> 1) as i64) ^ -((u & 1) as i64)
    }

    /// Append the binary encoding of `value` to `out`.
    pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
        match value {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(false) => out.push(TAG_FALSE),
            Value::Bool(true) => out.push(TAG_TRUE),
            Value::U64(u) => {
                out.push(TAG_U64);
                push_varint(*u, out);
            }
            Value::I64(i) => {
                out.push(TAG_I64);
                push_varint(zigzag(*i), out);
            }
            Value::F64(f) => {
                out.push(TAG_F64);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::String(s) => {
                out.push(TAG_STRING);
                push_varint(s.len() as u64, out);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Array(items) => {
                out.push(TAG_ARRAY);
                push_varint(items.len() as u64, out);
                for item in items {
                    encode_value(item, out);
                }
            }
            Value::Object(pairs) => {
                out.push(TAG_OBJECT);
                push_varint(pairs.len() as u64, out);
                for (key, item) in pairs {
                    push_varint(key.len() as u64, out);
                    out.extend_from_slice(key.as_bytes());
                    encode_value(item, out);
                }
            }
        }
    }

    /// Decode one value occupying the whole of `payload`; trailing bytes
    /// are an error (a frame carries exactly one message).
    pub fn decode_value(payload: &[u8]) -> Result<Value, String> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let value = cur.value(0)?;
        if cur.pos != payload.len() {
            return Err(format!(
                "{} trailing byte(s) after the value",
                payload.len() - cur.pos
            ));
        }
        Ok(value)
    }

    struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl Cursor<'_> {
        fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        fn byte(&mut self) -> Result<u8, String> {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| "truncated value".to_string())?;
            self.pos += 1;
            Ok(b)
        }

        fn bytes(&mut self, n: usize) -> Result<&[u8], String> {
            if self.remaining() < n {
                return Err(format!(
                    "truncated value: need {n} more byte(s), have {}",
                    self.remaining()
                ));
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        fn varint(&mut self) -> Result<u64, String> {
            let mut v = 0u64;
            for shift in (0..64).step_by(7) {
                let byte = self.byte()?;
                let low = (byte & 0x7f) as u64;
                // The 10th byte (shift 63) may only contribute one bit.
                if shift == 63 && low > 1 {
                    return Err("varint overflows u64".to_string());
                }
                v |= low << shift;
                if byte & 0x80 == 0 {
                    // Reject overlong encodings so every value has exactly
                    // one byte representation.
                    if byte == 0 && shift != 0 {
                        return Err("overlong varint".to_string());
                    }
                    return Ok(v);
                }
            }
            Err("varint longer than 10 bytes".to_string())
        }

        /// A claimed element count is a lie if the remaining bytes could
        /// not hold that many elements even at `min_bytes` apiece.
        fn checked_count(&self, claimed: u64, min_bytes: usize) -> Result<usize, String> {
            let max = self.remaining() / min_bytes.max(1);
            if claimed > max as u64 {
                return Err(format!(
                    "claimed count {claimed} exceeds what {} remaining byte(s) can hold",
                    self.remaining()
                ));
            }
            Ok(claimed as usize)
        }

        fn string(&mut self) -> Result<String, String> {
            let len = self.varint()?;
            if len > self.remaining() as u64 {
                return Err(format!(
                    "claimed string length {len} exceeds {} remaining byte(s)",
                    self.remaining()
                ));
            }
            let bytes = self.bytes(len as usize)?;
            std::str::from_utf8(bytes)
                .map(str::to_owned)
                .map_err(|e| format!("string is not UTF-8: {e}"))
        }

        fn value(&mut self, depth: usize) -> Result<Value, String> {
            if depth > MAX_DEPTH {
                return Err(format!("nesting exceeds {MAX_DEPTH} levels"));
            }
            match self.byte()? {
                TAG_NULL => Ok(Value::Null),
                TAG_FALSE => Ok(Value::Bool(false)),
                TAG_TRUE => Ok(Value::Bool(true)),
                TAG_U64 => Ok(Value::U64(self.varint()?)),
                TAG_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
                TAG_F64 => {
                    let mut raw = [0u8; 8];
                    raw.copy_from_slice(self.bytes(8)?);
                    Ok(Value::F64(f64::from_le_bytes(raw)))
                }
                TAG_STRING => Ok(Value::String(self.string()?)),
                TAG_ARRAY => {
                    let count = self.varint()?;
                    // Every element is at least one tag byte.
                    let count = self.checked_count(count, 1)?;
                    let mut items = Vec::new();
                    for _ in 0..count {
                        items.push(self.value(depth + 1)?);
                    }
                    Ok(Value::Array(items))
                }
                TAG_OBJECT => {
                    let count = self.varint()?;
                    // Every pair is at least a key-length byte + a tag.
                    let count = self.checked_count(count, 2)?;
                    let mut pairs = Vec::new();
                    for _ in 0..count {
                        let key = self.string()?;
                        let item = self.value(depth + 1)?;
                        pairs.push((key, item));
                    }
                    Ok(Value::Object(pairs))
                }
                tag => Err(format!("unknown value tag {tag}")),
            }
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register an application by name; idempotent (re-registering a name
    /// returns the same id and updates its `API` and cache profile).
    Register {
        /// Human-readable application name (unique key).
        name: String,
        /// Accesses per instruction (`API`, Eq. 1) — the core-side counter
        /// ratio the client measures for itself.
        api: f64,
        /// Optional cache-side profile for coordinated (bandwidth × LLC
        /// ways) partitioning. Absent on the wire for v1-era clients —
        /// both codecs decode a missing field as `None` — and required
        /// of every application before a `coordinated` solve can run.
        cache: Option<CacheSpec>,
    },
    /// One telemetry delta: the Section IV-C counters accumulated since the
    /// previous report.
    Telemetry {
        /// Id returned by `Register`.
        app_id: usize,
        /// `ΔN_accesses`.
        accesses: u64,
        /// `ΔT_cyc,shared`.
        shared_cycles: u64,
        /// `ΔT_cyc,interference`.
        interference_cycles: u64,
    },
    /// Fetch the current published shares, or a what-if solve under a
    /// different scheme (canonical kebab-case name, e.g. `square-root`).
    GetShares {
        /// `None` → the epoch engine's published allocation;
        /// `Some(name)` → an ad-hoc solve that bypasses QoS reservations.
        scheme: Option<String>,
    },
    /// Fetch one tenant group's shares (a single certified simplex; see
    /// the engine's `ShardMap`), or a what-if solve for that group.
    GroupShares {
        /// The tenant group (the app-name prefix before the first `/`, or
        /// `default`).
        group: String,
        /// As in [`Request::GetShares`].
        scheme: Option<String>,
    },
    /// Ask for an Eq. 11 QoS guarantee: reserve `IPC_target × API`.
    QosAdmit {
        /// Id returned by `Register`.
        app_id: usize,
        /// The IPC the service must guarantee.
        ipc_target: f64,
    },
    /// Fetch service counters and per-application state.
    Snapshot,
    /// Fetch the service's observability metrics (Prometheus text plus a
    /// typed [`bwpart_obs::MetricsSnapshot`]).
    Metrics,
    /// Stop the service (all connections, epoch thread, listener).
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Register`].
    Registered {
        /// The application's id for subsequent requests.
        app_id: usize,
    },
    /// Reply to [`Request::Telemetry`].
    TelemetryAck {
        /// Echo of the reporting application.
        app_id: usize,
        /// Epoch the delta will be folded into.
        epoch: u64,
    },
    /// Reply to [`Request::GetShares`].
    Shares(SharesReply),
    /// Reply to a successful [`Request::QosAdmit`].
    QosAdmitted(QosGrant),
    /// Reply to [`Request::Snapshot`].
    Snapshot(ServiceSnapshot),
    /// Reply to [`Request::Metrics`].
    Metrics(MetricsReply),
    /// Reply to [`Request::Shutdown`]; the connection closes after this.
    ShuttingDown,
    /// Any request may fail with a structured error instead of its normal
    /// reply; the connection stays usable (except after frame errors).
    Error(ServiceError),
}

/// A published share vector, consistent within one epoch: every client
/// asking between two repartitions receives an identical reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharesReply {
    /// Epoch in which this allocation was computed.
    pub epoch: u64,
    /// Solver outcome: canonical scheme name, bandwidth `B`, the share
    /// vector `β` and the capped allocation, indexed like `apps`.
    pub outcome: SharesOutcome,
    /// Per-application labels for the `outcome` columns.
    pub apps: Vec<AppShare>,
    /// True when the engine is serving last-good shares because the most
    /// recent epoch solve failed.
    pub degraded: bool,
}

/// One application's row in a [`SharesReply`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppShare {
    /// Application id.
    pub app_id: usize,
    /// Application name.
    pub name: String,
    /// Nominal share `β_i` (0 for applications not yet profiled).
    pub beta: f64,
    /// Capped allocation in APC units (0 for applications not yet
    /// profiled).
    pub allocation: f64,
    /// Per-resource breakdown for coordinated solves: one row per
    /// partitioned resource (`bandwidth`, `llc-ways`). `None` for
    /// bandwidth-only schemes, so v1-era replies are byte-identical.
    pub resources: Option<Vec<ResourceShare>>,
}

/// One fitted miss-ratio-curve knot in a [`CacheSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrcPoint {
    /// Allocated LLC ways the point was sampled at.
    pub ways: f64,
    /// Observed LLC miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
}

/// Client-measured cache profile: the inputs of a
/// [`bwpart_core::CacheAwareProfile`], shipped raw so the service owns
/// the (isotonic) fit and its validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// LLC-incoming accesses per instruction (the L2 miss rate —
    /// invariant under way partitioning).
    pub api_llc: f64,
    /// Standalone CPI with a fully hitting LLC.
    pub cpi_base: f64,
    /// Standalone stall cycles per DDR access (MLP-discounted).
    pub mem_penalty: f64,
    /// Sampled miss-ratio curve, at least one point.
    pub mrc: Vec<MrcPoint>,
}

/// One resource's row in an [`AppShare`] breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceShare {
    /// Canonical resource name: `bandwidth` or `llc-ways`.
    pub kind: String,
    /// Fraction of the resource's total in `[0, 1]`.
    pub share: f64,
    /// Absolute amount in the resource's native unit (APC for bandwidth,
    /// ways for the LLC).
    pub amount: f64,
}

/// Reply to a successful Eq. 11 admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosGrant {
    /// The admitted application.
    pub app_id: usize,
    /// Reserved bandwidth `B_QoS = IPC_target × API` (APC units).
    pub reserved_apc: f64,
    /// Bandwidth left for best-effort applications after all reservations.
    pub remaining_apc: f64,
}

/// Reply to [`Request::Metrics`]: the service's observability registry in
/// both machine-readable forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Epoch at which the metrics were sampled.
    pub epoch: u64,
    /// Prometheus text exposition of every metric.
    pub prometheus: String,
    /// The same metrics as a typed snapshot.
    pub snapshot: bwpart_obs::MetricsSnapshot,
}

/// Service counters and per-application state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Epochs elapsed since start.
    pub epoch: u64,
    /// Canonical name of the engine's configured scheme.
    pub scheme: String,
    /// Total bandwidth `B` being partitioned (APC units).
    pub bandwidth: f64,
    /// Epochs whose solve repartitioned (published new shares).
    pub repartitions: u64,
    /// Epochs held back by hysteresis (change below threshold).
    pub held_epochs: u64,
    /// Epochs skipped because no application reported any cycles.
    pub idle_epochs: u64,
    /// Epochs whose solve failed (served last-good instead).
    pub failed_epochs: u64,
    /// Phase changes detected (estimate snapped instead of smoothed).
    pub phase_changes: u64,
    /// Telemetry deltas shed across all applications since start (the sum
    /// of every [`AppStatus::shed`], kept here so backpressure is visible
    /// without scanning rows).
    pub telemetry_shed_total: u64,
    /// True while serving last-good shares after a failed solve.
    pub degraded: bool,
    /// Engine shards serving this snapshot (1 for an unsharded engine).
    pub shards: usize,
    /// Tenant groups present, alphabetically (empty for a plain
    /// single-engine service).
    pub groups: Vec<String>,
    /// Per-application state.
    pub apps: Vec<AppStatus>,
}

/// One application's row in a [`ServiceSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppStatus {
    /// Application id.
    pub app_id: usize,
    /// Application name.
    pub name: String,
    /// Registered accesses-per-instruction ratio.
    pub api: f64,
    /// Current smoothed `APC_alone` estimate (Eq. 12–13 + EWMA), absent
    /// until the first non-idle epoch.
    pub apc_alone_estimate: Option<f64>,
    /// Admitted QoS target IPC, if any.
    pub qos_target: Option<f64>,
    /// Telemetry deltas queued for the next epoch.
    pub queued: usize,
    /// Deltas shed (oldest-first) because the queue was full.
    pub shed: u64,
    /// LLC ways most recently published for this application by a
    /// coordinated solve (`None` under bandwidth-only schemes and for
    /// replies from pre-coordinated servers).
    pub llc_ways: Option<usize>,
}

/// Machine-readable error category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame itself was malformed (the connection closes after this).
    BadFrame,
    /// The frame's version byte named a codec this build does not speak
    /// (the connection closes after this). Distinct from [`BadFrame`]
    /// (`ErrorCode::BadFrame`) so a newer client talking to an older
    /// server gets a signal it can downgrade on.
    UnsupportedVersion,
    /// `app_id` does not name a registered application.
    UnknownApp,
    /// The scheme name failed to parse.
    UnknownScheme,
    /// A numeric argument was non-finite or out of domain.
    InvalidArgument,
    /// The engine has no published shares / no estimate yet.
    NotReady,
    /// Eq. 11: the target exceeds the application's standalone IPC.
    QosUnreachable,
    /// Eq. 11: reservations would exceed the total bandwidth `B`.
    QosInfeasible,
    /// The epoch solve failed for the requested inputs.
    SolveFailed,
    /// The service is shutting down.
    ShuttingDown,
}

/// A structured error reply: a stable [`ErrorCode`] plus a human-readable
/// message. Errors never tear down the service; frame-level errors tear
/// down only the offending connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::Telemetry {
            app_id: 3,
            accesses: 1_000,
            shared_cycles: 100_000,
            interference_cycles: 40_000,
        }
    }

    #[test]
    fn round_trip_request() {
        let req = sample_request();
        let frame = encode(&req).unwrap();
        let (back, used): (Request, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let frame = encode(&Request::Snapshot).unwrap();
        for cut in 0..frame.len() {
            let r: Result<Option<(Request, usize)>, FrameError> = decode(&frame[..cut]);
            assert_eq!(r.unwrap(), None, "cut at {cut} should be incomplete");
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut buf = encode(&Request::Snapshot).unwrap();
        buf.extend(encode(&sample_request()).unwrap());
        let (first, used): (Request, usize) = decode(&buf).unwrap().unwrap();
        assert_eq!(first, Request::Snapshot);
        let (second, used2): (Request, usize) = decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, sample_request());
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn bad_magic_version_reserved_rejected() {
        let good = encode(&Request::Snapshot).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode::<Request>(&bad),
            Err(FrameError::BadMagic { .. })
        ));

        // Every version this build does not speak is rejected with the
        // version-specific error (not BadFrame), for both codec bodies.
        for unknown in [0u8, 3, 4, 0x7f, 0xff] {
            let mut bad = good.clone();
            bad[2] = unknown;
            assert_eq!(
                decode::<Request>(&bad),
                Err(FrameError::UnsupportedVersion { got: unknown }),
                "version {unknown} must be rejected"
            );
            assert_eq!(
                FrameError::UnsupportedVersion { got: unknown }.error_code(),
                ErrorCode::UnsupportedVersion
            );
        }

        let mut bad = good;
        bad[3] = 7;
        let err = decode::<Request>(&bad).unwrap_err();
        assert_eq!(err, FrameError::NonZeroReserved { got: 7 });
        assert_eq!(err.error_code(), ErrorCode::BadFrame);
    }

    #[test]
    fn known_versions_map_to_their_codecs() {
        assert_eq!(Codec::from_version(WIRE_VERSION), Some(Codec::Json));
        assert_eq!(
            Codec::from_version(WIRE_VERSION_BINARY),
            Some(Codec::Binary)
        );
        assert_eq!(Codec::Json.version(), WIRE_VERSION);
        assert_eq!(Codec::Binary.version(), WIRE_VERSION_BINARY);
        for unknown in [0u8, 3, 255] {
            assert_eq!(Codec::from_version(unknown), None);
        }
        assert_eq!("json".parse::<Codec>(), Ok(Codec::Json));
        assert_eq!("binary".parse::<Codec>(), Ok(Codec::Binary));
        assert!("cbor".parse::<Codec>().is_err());

        // The version byte on the wire matches the codec that encoded it,
        // and decode_frame reports the codec it actually saw.
        for codec in [Codec::Json, Codec::Binary] {
            let frame = encode_with(&Request::Snapshot, codec).unwrap();
            assert_eq!(frame[2], codec.version());
            let (back, used, seen): (Request, usize, Codec) =
                decode_frame(&frame).unwrap().unwrap();
            assert_eq!(back, Request::Snapshot);
            assert_eq!(used, frame.len());
            assert_eq!(seen, codec, "decode must report the frame's codec");
        }
    }

    #[test]
    fn binary_round_trip_matches_json() {
        let messages: Vec<Request> = vec![
            sample_request(),
            Request::Register {
                name: "lbm/t0".into(),
                api: 0.015,
                cache: None,
            },
            Request::Register {
                name: "llcfit".into(),
                api: 0.02,
                cache: Some(CacheSpec {
                    api_llc: 0.05,
                    cpi_base: 1.2,
                    mem_penalty: 80.0,
                    mrc: vec![
                        MrcPoint {
                            ways: 1.0,
                            miss_ratio: 0.9,
                        },
                        MrcPoint {
                            ways: 16.0,
                            miss_ratio: 0.05,
                        },
                    ],
                }),
            },
            Request::GetShares { scheme: None },
            Request::GetShares {
                scheme: Some("square-root".into()),
            },
            Request::QosAdmit {
                app_id: 2,
                ipc_target: 0.75,
            },
            Request::Shutdown,
        ];
        for msg in &messages {
            let bin = encode_with(msg, Codec::Binary).unwrap();
            let json = encode_with(msg, Codec::Json).unwrap();
            let (from_bin, _): (Request, usize) = decode(&bin).unwrap().unwrap();
            let (from_json, _): (Request, usize) = decode(&json).unwrap().unwrap();
            assert_eq!(&from_bin, msg, "binary round trip");
            assert_eq!(from_bin, from_json, "codecs must agree on {msg:?}");
        }
    }

    #[test]
    fn binary_incomplete_frames_ask_for_more() {
        let frame = encode_with(&sample_request(), Codec::Binary).unwrap();
        for cut in 0..frame.len() {
            let r: Result<Option<(Request, usize)>, FrameError> = decode(&frame[..cut]);
            assert_eq!(r.unwrap(), None, "cut at {cut} should be incomplete");
        }
    }

    #[test]
    fn binary_corruption_rejected_without_panic() {
        // Truncating the *payload* while fixing up the header length must
        // produce BadPayload (a complete frame with a truncated value),
        // never a panic.
        let full = encode_with(&sample_request(), Codec::Binary).unwrap();
        let payload = &full[HEADER_LEN..];
        for cut in 0..payload.len() {
            let mut frame = Vec::from(MAGIC);
            frame.push(WIRE_VERSION_BINARY);
            frame.push(0);
            frame.extend_from_slice(&(cut as u32).to_be_bytes());
            frame.extend_from_slice(&payload[..cut]);
            assert!(
                matches!(
                    decode::<Request>(&frame),
                    Err(FrameError::BadPayload { .. })
                ),
                "payload cut at {cut} must be BadPayload"
            );
        }

        // A lying collection count cannot trigger a proportional
        // allocation: tag 7 (array) claiming 2^32 elements in a payload
        // with zero element bytes.
        let lying: Vec<u8> = vec![7, 0x80, 0x80, 0x80, 0x80, 0x10];
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION_BINARY);
        frame.push(0);
        frame.extend_from_slice(&(lying.len() as u32).to_be_bytes());
        frame.extend_from_slice(&lying);
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn binary_value_tree_round_trips_edge_cases() {
        use serde::Value;
        let tree = Value::Object(vec![
            ("null".into(), Value::Null),
            ("t".into(), Value::Bool(true)),
            ("f".into(), Value::Bool(false)),
            ("zero".into(), Value::U64(0)),
            ("max".into(), Value::U64(u64::MAX)),
            ("imin".into(), Value::I64(i64::MIN)),
            ("imax".into(), Value::I64(i64::MAX)),
            ("neg".into(), Value::I64(-1)),
            ("pi".into(), Value::F64(std::f64::consts::PI)),
            ("negzero".into(), Value::F64(-0.0)),
            ("empty".into(), Value::String(String::new())),
            ("uni".into(), Value::String("βi ≤ 1 ∑".into())),
            ("arr".into(), Value::Array(vec![])),
            (
                "nested".into(),
                Value::Array(vec![Value::Object(vec![(
                    "k".into(),
                    Value::Array(vec![Value::U64(300), Value::I64(-300)]),
                )])]),
            ),
        ]);
        let mut bytes = Vec::new();
        binary::encode_value(&tree, &mut bytes);
        let back = binary::decode_value(&bytes).unwrap();
        // Bitwise f64 comparison (NaN-free tree, but -0.0 must survive).
        assert_eq!(back, tree);
        match back.get("negzero") {
            Some(Value::F64(f)) => assert!(f.is_sign_negative()),
            other => panic!("negzero decoded as {other:?}"),
        }

        // Trailing garbage after a complete value is rejected.
        bytes.push(0);
        assert!(binary::decode_value(&bytes).is_err());

        // Nesting past MAX_DEPTH is rejected, not a stack overflow.
        let mut deep = Value::U64(1);
        for _ in 0..(binary::MAX_DEPTH + 8) {
            deep = Value::Array(vec![deep]);
        }
        let mut bytes = Vec::new();
        binary::encode_value(&deep, &mut bytes);
        assert!(binary::decode_value(&bytes).is_err());
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&(u32::MAX).to_be_bytes());
        // Only the header is present — the bogus length alone must reject.
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::Oversized { .. })
        ));
        assert!(encode(&vec!["x".repeat(1024); 80]).is_err());
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(&[0xff, 0xfe, 0x00, 0x01]);
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::BadPayload { .. })
        ));

        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&2u32.to_be_bytes());
        frame.extend_from_slice(b"{}");
        assert!(matches!(
            decode::<Request>(&frame),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn metrics_round_trip() {
        let frame = encode(&Request::Metrics).unwrap();
        let (back, _): (Request, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, Request::Metrics);

        let reg = bwpart_obs::Registry::new();
        reg.counter("bwpartd_epochs_total").add(3);
        reg.gauge("bwpartd_app_share{app=\"lbm\"}").set(0.4);
        reg.histogram("bwpartd_epoch_latency_seconds").record(1e-4);
        let snapshot = reg.snapshot();
        let resp = Response::Metrics(MetricsReply {
            epoch: 3,
            prometheus: snapshot.render_prometheus(),
            snapshot,
        });
        let frame = encode(&resp).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::Shares(SharesReply {
            epoch: 12,
            outcome: SharesOutcome {
                scheme: "square-root".into(),
                bandwidth: 0.0095,
                beta: vec![0.25, 0.75],
                allocation: vec![0.0025, 0.007],
            },
            apps: vec![
                AppShare {
                    app_id: 0,
                    name: "milc".into(),
                    beta: 0.25,
                    allocation: 0.0025,
                    resources: None,
                },
                AppShare {
                    app_id: 1,
                    name: "lbm".into(),
                    beta: 0.75,
                    allocation: 0.007,
                    resources: Some(vec![
                        ResourceShare {
                            kind: "bandwidth".into(),
                            share: 0.75,
                            amount: 0.007,
                        },
                        ResourceShare {
                            kind: "llc-ways".into(),
                            share: 0.125,
                            amount: 2.0,
                        },
                    ]),
                },
            ],
            degraded: false,
        });
        let frame = encode(&resp).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, resp);

        let err = Response::Error(ServiceError::new(
            ErrorCode::QosInfeasible,
            "reservations exceed B",
        ));
        let frame = encode(&err).unwrap();
        let (back, _): (Response, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(back, err);
    }

    /// Frames emitted before the coordinated extension lack the `cache`
    /// and `resources` fields entirely; both must decode to `None` so old
    /// clients and old servers interoperate with this build.
    #[test]
    fn legacy_frames_without_multiresource_fields_still_decode() {
        let legacy = br#"{"Register":{"name":"lbm","api":0.015}}"#;
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&(legacy.len() as u32).to_be_bytes());
        frame.extend_from_slice(legacy);
        let (req, _): (Request, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(
            req,
            Request::Register {
                name: "lbm".into(),
                api: 0.015,
                cache: None,
            }
        );

        let legacy_share = br#"{"app_id":1,"name":"lbm","beta":0.75,"allocation":0.007}"#;
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0);
        frame.extend_from_slice(&(legacy_share.len() as u32).to_be_bytes());
        frame.extend_from_slice(legacy_share);
        let (share, _): (AppShare, usize) = decode(&frame).unwrap().unwrap();
        assert_eq!(share.resources, None);
        assert!((share.beta - 0.75).abs() < 1e-12);
    }
}
