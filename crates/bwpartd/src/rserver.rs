//! The reactor TCP front-end: a fixed pool of nonblocking event-loop
//! workers on the vendored `mio` readiness substrate (DESIGN.md §16).
//!
//! Where [`crate::server`] spends a thread per connection, this front-end
//! multiplexes hundreds of pipelined connections over a few workers:
//!
//! * **Worker 0** owns the nonblocking listener. Accepted connections are
//!   handed round-robin to the workers through each worker's
//!   [`Mailbox`] + [`Waker`] pair (the wake-dedup protocol is
//!   model-checked under loomlite — see `vendor/mio/src/models.rs`).
//! * **Every worker** runs one [`Poller`] (epoll on Linux, poll(2)
//!   fallback) over its own connections, draining reads to `WouldBlock`,
//!   decoding frames incrementally, dispatching through the same
//!   [`handle_request`](crate::server) as the threaded front-end, and
//!   answering each request in the codec its frame arrived in.
//! * **Epoch ticks ride the timer wheel.** Shard `s` of the
//!   [`ShardMap`] belongs to worker `s % workers`, so with ≥ 2 workers
//!   and ≥ 2 shards, epoch solves genuinely overlap. A second recurring
//!   timer sweeps idle connections past the read timeout.
//!
//! Backpressure is explicit: a connection whose write buffer exceeds
//! [`WRITE_BUFFER_CAP`] stops having its buffered requests processed
//! until the peer drains replies — request bytes wait in the read buffer,
//! and the socket's own receive window pushes back from there. Write
//! interest is registered only while a reply is actually pending, so the
//! steady state costs one readable registration per connection.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mio::{wake_pair, Event, Events, Interest, Mailbox, Poller, TimerWheel, Token, WakeRx, Waker};

use crate::engine::ShardMap;
use crate::protocol::{self, Codec, Request, Response, ServiceError};
use crate::server::{handle_request, ServeConfig, ServerHandle};

/// A connection's reply backlog beyond which its requests stop being
/// processed until the peer reads (1 MiB ≈ 16 maximum-size frames).
pub const WRITE_BUFFER_CAP: usize = 1 << 20;

/// Wake pipe token.
const WAKE: Token = Token(0);
/// Listener token (worker 0 only).
const LISTEN: Token = Token(1);
/// First connection-slot token; slot `i` is token `i + CONN_BASE`.
const CONN_BASE: usize = 2;
/// Timer-wheel cookie: run this worker's shard epochs.
const TIMER_EPOCH: Token = Token(usize::MAX);
/// Timer-wheel cookie: sweep idle connections.
const TIMER_SWEEP: Token = Token(usize::MAX - 1);

/// Ceiling on one poll's block time: keeps the shutdown flag responsive
/// even if every timer is far out (wakers cut the latency further).
const MAX_POLL: Duration = Duration::from_millis(100);

/// Start the reactor front-end (called through
/// [`serve`](crate::server::serve) when `cfg.reactor` is set).
pub(crate) fn serve_reactor(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let map = ShardMap::new(cfg.engine.clone(), cfg.shards)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let map = Arc::new(map);
    let shutdown = Arc::new(AtomicBool::new(false));
    let nworkers = effective_workers(cfg.workers);

    // Build every worker's wake pair up front so each worker (and the
    // handle) can wake all of them: shutdown must interrupt blocked polls
    // no matter which worker learns of it first.
    let mut wake_rxs = Vec::with_capacity(nworkers);
    let mut wakers = Vec::with_capacity(nworkers);
    for _ in 0..nworkers {
        let (tx, rx) = wake_pair()?;
        wakers.push(tx);
        wake_rxs.push(rx);
    }
    let mailboxes: Arc<Vec<Mailbox<TcpStream>>> =
        Arc::new((0..nworkers).map(|_| Mailbox::new()).collect());
    let handle_wakers = wakers
        .iter()
        .map(|w| w.try_clone())
        .collect::<std::io::Result<Vec<_>>>()?;

    let mut threads = Vec::with_capacity(nworkers);
    let mut listener = Some(listener);
    for (idx, rx) in wake_rxs.into_iter().enumerate() {
        let peer_wakers = wakers
            .iter()
            .map(|w| w.try_clone())
            .collect::<std::io::Result<Vec<_>>>()?;
        let worker = Worker::new(
            idx,
            nworkers,
            if idx == 0 { listener.take() } else { None },
            rx,
            peer_wakers,
            Arc::clone(&mailboxes),
            Arc::clone(&map),
            Arc::clone(&shutdown),
            &cfg,
        )?;
        threads.push(
            std::thread::Builder::new()
                .name(format!("bwpartd-reactor-{idx}"))
                .spawn(move || worker.run())?,
        );
    }

    Ok(ServerHandle {
        addr,
        map,
        shutdown,
        wakers: handle_wakers,
        threads,
    })
}

/// `0` → min(4, available parallelism); anything else is taken as-is.
fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2)
        .max(1)
}

/// One nonblocking connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Incrementally buffered request bytes (complete frames are drained
    /// off the front).
    rbuf: Vec<u8>,
    /// Encoded replies not yet accepted by the socket; `wpos` marks the
    /// already-written prefix (compacted once it grows past half).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Codec of the most recent well-formed frame: frame-error replies go
    /// out in it (JSON before the first frame).
    last_codec: Codec,
    /// Peer half-closed its write side: finish flushing, then close.
    read_closed: bool,
    /// Fatal frame error or shutdown reply queued: close once flushed.
    closing: bool,
    /// Currently registered with write interest.
    want_write: bool,
    last_active: Instant,
}

impl Conn {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// What a connection event handler decided about the connection's fate.
enum Fate {
    Keep,
    Close,
}

struct Worker {
    idx: usize,
    nworkers: usize,
    listener: Option<TcpListener>,
    poller: Poller,
    events: Events,
    wake_rx: WakeRx,
    /// All workers' wakers (index = worker), for shutdown broadcast and
    /// round-robin handoff.
    wakers: Vec<Waker>,
    mailboxes: Arc<Vec<Mailbox<TcpStream>>>,
    map: Arc<ShardMap>,
    shutdown: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    wheel: TimerWheel,
    epoch_interval: Duration,
    read_timeout: Duration,
    sweep_interval: Duration,
    /// Worker 0's round-robin cursor over workers for accepted sockets.
    next_worker: usize,
}

impl Worker {
    // One-time wiring of everything a worker owns; a builder would add a
    // type for a single private call site.
    #[allow(clippy::too_many_arguments)]
    fn new(
        idx: usize,
        nworkers: usize,
        listener: Option<TcpListener>,
        wake_rx: WakeRx,
        wakers: Vec<Waker>,
        mailboxes: Arc<Vec<Mailbox<TcpStream>>>,
        map: Arc<ShardMap>,
        shutdown: Arc<AtomicBool>,
        cfg: &ServeConfig,
    ) -> std::io::Result<Worker> {
        let mut poller = Poller::new()?;
        poller.register(wake_rx.fd(), WAKE, Interest::READABLE)?;
        if let Some(l) = &listener {
            poller.register(l.as_raw_fd(), LISTEN, Interest::READABLE)?;
        }
        // Epoch quantum: fine enough that a fraction of the epoch
        // interval lands on a boundary, coarse enough that an idle wheel
        // advance visits few slots.
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 256);
        wheel.schedule(cfg.epoch_interval, TIMER_EPOCH);
        let sweep_interval = (cfg.read_timeout / 4).max(Duration::from_millis(25));
        wheel.schedule(sweep_interval, TIMER_SWEEP);
        Ok(Worker {
            idx,
            nworkers,
            listener,
            poller,
            events: Events::with_capacity(256),
            wake_rx,
            wakers,
            mailboxes,
            map,
            shutdown,
            conns: Vec::new(),
            free: Vec::new(),
            wheel,
            epoch_interval: cfg.epoch_interval,
            read_timeout: cfg.read_timeout,
            sweep_interval,
            next_worker: 0,
        })
    }

    fn run(mut self) {
        let mut fired: Vec<Token> = Vec::new();
        let mut adopted: Vec<TcpStream> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            let timeout = self.wheel.next_timeout().unwrap_or(MAX_POLL).min(MAX_POLL);
            if self.poller.poll(&mut self.events, Some(timeout)).is_err() {
                // A failed poll is unrecoverable for this worker; flag the
                // whole service down rather than spinning blind.
                self.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let events: Vec<Event> = self.events.iter().copied().collect();
            for ev in events {
                match ev.token() {
                    WAKE => self.wake_rx.drain(),
                    LISTEN => self.accept_burst(),
                    Token(t) => self.conn_event(t - CONN_BASE, ev),
                }
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Adopt handed-off connections whether or not the wake edge
            // was observed this pass (the mailbox protocol guarantees a
            // wake is pending for anything left here).
            adopted.clear();
            self.mailboxes[self.idx].drain(&mut adopted);
            for stream in adopted.drain(..) {
                self.adopt(stream);
            }
            fired.clear();
            self.wheel.poll_expired(&mut fired);
            for t in fired.drain(..) {
                match t {
                    TIMER_EPOCH => {
                        self.tick_epochs();
                        self.wheel.schedule(self.epoch_interval, TIMER_EPOCH);
                    }
                    TIMER_SWEEP => {
                        self.sweep_idle();
                        self.wheel.schedule(self.sweep_interval, TIMER_SWEEP);
                    }
                    _ => {}
                }
            }
        }
        // Shutdown: wake the other workers (first one here pays the
        // broadcast; wake() on an already-woken pipe coalesces), close
        // every owned connection, and drop any handed-off sockets still
        // in the mailbox.
        for w in &self.wakers {
            let _ = w.wake();
        }
        let mut leftovers = Vec::new();
        self.mailboxes[self.idx].drain(&mut leftovers);
        drop(leftovers);
    }

    /// Run epochs on the shards this worker owns (`s % nworkers == idx`).
    fn tick_epochs(&self) {
        let mut s = self.idx;
        while s < self.map.shard_count() {
            let _ = self.map.run_shard_epochs(s);
            s += self.nworkers;
        }
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let stale = self.conns[slot]
                .as_ref()
                .is_some_and(|c| now.duration_since(c.last_active) >= self.read_timeout);
            if stale {
                self.close(slot);
            }
        }
    }

    /// Accept until `WouldBlock`, handing sockets round-robin across the
    /// pool (self included — a direct adopt skips the mailbox).
    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let target = self.next_worker % self.nworkers;
                    self.next_worker = self.next_worker.wrapping_add(1);
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        let waker = &self.wakers[target];
                        self.mailboxes[target].push(stream, || {
                            let _ = waker.wake();
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient accept failure (aborted handshake, fd
                // pressure): keep serving what we have.
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = Token(slot + CONN_BASE);
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            last_codec: Codec::Json,
            read_closed: false,
            closing: false,
            want_write: false,
            last_active: Instant::now(),
        });
    }

    fn conn_event(&mut self, slot: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // stale event for a closed slot
        };
        let mut fate = Fate::Keep;
        if ev.is_readable() && !conn.read_closed {
            fate = Self::fill_read_buffer(conn);
        }
        if matches!(fate, Fate::Keep) {
            fate = Self::process_frames(conn, &self.map, &self.shutdown);
        }
        if matches!(fate, Fate::Keep) && (ev.is_writable() || conn.pending() > 0) {
            fate = Self::flush(conn);
        }
        if matches!(fate, Fate::Keep) {
            // A half-closed or closing connection with nothing left to
            // flush is done.
            if (conn.read_closed || conn.closing) && conn.pending() == 0 {
                fate = Fate::Close;
            }
        }
        match fate {
            Fate::Close => self.close(slot),
            Fate::Keep => self.update_interest(slot),
        }
    }

    /// Drain the socket to `WouldBlock` (level-triggered readiness makes
    /// this mandatory on epoll *and* sufficient on poll(2)).
    fn fill_read_buffer(conn: &mut Conn) -> Fate {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return Fate::Keep; // flush what we owe, then close
                }
                Ok(n) => {
                    conn.last_active = Instant::now();
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Fate::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Fate::Close,
            }
        }
    }

    /// Decode and dispatch buffered frames until the buffer runs dry, the
    /// reply backlog hits the cap, or the connection turns fatal.
    fn process_frames(conn: &mut Conn, map: &ShardMap, shutdown: &AtomicBool) -> Fate {
        while !conn.closing && conn.pending() < WRITE_BUFFER_CAP {
            match protocol::decode_frame::<Request>(&conn.rbuf) {
                Ok(Some((req, used, codec))) => {
                    conn.rbuf.drain(..used);
                    conn.last_codec = codec;
                    let is_shutdown = matches!(req, Request::Shutdown);
                    let resp = handle_request(req, map, shutdown);
                    if Self::queue_response(conn, &resp, codec).is_err() {
                        return Fate::Close;
                    }
                    if is_shutdown {
                        conn.closing = true;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Malformed frame: best-effort structured reply
                    // (UnsupportedVersion for unknown version bytes, see
                    // FrameError::error_code), then close once flushed.
                    let resp = Response::Error(ServiceError::new(e.error_code(), e.to_string()));
                    let _ = Self::queue_response(conn, &resp, conn.last_codec);
                    conn.closing = true;
                }
            }
        }
        Fate::Keep
    }

    fn queue_response(conn: &mut Conn, resp: &Response, codec: Codec) -> Result<(), ()> {
        let frame = protocol::encode_with(resp, codec).map_err(|_| ())?;
        // Compact the consumed prefix before growing (amortized O(1)).
        if conn.wpos > 0 && conn.wpos * 2 >= conn.wbuf.len() {
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
        conn.wbuf.extend_from_slice(&frame);
        Ok(())
    }

    /// Write pending reply bytes until `WouldBlock` or empty.
    fn flush(conn: &mut Conn) -> Fate {
        while conn.pending() > 0 {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => {
                    conn.wpos += n;
                    conn.last_active = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Fate::Close,
            }
        }
        if conn.pending() == 0 {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        Fate::Keep
    }

    /// Keep the registered interest in sync with the connection's state:
    /// write interest only while replies are pending (so an idle
    /// connection costs one readable registration), read interest until
    /// the peer half-closes.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let want_write = conn.pending() > 0;
        if want_write == conn.want_write {
            return;
        }
        // A half-closed connection only survives while a flush is
        // pending (otherwise conn_event closed it), so `read_closed`
        // implies write-only interest here.
        let interest = if conn.read_closed {
            Interest::WRITABLE
        } else if want_write {
            Interest::READABLE.add(Interest::WRITABLE)
        } else {
            Interest::READABLE
        };
        let token = Token(slot + CONN_BASE);
        if self
            .poller
            .reregister(conn.stream.as_raw_fd(), token, interest)
            .is_err()
        {
            self.close(slot);
            return;
        }
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.want_write = want_write;
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(slot);
            // conn (and its socket) drops here.
        }
    }
}
