//! Property-based tests for the `bwpartd` wire codec.
//!
//! Pure byte-level tests — no sockets, no threads — so the whole file runs
//! under miri (the CI miri job includes it alongside the unit tests).

// Strategy helpers run outside #[test] functions, so the tests exemption
// does not reach them; unwraps on generator-validated data are fine.
#![allow(clippy::unwrap_used)]

use bwpart_core::SharesOutcome;
use bwpartd::protocol::{
    self, AppShare, CacheSpec, Codec, ErrorCode, FrameError, MrcPoint, Request, ResourceShare,
    Response, ServiceError, SharesReply, HEADER_LEN, MAGIC, MAX_PAYLOAD, WIRE_VERSION,
    WIRE_VERSION_BINARY,
};
use proptest::prelude::*;

/// Strategy: every request variant with adversarially-ranged fields
/// (ids beyond anything registered, u64 counters up to the saturation
/// range, schemes both valid and bogus).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..8,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        1e-6f64..1.0,
    )
        .prop_map(|(variant, a, n, s, i, x)| match variant {
            0 => Request::Register {
                name: format!("app-{}", a % 1_000),
                api: x,
                // Half the registrations carry a cache spec so the
                // Option<CacheSpec> field round-trips in both states.
                cache: (a % 2 == 0).then(|| CacheSpec {
                    api_llc: x,
                    cpi_base: 1.0 + x,
                    mem_penalty: 120.0 * x,
                    mrc: vec![
                        MrcPoint {
                            ways: 1.0,
                            miss_ratio: 1.0 - x / 2.0,
                        },
                        MrcPoint {
                            ways: 16.0,
                            miss_ratio: x / 2.0,
                        },
                    ],
                }),
            },
            1 => Request::Telemetry {
                app_id: (a % 256) as usize,
                accesses: n,
                shared_cycles: s,
                interference_cycles: i,
            },
            2 => Request::GetShares { scheme: None },
            3 => {
                let names = [
                    "square-root",
                    "equal",
                    "proportional",
                    "power:0.75",
                    "bogus",
                ];
                Request::GetShares {
                    scheme: Some(names[(a % names.len() as u64) as usize].to_string()),
                }
            }
            4 => Request::QosAdmit {
                app_id: (a % 256) as usize,
                ipc_target: x,
            },
            5 => Request::Snapshot,
            6 => Request::Metrics,
            _ => Request::Shutdown,
        })
}

/// Strategy: a shares reply with 1..=8 applications (the largest response
/// type, exercising nested structs, vectors, and floats).
fn arb_shares_response() -> impl Strategy<Value = Response> {
    (
        prop::collection::vec((1e-6f64..1.0, 1e-9f64..0.01), 1..=8),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(rows, epoch, degraded)| {
            let total: f64 = rows.iter().map(|(b, _)| b).sum();
            let beta: Vec<f64> = rows.iter().map(|(b, _)| b / total).collect();
            let allocation: Vec<f64> = rows.iter().map(|(_, a)| *a).collect();
            let apps = rows
                .iter()
                .enumerate()
                .map(|(id, _)| AppShare {
                    app_id: id,
                    name: format!("app{id}"),
                    beta: beta[id],
                    allocation: allocation[id],
                    // Alternate rows carry a coordinated resource
                    // breakdown so both Option states round-trip.
                    resources: (id % 2 == 1).then(|| {
                        vec![
                            ResourceShare {
                                kind: "bandwidth".into(),
                                share: beta[id],
                                amount: allocation[id],
                            },
                            ResourceShare {
                                kind: "llc-ways".into(),
                                share: 0.25,
                                amount: 4.0,
                            },
                        ]
                    }),
                })
                .collect();
            Response::Shares(SharesReply {
                epoch,
                outcome: SharesOutcome {
                    scheme: "square-root".into(),
                    bandwidth: 0.0095,
                    beta,
                    allocation,
                },
                apps,
                degraded,
            })
        })
}

proptest! {
    /// Requests survive an encode → decode round trip exactly, and the
    /// decoder consumes exactly the frame it parsed.
    #[test]
    fn request_round_trip(req in arb_request()) {
        let frame = protocol::encode(&req).unwrap();
        let (back, used): (Request, usize) = protocol::decode(&frame).unwrap().unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(used, frame.len());
    }

    /// Responses (including float-heavy share vectors) round-trip exactly:
    /// the vendored JSON prints shortest-reparsing floats and exact u64s.
    #[test]
    fn response_round_trip(resp in arb_shares_response()) {
        let frame = protocol::encode(&resp).unwrap();
        let (back, used): (Response, usize) = protocol::decode(&frame).unwrap().unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(used, frame.len());
    }

    /// Any truncation of a valid frame asks for more bytes — never errors,
    /// never parses early.
    #[test]
    fn truncation_is_incomplete_not_error(req in arb_request(), cut_seed in any::<u64>()) {
        let frame = protocol::encode(&req).unwrap();
        let cut = (cut_seed % frame.len() as u64) as usize;
        let r: Option<(Request, usize)> = protocol::decode(&frame[..cut]).unwrap();
        prop_assert_eq!(r, None);
    }

    /// A frame followed by arbitrary trailing bytes parses identically and
    /// reports the same consumed length (pipelining safety).
    #[test]
    fn trailing_bytes_do_not_confuse_framing(
        req in arb_request(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = protocol::encode(&req).unwrap();
        let mut buf = frame.clone();
        buf.extend_from_slice(&junk);
        let (back, used): (Request, usize) = protocol::decode(&buf).unwrap().unwrap();
        prop_assert_eq!(back, req);
        prop_assert_eq!(used, frame.len());
    }

    /// Arbitrary garbage never panics the decoder: it either wants more
    /// bytes or reports a structured frame error.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        match protocol::decode::<Request>(&bytes) {
            Ok(None) | Err(_) => {}
            Ok(Some((_, used))) => {
                // Astronomically unlikely, but if garbage happens to be a
                // valid frame the consumed length must still be sane.
                prop_assert!(used <= bytes.len());
            }
        }
    }

    /// Corrupting any single header byte of a valid frame yields a
    /// structured error or an incomplete-read — never a bogus parse of a
    /// *different* message and never a panic.
    #[test]
    fn header_corruption_is_detected(req in arb_request(), pos in 0usize..4, bit in 0u8..8) {
        let mut frame = protocol::encode(&req).unwrap();
        frame[pos] ^= 1 << bit;
        match protocol::decode::<Request>(&frame) {
            Err(
                FrameError::BadMagic { .. }
                | FrameError::UnsupportedVersion { .. }
                | FrameError::NonZeroReserved { .. },
            ) => {}
            other => prop_assert!(false, "corrupt header accepted: {other:?}"),
        }
    }
}

proptest! {
    /// The v2 binary codec round-trips every request variant exactly, and
    /// decodes to the same typed value a JSON frame of the same message
    /// does (the two codecs are interchangeable encodings, not dialects).
    #[test]
    fn binary_request_round_trip_matches_json(req in arb_request()) {
        let bin = protocol::encode_with(&req, Codec::Binary).unwrap();
        let (from_bin, used, codec): (Request, usize, Codec) =
            protocol::decode_frame(&bin).unwrap().unwrap();
        prop_assert_eq!(codec, Codec::Binary);
        prop_assert_eq!(used, bin.len());
        prop_assert_eq!(&from_bin, &req);

        let json = protocol::encode_with(&req, Codec::Json).unwrap();
        let (from_json, _): (Request, usize) = protocol::decode(&json).unwrap().unwrap();
        prop_assert_eq!(from_bin, from_json);
    }

    /// Float-heavy responses survive the binary codec bit-exactly (f64s
    /// travel as 8 raw little-endian bytes, not decimal strings).
    #[test]
    fn binary_response_round_trip(resp in arb_shares_response()) {
        let frame = protocol::encode_with(&resp, Codec::Binary).unwrap();
        let (back, used): (Response, usize) = protocol::decode(&frame).unwrap().unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(used, frame.len());
    }

    /// Truncating a binary frame anywhere asks for more bytes — never
    /// errors, never parses early.
    #[test]
    fn binary_truncation_is_incomplete_not_error(req in arb_request(), cut_seed in any::<u64>()) {
        let frame = protocol::encode_with(&req, Codec::Binary).unwrap();
        let cut = (cut_seed % frame.len() as u64) as usize;
        let r: Option<(Request, usize)> = protocol::decode(&frame[..cut]).unwrap();
        prop_assert_eq!(r, None);
    }

    /// Flipping any single bit of a binary frame's payload never panics
    /// the decoder: it either reports a structured error, wants more
    /// bytes, or (when the flip lands in a value) parses some message.
    #[test]
    fn binary_bit_flips_never_panic(
        req in arb_request(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = protocol::encode_with(&req, Codec::Binary).unwrap();
        let pos = HEADER_LEN + (pos_seed as usize % (frame.len() - HEADER_LEN).max(1));
        frame[pos] ^= 1 << bit;
        match protocol::decode::<Request>(&frame) {
            Ok(None) | Err(_) => {}
            Ok(Some((_, used))) => prop_assert!(used <= frame.len()),
        }
    }

    /// Arbitrary garbage after a valid binary header never panics and
    /// never over-consumes (the binary cursor is bounds-checked, not
    /// length-trusting).
    #[test]
    fn binary_garbage_payload_never_panics(
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut frame = Vec::from(MAGIC);
        frame.push(WIRE_VERSION_BINARY);
        frame.push(0);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        match protocol::decode::<Request>(&frame) {
            Ok(None) | Err(_) => {}
            Ok(Some((_, used))) => prop_assert!(used <= frame.len()),
        }
    }

    /// A pipelined buffer can interleave the two codecs frame by frame:
    /// each decode consumes exactly one frame and reports its codec.
    #[test]
    fn mixed_codec_pipelining(reqs in prop::collection::vec(arb_request(), 1..6)) {
        let mut buf = Vec::new();
        let mut want = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let codec = if i % 2 == 0 { Codec::Binary } else { Codec::Json };
            buf.extend_from_slice(&protocol::encode_with(req, codec).unwrap());
            want.push((req.clone(), codec));
        }
        for (req, codec) in want {
            let (back, used, got): (Request, usize, Codec) =
                protocol::decode_frame(&buf).unwrap().unwrap();
            prop_assert_eq!(back, req);
            prop_assert_eq!(got, codec);
            buf.drain(..used);
        }
        prop_assert!(buf.is_empty());
    }
}

#[test]
fn unknown_version_bytes_map_to_unsupported_version() {
    // Every undefined version byte is a structured UnsupportedVersion
    // (never BadFrame) so servers can signal a downgrade path.
    let payload = b"{}";
    for v in [0u8, 3, 4, 7, 0x7f, 0xff] {
        let mut frame = Vec::from(MAGIC);
        frame.push(v);
        frame.push(0);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        let err = protocol::decode::<Request>(&frame).unwrap_err();
        assert_eq!(err, FrameError::UnsupportedVersion { got: v });
        assert_eq!(err.error_code(), ErrorCode::UnsupportedVersion);
    }
}

#[test]
fn oversized_is_rejected_from_header_alone() {
    let mut frame = Vec::from(MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(0);
    frame.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_be_bytes());
    assert_eq!(
        protocol::decode::<Request>(&frame),
        Err(FrameError::Oversized {
            len: MAX_PAYLOAD + 1
        })
    );
    // Exactly at the limit is fine (incomplete, waiting for payload).
    let mut frame = Vec::from(MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(0);
    frame.extend_from_slice(&(MAX_PAYLOAD as u32).to_be_bytes());
    assert_eq!(protocol::decode::<Request>(&frame), Ok(None));
}

#[test]
fn service_errors_round_trip_with_codes() {
    for code in [
        ErrorCode::BadFrame,
        ErrorCode::UnknownApp,
        ErrorCode::UnknownScheme,
        ErrorCode::InvalidArgument,
        ErrorCode::NotReady,
        ErrorCode::QosUnreachable,
        ErrorCode::QosInfeasible,
        ErrorCode::SolveFailed,
        ErrorCode::ShuttingDown,
    ] {
        let resp = Response::Error(ServiceError::new(code, "detail"));
        let frame = protocol::encode(&resp).unwrap();
        let (back, _): (Response, usize) = protocol::decode(&frame).unwrap().unwrap();
        assert_eq!(back, resp);
    }
}

#[test]
fn header_layout_is_stable() {
    // The wire format is a compatibility surface: magic, version, and
    // header length are pinned by tests so accidental renumbering fails.
    assert_eq!(MAGIC, *b"BW");
    assert_eq!(WIRE_VERSION, 1);
    assert_eq!(HEADER_LEN, 8);
    let frame = protocol::encode(&Request::Snapshot).unwrap();
    assert_eq!(&frame[0..2], b"BW");
    assert_eq!(frame[2], 1);
    assert_eq!(frame[3], 0);
    let len = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
    assert_eq!(HEADER_LEN + len, frame.len());
}
