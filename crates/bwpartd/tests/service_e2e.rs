//! End-to-end service tests over real TCP connections.
//!
//! The epoch timer is set far beyond test duration and epochs are driven
//! explicitly with [`ServerHandle::force_epoch`], so every test is
//! deterministic regardless of scheduler timing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bwpart_core::prelude::*;
use bwpart_mc::TelemetryDelta;
use bwpartd::protocol::{self, ErrorCode, Response};
use bwpartd::{serve, Client, ClientError, Codec, EngineConfig, ServeConfig, ServerHandle};

/// The paper's Mix-1-style four-application workload (name, API,
/// true standalone APC).
const APPS: [(&str, f64, f64); 4] = [
    ("lbm", 0.00939, 0.0531),
    ("libquantum", 0.00692, 0.0341),
    ("omnetpp", 0.00519, 0.0306),
    ("hmmer", 0.00529, 0.0046),
];

fn base_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig::new(PartitionScheme::SquareRoot, 0.0095),
        // Epochs are forced manually; the timer must never fire mid-test.
        epoch_interval: Duration::from_secs(3600),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

fn start_service() -> ServerHandle {
    serve(base_config()).expect("bind on loopback")
}

/// Tiny deterministic LCG for telemetry jitter (no rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One epoch's telemetry for an application whose true standalone rate is
/// `apc_alone`, observed with ±3% multiplicative noise and a noisy
/// interference fraction — the counters a real controller would report.
fn noisy_delta(apc_alone: f64, rng: &mut Lcg) -> TelemetryDelta {
    let shared_cycles = 900_000 + (rng.next_unit() * 200_000.0) as u64;
    let interference_fraction = 0.2 + 0.2 * rng.next_unit();
    let interference_cycles = (shared_cycles as f64 * interference_fraction) as u64;
    let observed_apc = apc_alone * (0.97 + 0.06 * rng.next_unit());
    // Invert Eq. 12: N = APC_alone × (T_shared − T_interference).
    let accesses = (observed_apc * (shared_cycles - interference_cycles) as f64) as u64;
    TelemetryDelta {
        accesses,
        shared_cycles,
        interference_cycles,
    }
}

/// The ISSUE's acceptance demo: four independent clients stream noisy
/// telemetry; after a handful of epochs the published shares are within 2%
/// of the offline closed-form Square_root solution on the true profiles.
#[test]
fn four_app_telemetry_converges_to_offline_square_root() {
    let handle = start_service();
    let mut rng = Lcg(0x5eed);

    let mut clients: Vec<(Client, usize, f64)> = APPS
        .iter()
        .map(|&(name, api, apc)| {
            let mut c = Client::connect(handle.addr()).expect("connect");
            let id = c.register(name, api).expect("register");
            (c, id, apc)
        })
        .collect();

    for _ in 0..8 {
        for (client, id, apc) in &mut clients {
            let epoch = client
                .telemetry(*id, noisy_delta(*apc, &mut rng))
                .expect("telemetry");
            assert!(epoch > 0);
        }
        handle.force_epoch();
    }

    let reply = clients[0].0.get_shares(None).expect("published shares");
    assert!(!reply.degraded);
    assert_eq!(reply.outcome.scheme, "square-root");

    // Offline closed-form reference on the *true* profiles.
    let profiles: Vec<AppProfile> = APPS
        .iter()
        .map(|&(name, api, apc)| AppProfile::new(name, api, apc).expect("profile"))
        .collect();
    let offline = PartitionScheme::SquareRoot
        .solve(&profiles, 0.0095)
        .expect("offline solve");

    for (row, want) in reply.apps.iter().zip(&offline.beta) {
        let got = row.beta;
        assert!(
            (got - want).abs() / want < 0.02,
            "{}: online β {got:.5} deviates >2% from offline β {want:.5}",
            row.name
        );
    }
    for (row, want) in reply.apps.iter().zip(&offline.allocation) {
        assert!(
            (row.allocation - want).abs() / want < 0.02,
            "{}: online allocation deviates >2% from offline",
            row.name
        );
    }
}

/// Shares are epoch-consistent: between two repartitions, every client
/// sees the identical reply (same epoch stamp, same numbers).
#[test]
fn shares_are_consistent_across_clients_within_an_epoch() {
    let handle = start_service();
    let mut rng = Lcg(42);

    let mut feeder = Client::connect(handle.addr()).expect("connect");
    let ids: Vec<usize> = APPS
        .iter()
        .map(|&(name, api, _)| feeder.register(name, api).expect("register"))
        .collect();
    for (&id, &(_, _, apc)) in ids.iter().zip(&APPS) {
        feeder
            .telemetry(id, noisy_delta(apc, &mut rng))
            .expect("telemetry");
    }
    handle.force_epoch();

    let mut observers: Vec<Client> = (0..3)
        .map(|_| Client::connect(handle.addr()).expect("connect"))
        .collect();
    let replies: Vec<_> = observers
        .iter_mut()
        .map(|c| c.get_shares(None).expect("shares"))
        .collect();
    assert_eq!(replies[0], replies[1]);
    assert_eq!(replies[1], replies[2]);

    // Queued telemetry alone must not change what is served mid-epoch.
    feeder
        .telemetry(ids[0], noisy_delta(APPS[0].2 * 3.0, &mut rng))
        .expect("telemetry");
    let again = observers[0].get_shares(None).expect("shares");
    assert_eq!(again, replies[0]);
}

/// QoS admission over the wire: a feasible target is granted (Eq. 11
/// reservation visible in the next epoch's allocation), an infeasible one
/// is rejected with a structured error, and the rejection does not disturb
/// the already-admitted application.
#[test]
fn qos_admission_and_structured_rejection_over_the_wire() {
    let handle = start_service();
    let mut rng = Lcg(7);

    let mut c = Client::connect(handle.addr()).expect("connect");
    let ids: Vec<usize> = APPS
        .iter()
        .map(|&(name, api, _)| c.register(name, api).expect("register"))
        .collect();
    for _ in 0..3 {
        for (&id, &(_, _, apc)) in ids.iter().zip(&APPS) {
            c.telemetry(id, noisy_delta(apc, &mut rng))
                .expect("telemetry");
        }
        handle.force_epoch();
    }

    // hmmer: IPC_alone ≈ 0.0046 / 0.00529 ≈ 0.87 — a 0.6 target fits.
    let grant = c.qos_admit(ids[3], 0.6).expect("admit hmmer");
    assert!((grant.reserved_apc - 0.6 * 0.00529).abs() < 1e-4);

    // omnetpp demanding 1.4 IPC needs ~0.0073 APC on top of hmmer's
    // ~0.0032 — more than B = 0.0095: structured rejection.
    let err = c.qos_admit(ids[2], 1.4).expect_err("must be rejected");
    let ClientError::Service(service_err) = err else {
        panic!("expected a structured service error, got {err}");
    };
    assert_eq!(service_err.code, ErrorCode::QosInfeasible);

    // The admitted app is untouched: next epoch still honours Eq. 11.
    for (&id, &(_, _, apc)) in ids.iter().zip(&APPS) {
        c.telemetry(id, noisy_delta(apc, &mut rng))
            .expect("telemetry");
    }
    handle.force_epoch();
    let reply = c.get_shares(None).expect("shares");
    let hmmer = &reply.apps[ids[3]];
    assert!(
        (hmmer.allocation - 0.6 * 0.00529).abs() / (0.6 * 0.00529) < 0.01,
        "admitted reservation drifted: {}",
        hmmer.allocation
    );
    let snap = c.snapshot().expect("snapshot");
    let admitted: Vec<_> = snap
        .apps
        .iter()
        .filter(|a| a.qos_target.is_some())
        .collect();
    assert_eq!(admitted.len(), 1);
    assert_eq!(admitted[0].app_id, ids[3]);

    // Unreachable target (above standalone IPC) is its own error code.
    let err = c.qos_admit(ids[3], 5.0).expect_err("unreachable");
    let ClientError::Service(service_err) = err else {
        panic!("expected a structured service error, got {err}");
    };
    assert_eq!(service_err.code, ErrorCode::QosUnreachable);
}

/// A malformed frame earns a `BadFrame` error and kills that connection —
/// and only that connection: a well-behaved client on another socket keeps
/// working.
#[test]
fn malformed_frame_isolates_one_connection() {
    let handle = start_service();

    let mut good = Client::connect(handle.addr()).expect("connect good");
    let id = good.register("survivor", 0.01).expect("register");

    // Raw socket speaking garbage.
    let mut bad = TcpStream::connect(handle.addr()).expect("connect bad");
    bad.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    bad.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let resp: Response = loop {
        match protocol::decode::<Response>(&buf) {
            Ok(Some((resp, _))) => break resp,
            Ok(None) => {}
            Err(e) => panic!("server reply did not frame: {e}"),
        }
        let n = bad.read(&mut chunk).expect("read error reply");
        assert!(n > 0, "connection closed before the error reply");
        buf.extend_from_slice(&chunk[..n]);
    };
    let Response::Error(service_err) = resp else {
        panic!("expected BadFrame error, got {resp:?}");
    };
    assert_eq!(service_err.code, ErrorCode::BadFrame);
    // The offending connection is closed...
    let n = bad.read(&mut chunk).expect("read EOF");
    assert_eq!(n, 0, "connection must close after a frame error");

    // ...while the good client still gets service.
    let epoch = good
        .telemetry(
            id,
            TelemetryDelta {
                accesses: 100,
                shared_cycles: 10_000,
                interference_cycles: 0,
            },
        )
        .expect("good client still served");
    assert!(epoch > 0);
    let snap = good.snapshot().expect("snapshot still works");
    assert_eq!(snap.apps.len(), 1);
}

/// An oversized length prefix is rejected from the header alone — the
/// server must not try to buffer 4 GiB because a client claimed it.
#[test]
fn oversized_frame_is_rejected_not_buffered() {
    let handle = start_service();
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    let mut frame = Vec::from(protocol::MAGIC);
    frame.push(protocol::WIRE_VERSION);
    frame.push(0);
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    s.write_all(&frame).expect("write header");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match protocol::decode::<Response>(&buf) {
            Ok(Some((Response::Error(e), _))) => {
                assert_eq!(e.code, ErrorCode::BadFrame);
                assert!(e.message.contains("exceeds"), "message: {}", e.message);
                break;
            }
            Ok(Some((other, _))) => panic!("unexpected reply {other:?}"),
            Ok(None) => {}
            Err(e) => panic!("unframed reply: {e}"),
        }
        let n = s.read(&mut chunk).expect("read");
        assert!(n > 0, "closed without an error reply");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Unknown app ids and unknown scheme names come back as structured errors
/// on a connection that stays usable.
#[test]
fn structured_errors_leave_connection_usable() {
    let handle = start_service();
    let mut c = Client::connect(handle.addr()).expect("connect");

    let err = c
        .telemetry(99, TelemetryDelta::default())
        .expect_err("unknown app");
    let ClientError::Service(e) = err else {
        panic!("expected service error");
    };
    assert_eq!(e.code, ErrorCode::UnknownApp);

    let err = c.get_shares(Some("bogus")).expect_err("unknown scheme");
    let ClientError::Service(e) = err else {
        panic!("expected service error");
    };
    assert_eq!(e.code, ErrorCode::UnknownScheme);

    let err = c.get_shares(None).expect_err("nothing published yet");
    let ClientError::Service(e) = err else {
        panic!("expected service error");
    };
    assert_eq!(e.code, ErrorCode::NotReady);

    // Same connection, still alive.
    let id = c.register("alive", 0.01).expect("register still works");
    assert_eq!(id, 0);
}

/// The `Metrics` request over the wire: the Prometheus text and the typed
/// snapshot agree with the engine's behaviour, and telemetry shed under
/// queue backpressure is visible in both the metrics counter and the
/// extended `Snapshot` aggregate.
#[test]
fn metrics_over_the_wire_expose_epochs_and_backpressure_sheds() {
    let cfg = ServeConfig {
        engine: EngineConfig {
            // Tiny queue so the flood below forces oldest-first shedding.
            queue_capacity: 2,
            ..EngineConfig::new(PartitionScheme::SquareRoot, 0.0095)
        },
        ..base_config()
    };
    let handle = serve(cfg).expect("bind on loopback");
    let mut rng = Lcg(99);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let id = c.register("flood", 0.00939).expect("register");

    // 7 deltas into a 2-deep queue: 5 shed, newest data wins.
    for _ in 0..7 {
        c.telemetry(id, noisy_delta(0.0531, &mut rng))
            .expect("telemetry");
    }
    handle.force_epoch();
    handle.force_epoch(); // idle epoch: nothing queued

    let m = c.metrics().expect("metrics");
    assert_eq!(m.epoch, 2);
    let counter = |name: &str| {
        m.snapshot
            .counters
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or(0)
    };
    assert_eq!(counter("bwpartd_epochs_total"), 2);
    assert_eq!(counter("bwpartd_repartitions_total"), 1);
    assert_eq!(counter("bwpartd_idle_epochs_total"), 1);
    assert_eq!(counter("bwpartd_telemetry_shed_total"), 5);
    // Both renderings carry the same counters.
    assert!(m.prometheus.contains("bwpartd_telemetry_shed_total 5\n"));
    assert!(m.prometheus.contains("# TYPE bwpartd_epochs_total counter"));
    // Epoch-decision latency was sampled once per epoch.
    let lat = m
        .snapshot
        .histograms
        .iter()
        .find(|h| h.name == "bwpartd_epoch_latency_seconds")
        .expect("latency histogram");
    assert_eq!(lat.count, 2);
    // The per-app share gauge tracks the published partition (one app:
    // the whole share).
    let share = m
        .snapshot
        .gauges
        .iter()
        .find(|g| g.name == "bwpartd_app_share{app=\"flood\"}")
        .expect("share gauge");
    assert!((share.value - 1.0).abs() < 1e-9, "β = {}", share.value);

    // The extended Snapshot reply exposes the same aggregate shed count.
    let snap = c.snapshot().expect("snapshot");
    assert_eq!(snap.telemetry_shed_total, 5);
    assert_eq!(snap.apps[id].shed, 5);
}

/// A client-issued shutdown stops the whole service; `join` returns.
#[test]
fn client_shutdown_stops_service() {
    let handle = start_service();
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.register("x", 0.01).expect("register");
    c.shutdown().expect("shutdown ack");
    handle.join();
}

/// The reactor front-end with tenant sharding: two tenants each stream the
/// four-app workload over binary-codec connections, and every tenant
/// group's published shares converge — independently — to within 2% of the
/// offline closed-form Square_root solution, exactly like the unsharded
/// threaded service.
#[test]
fn reactor_sharded_convergence_matches_offline_square_root() {
    let handle = serve(ServeConfig {
        reactor: true,
        shards: 4,
        workers: 2,
        ..base_config()
    })
    .expect("bind reactor on loopback");
    let mut rng = Lcg(0xacce55);

    const TENANTS: [&str; 2] = ["acme", "zeta"];
    let mut clients: Vec<(Client, usize, f64)> = Vec::new();
    for tenant in TENANTS {
        for &(name, api, apc) in &APPS {
            let mut c = Client::connect_with(handle.addr(), Codec::Binary).expect("connect");
            let id = c
                .register(&format!("{tenant}/{name}"), api)
                .expect("register");
            clients.push((c, id, apc));
        }
    }

    for _ in 0..8 {
        for (client, id, apc) in &mut clients {
            let epoch = client
                .telemetry(*id, noisy_delta(*apc, &mut rng))
                .expect("telemetry");
            assert!(epoch > 0);
        }
        handle.force_epoch();
    }

    // Offline closed-form reference on the *true* profiles (per tenant the
    // group solves over the full bandwidth, so one reference serves both).
    let profiles: Vec<AppProfile> = APPS
        .iter()
        .map(|&(name, api, apc)| AppProfile::new(name, api, apc).expect("profile"))
        .collect();
    let offline = PartitionScheme::SquareRoot
        .solve(&profiles, 0.0095)
        .expect("offline solve");

    for tenant in TENANTS {
        let reply = clients[0]
            .0
            .group_shares(tenant, None)
            .expect("group shares");
        assert!(!reply.degraded, "{tenant} published degraded shares");
        assert_eq!(reply.outcome.scheme, "square-root");
        for (i, &(name, _, _)) in APPS.iter().enumerate() {
            let full = format!("{tenant}/{name}");
            let row = reply
                .apps
                .iter()
                .find(|r| r.name == full)
                .unwrap_or_else(|| panic!("{full} missing from group reply"));
            let (want_beta, want_alloc) = (offline.beta[i], offline.allocation[i]);
            assert!(
                (row.beta - want_beta).abs() / want_beta < 0.02,
                "{full}: online β {:.5} deviates >2% from offline β {want_beta:.5}",
                row.beta
            );
            assert!(
                (row.allocation - want_alloc).abs() / want_alloc < 0.02,
                "{full}: online allocation deviates >2% from offline"
            );
        }
    }

    // An unknown tenant is a structured error, not a crash.
    let err = clients[0]
        .0
        .group_shares("nobody", None)
        .expect_err("unknown tenant");
    let ClientError::Service(e) = err else {
        panic!("expected service error");
    };
    assert_eq!(e.code, ErrorCode::UnknownApp);

    handle.shutdown();
    handle.join();
}

/// JSON and binary clients interleave on the same reactor server and see
/// identical epoch-consistent replies — the server answers each request in
/// the codec it arrived in, with no per-connection negotiation.
#[test]
fn mixed_codec_clients_see_identical_epoch_state() {
    let handle = serve(ServeConfig {
        reactor: true,
        ..base_config()
    })
    .expect("bind reactor on loopback");
    let mut rng = Lcg(0x0dec);

    let mut json = Client::connect(handle.addr()).expect("connect json");
    let mut binary = Client::connect_with(handle.addr(), Codec::Binary).expect("connect binary");
    assert_eq!(json.codec(), Codec::Json);
    assert_eq!(binary.codec(), Codec::Binary);

    // Registration and telemetry alternate codecs app by app.
    let ids: Vec<usize> = APPS
        .iter()
        .enumerate()
        .map(|(i, &(name, api, _))| {
            let c = if i % 2 == 0 { &mut json } else { &mut binary };
            c.register(name, api).expect("register")
        })
        .collect();
    for _ in 0..4 {
        for (i, (&id, &(_, _, apc))) in ids.iter().zip(&APPS).enumerate() {
            let c = if i % 2 == 0 { &mut binary } else { &mut json };
            c.telemetry(id, noisy_delta(apc, &mut rng))
                .expect("telemetry");
        }
        handle.force_epoch();
    }

    // Same epoch, same numbers, regardless of wire encoding.
    let from_json = json.get_shares(None).expect("shares via json");
    let from_binary = binary.get_shares(None).expect("shares via binary");
    assert_eq!(from_json, from_binary);
    assert!(!from_json.degraded);

    handle.shutdown();
    handle.join();
}

/// A frame carrying an unknown protocol version byte earns a structured
/// `UnsupportedVersion` error and a closed connection — on both the
/// threaded and reactor front-ends.
#[test]
fn unknown_wire_version_is_rejected_with_structured_error() {
    for reactor in [false, true] {
        let handle = serve(ServeConfig {
            reactor,
            ..base_config()
        })
        .expect("bind on loopback");

        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        let mut frame = Vec::from(protocol::MAGIC);
        frame.push(3); // one past the highest negotiated version
        frame.push(0);
        frame.extend_from_slice(&4u32.to_be_bytes());
        frame.extend_from_slice(b"null");
        s.write_all(&frame).expect("write versioned frame");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");

        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let resp: Response = loop {
            match protocol::decode::<Response>(&buf) {
                Ok(Some((resp, _))) => break resp,
                Ok(None) => {}
                Err(e) => panic!("reactor={reactor}: reply did not frame: {e}"),
            }
            let n = s.read(&mut chunk).expect("read error reply");
            assert!(
                n > 0,
                "reactor={reactor}: connection closed before the error reply"
            );
            buf.extend_from_slice(&chunk[..n]);
        };
        let Response::Error(service_err) = resp else {
            panic!("reactor={reactor}: expected an error, got {resp:?}");
        };
        assert_eq!(service_err.code, ErrorCode::UnsupportedVersion);
        // ...and the offending connection is closed.
        let n = s.read(&mut chunk).expect("read EOF");
        assert_eq!(
            n, 0,
            "reactor={reactor}: connection must close after a version error"
        );

        handle.shutdown();
        handle.join();
    }
}

/// The what-if query answers under a different scheme without changing
/// what is published.
#[test]
fn what_if_scheme_query_over_the_wire() {
    let handle = start_service();
    let mut rng = Lcg(11);
    let mut c = Client::connect(handle.addr()).expect("connect");
    let ids: Vec<usize> = APPS
        .iter()
        .map(|&(name, api, _)| c.register(name, api).expect("register"))
        .collect();
    for (&id, &(_, _, apc)) in ids.iter().zip(&APPS) {
        c.telemetry(id, noisy_delta(apc, &mut rng))
            .expect("telemetry");
    }
    handle.force_epoch();

    let published = c.get_shares(None).expect("published");
    let whatif = c.get_shares(Some("proportional")).expect("what-if");
    assert_eq!(whatif.outcome.scheme, "proportional");
    assert_ne!(whatif.outcome.beta, published.outcome.beta);
    let again = c.get_shares(None).expect("published again");
    assert_eq!(again, published);
}
