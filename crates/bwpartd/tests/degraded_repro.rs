//! Regression test: a publish that succeeds after a degraded epoch must
//! clear the `degraded` flag on the served reply (it used to stick).

use bwpart_mc::TelemetryDelta;
use bwpartd::{Engine, EngineConfig};

fn clean(apc: f64) -> TelemetryDelta {
    let cyc = 1_000_000u64;
    TelemetryDelta {
        accesses: (apc * cyc as f64) as u64,
        shared_cycles: cyc,
        interference_cycles: 0,
    }
}

#[test]
fn recovered_publish_not_degraded() {
    let mut e = Engine::new(EngineConfig::default()).unwrap();
    let id = e.register("a", 0.01).unwrap();
    // Live-but-silent epoch: zero-rate estimate -> solve fails.
    e.push_telemetry(
        id,
        TelemetryDelta {
            accesses: 0,
            shared_cycles: 1000,
            interference_cycles: 0,
        },
    )
    .unwrap();
    e.run_epoch();
    // Good telemetry: solve succeeds, first publish.
    e.push_telemetry(id, clean(0.05)).unwrap();
    let out = e.run_epoch();
    println!("outcome = {out:?}");
    let reply = e.get_shares().unwrap();
    assert!(
        !reply.degraded,
        "freshly repartitioned reply must not be degraded (snapshot.degraded = {})",
        e.snapshot().degraded
    );
}
