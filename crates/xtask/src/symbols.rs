//! Workspace symbol index: per-file item facts for the interprocedural
//! analysis pass (`cargo xtask analyze`).
//!
//! [`FileFacts::extract`] walks one file's [`crate::tokens::SourceFile`]
//! and records everything the call-graph and rule layers consume:
//!
//! * every `fn` with its owner `impl` type, trait (for `impl Trait for
//!   Type`), visibility, `#[cfg(test)]` masking, parameter names/types and
//!   return-type text;
//! * every call site inside a fn body — direct calls with their leading
//!   path segments, method calls with a receiver-type hint (typed locals,
//!   params, `self`, `self.field` through the struct table, call results
//!   through the callee's return type), and idents invoked inside macro
//!   arguments (conservative edges);
//! * danger sites (allocations, lock acquisitions, blocking calls, direct
//!   registry resolution) with byte spans, for the transitive A1 rule;
//! * lock acquisitions with engine-compatible held ranges, and which
//!   locks are held over each call site, for the cross-crate A4 rule;
//! * struct field types, `use` imports/re-exports, in-source
//!   `// lint: lock-order:` tables and `lint: allow(A<N>)` markers.
//!
//! Everything is a token-level heuristic: no type inference, no macro
//! expansion. The call-graph layer treats unresolved information
//! conservatively (see `callgraph.rs` for the resolution tiers).

use crate::engine;
use crate::lex::Delim;
use crate::lex::TokenKind;
use crate::tokens::SourceFile;

/// One function parameter (excluding `self`).
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding ident (`mut` and `&` stripped); empty for non-ident
    /// patterns (tuples, `_`).
    pub name: String,
    /// Concatenated type tokens.
    pub ty: String,
}

/// How a call site invokes its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` or `path::to::foo(...)`.
    Direct,
    /// `.foo(...)` on some receiver.
    Method,
    /// `ident(...)` appearing inside a macro invocation's arguments —
    /// kept as a conservative edge (the macro may or may not expand it).
    Macro,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method ident).
    pub name: String,
    /// Invocation form (direct, method, macro-argument).
    pub kind: CallKind,
    /// Leading path segments for direct calls (`["bwpart_core", "solver"]`
    /// for `bwpart_core::solver::solve(...)`, `["Self"]` for `Self::f()`).
    pub path: Vec<String>,
    /// Inferred receiver type text for method calls (`None` = unknown).
    pub recv_ty: Option<String>,
    /// Byte span of the callee ident.
    pub span: (usize, usize),
    /// File-local token index of the callee ident (for held-range checks).
    pub tok: usize,
    /// Per-argument single-ident names (for the A3 unit-flow rule);
    /// `None` for compound argument expressions.
    pub arg_idents: Vec<Option<String>>,
    /// Lock names held at this call site (A4).
    pub under_locks: Vec<String>,
    /// `let <ident> = <this call>...;` binding ident, when the call starts
    /// the right-hand side (A3 return flow).
    pub bound_to: Option<String>,
}

/// Classification of a danger site for the A1 hot-path purity rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DangerKind {
    /// Fresh-container construction: `Vec::new`, `vec![...]`,
    /// `with_capacity`, `.collect()`, `.to_vec()`, `.to_string()`,
    /// `format!`, `String::from`, `Box::new`.
    AllocFresh,
    /// Growth of an existing container: `.push`, `.push_back`,
    /// `.reserve`, `.extend`.
    AllocGrow,
    /// Mutex acquisition.
    Lock,
    /// Blocking call: `sleep`, `.recv()`, `.wait()`.
    Blocking,
    /// Per-event registry resolution: `.counter()`, `.gauge()`,
    /// `.histogram()`.
    Registry,
}

/// One danger site with its span and a human-readable description.
#[derive(Debug, Clone)]
pub struct DangerSite {
    /// Danger classification.
    pub kind: DangerKind,
    /// What the site looks like (`"vec![...]"`, `".collect(...)"`).
    pub what: String,
    /// Byte span of the dangerous token.
    pub span: (usize, usize),
}

/// One mutex acquisition (engine-R13-compatible detection: `recv.lock()`
/// names the lock after the receiver, `lock_x(...)` helpers after their
/// suffix).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// The lock's canonical name.
    pub name: String,
    /// Byte span of the acquiring ident.
    pub span: (usize, usize),
    /// File-local token index of the acquiring ident.
    pub tok: usize,
    /// Last file-local token index while the guard is held.
    pub held_to: usize,
}

/// One `fn` item with everything the interprocedural rules need.
#[derive(Debug, Clone)]
pub struct FnFacts {
    /// The fn's ident.
    pub name: String,
    /// Head ident of the enclosing `impl` type, for methods.
    pub owner: Option<String>,
    /// Trait head ident for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` item (resolution must not target these).
    pub in_test: bool,
    /// Anchor byte span (the `pub`/`fn` token) for findings.
    pub span: (usize, usize),
    /// Takes `self` (i.e. is a method)?
    pub has_self: bool,
    /// Declared parameters, in order (`self` excluded).
    pub params: Vec<Param>,
    /// Concatenated return-type tokens (empty when none).
    pub ret_text: String,
    /// Body certifies a share vector (R3 certifier call / `invariant!`).
    pub certifies: bool,
    /// Every call site in the body (nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Every danger site in the body.
    pub dangers: Vec<DangerSite>,
    /// Every lock acquisition in the body.
    pub locks: Vec<LockAcq>,
}

/// One struct definition's field table (named fields only).
#[derive(Debug, Clone)]
pub struct StructFacts {
    /// The struct's ident.
    pub name: String,
    /// `(field, type-text)` pairs.
    pub fields: Vec<(String, String)>,
}

/// One `use` item binding (`use a::b::c;` → `c` ↦ `[a, b, c]`;
/// `use a::b as d;` → `d` ↦ `[a, b]`). `pub use` re-exports are marked.
#[derive(Debug, Clone)]
pub struct Import {
    /// The name the import binds in this file.
    pub alias: String,
    /// Full path segments of the target (alias excluded for `as` forms).
    pub path: Vec<String>,
    /// Declared `pub use` (including `pub(crate) use`).
    pub reexport: bool,
}

/// One in-source `// lint: lock-order: a < b < c` declaration.
#[derive(Debug, Clone)]
pub struct LockTable {
    /// Lock names, outermost first.
    pub names: Vec<String>,
    /// Byte offset of the declaring comment (for finding anchors).
    pub offset: usize,
}

/// One `lint: allow(A<N>)` suppression marker with its coverage spans
/// (mirrors the engine's span-based comment attachment).
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// The allowed code (`"A1"`).
    pub code: String,
    /// Byte range of the comment's own lines.
    pub own: (usize, usize),
    /// Byte range of the adjacent following node, when attached.
    pub node: Option<(usize, usize)>,
    /// The full marker comment text (justification reporting).
    pub text: String,
}

/// Everything the analysis layers need from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name under `crates/` (`"core"`, `"bwpartd"`, ...).
    pub crate_name: String,
    /// Every fn item, in source order.
    pub fns: Vec<FnFacts>,
    /// Every struct with named fields.
    pub structs: Vec<StructFacts>,
    /// Every `use` binding.
    pub imports: Vec<Import>,
    /// Every declared `lock-order:` table.
    pub lock_tables: Vec<LockTable>,
    /// Every `lint: allow(...)` marker this pass honours.
    pub allows: Vec<AllowMarker>,
}

/// The whole indexed workspace.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Indexed files, in collection (path-sorted) order.
    pub files: Vec<FileFacts>,
}

/// Normalize a path segment to a crate directory name: `bwpart_core`,
/// `bwpart-core` and `core` all name the `crates/core` crate.
pub fn normalize_crate(seg: &str) -> String {
    let seg = seg.replace('-', "_");
    seg.strip_prefix("bwpart_").unwrap_or(&seg).to_string()
}

/// Rust keywords and call-syntax words that are never callee names.
const NON_CALLEES: [&str; 26] = [
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "let", "else", "break",
    "continue", "unsafe", "where", "impl", "use", "pub", "mod", "struct", "enum", "trait", "type",
    "const", "move", "dyn",
];

struct ImplBlock {
    owner: String,
    trait_name: Option<String>,
    body: (usize, usize),
}

/// Append one token's text to a type string, separating adjacent
/// word-like tokens so `&mut Vec<Slot>` does not collapse to `&mutVec…`.
fn append_ty(out: &mut String, piece: &str) {
    let joins_words = out
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
        && piece
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    if joins_words {
        out.push(' ');
    }
    out.push_str(piece);
}

impl FileFacts {
    /// Index one file. `path` is the workspace-relative path; the crate
    /// name is derived from its `crates/<name>/` component.
    pub fn extract(path: &str, src: &str) -> FileFacts {
        let f = SourceFile::analyze(src);
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let impls = find_impls(&f);
        let structs = find_structs(&f);
        let imports = find_imports(&f);
        let lock_tables = find_lock_tables(&f);
        let allows = find_allows(&f);

        // Nested fn bodies are scanned as their own items; the enclosing
        // fn must skip those token ranges so a call is attributed once.
        let bodies: Vec<Option<(usize, usize)>> = f.fns.iter().map(|i| i.body).collect();
        let ret_text_of = |info: &crate::tokens::FnInfo| -> String {
            info.ret
                .map(|(rs, re)| {
                    let mut out = String::new();
                    for k in rs..re {
                        if f.tokens[k].is_comment() {
                            continue;
                        }
                        if f.is_ident(k, "where") {
                            break;
                        }
                        append_ty(&mut out, f.text(k));
                    }
                    out
                })
                .unwrap_or_default()
        };
        // Same-file `name → return type` table, so a call-result receiver
        // (`lock_engine(&e).snapshot()`) can be typed by its producer.
        let fn_rets: Vec<(String, String)> = f
            .fns
            .iter()
            .map(|i| (f.text(i.name).to_string(), ret_text_of(i)))
            .collect();
        let mut fns = Vec::new();
        for (fi, info) in f.fns.iter().enumerate() {
            let name = f.text(info.name).to_string();
            let enclosing = impls
                .iter()
                .find(|b| b.body.0 < info.name && info.name < b.body.1);
            let (has_self, params) = parse_params(&f, info.name);
            let ret_text = ret_text_of(info);
            let mut facts = FnFacts {
                name,
                owner: enclosing.map(|b| b.owner.clone()),
                trait_name: enclosing.and_then(|b| b.trait_name.clone()),
                is_pub: info.is_pub,
                in_test: f.in_test(info.name),
                span: (f.tokens[info.anchor].start, f.tokens[info.anchor].end),
                has_self,
                params,
                ret_text,
                certifies: false,
                calls: Vec::new(),
                dangers: Vec::new(),
                locks: Vec::new(),
            };
            if let Some((open, close)) = info.body {
                let nested: Vec<(usize, usize)> = bodies
                    .iter()
                    .enumerate()
                    .filter(|&(oi, _)| oi != fi)
                    .filter_map(|(_, b)| *b)
                    .filter(|&(o, c)| open < o && c < close)
                    .collect();
                let owner = facts.owner.clone();
                scan_body(
                    &f,
                    &structs,
                    &fn_rets,
                    owner.as_deref(),
                    open,
                    close,
                    &nested,
                    &mut facts,
                );
            }
            fns.push(facts);
        }

        FileFacts {
            path: path.to_string(),
            crate_name,
            fns,
            structs,
            imports,
            lock_tables,
            allows,
        }
    }

    /// Does an `allow(code)` marker cover byte offset `anchor`?
    pub fn allowed_at(&self, code: &str, anchor: usize) -> Option<&AllowMarker> {
        self.allows.iter().find(|m| {
            m.code == code
                && ((m.own.0 <= anchor && anchor < m.own.1)
                    || m.node.is_some_and(|(s, e)| s <= anchor && anchor <= e))
        })
    }
}

/// `impl` blocks with owner/trait head idents and brace-matched bodies.
fn find_impls(f: &SourceFile) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !f.is_ident(i, "impl") {
            continue;
        }
        // Skip generics: `impl<T: Bound> ...`.
        let mut cur = f.next(i);
        if cur.is_some_and(|k| f.is_op(k, "<")) {
            let mut depth = 0i32;
            while let Some(k) = cur {
                match f.text(k) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    "->" => {}
                    _ => {}
                }
                cur = f.next(k);
                if depth <= 0 {
                    break;
                }
            }
        }
        // Collect the first path (trait, or the type when no `for`), then
        // an optional `for <type path>`, stopping at `{` / `where`.
        let mut first_head = String::new();
        let mut second_head: Option<String> = None;
        let mut collecting_second = false;
        let mut angle = 0i32;
        while let Some(k) = cur {
            let t = &f.tokens[k];
            match t.kind {
                TokenKind::Open(Delim::Brace) if angle <= 0 => break,
                TokenKind::Open(_) => {
                    cur = f.partner[k].and_then(|c| f.next(c));
                    continue;
                }
                TokenKind::Ident => {
                    let txt = f.text(k);
                    if txt == "where" && angle <= 0 {
                        // run forward to the `{`
                        cur = f.next(k);
                        while let Some(w) = cur {
                            if f.is_open(w, Delim::Brace) {
                                break;
                            }
                            cur = match f.tokens[w].kind {
                                TokenKind::Open(_) => f.partner[w].and_then(|c| f.next(c)),
                                _ => f.next(w),
                            };
                        }
                        break;
                    }
                    if txt == "for" && angle <= 0 {
                        collecting_second = true;
                        second_head = Some(String::new());
                    } else if angle <= 0 && txt != "dyn" {
                        // Path segments overwrite: the head is the last
                        // segment's base ident (`fmt::Display` → Display).
                        if collecting_second {
                            second_head = Some(txt.to_string());
                        } else {
                            first_head = txt.to_string();
                        }
                    }
                }
                TokenKind::Op => match f.text(k) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                },
                _ => {}
            }
            cur = f.next(k);
        }
        let Some(open) = cur.filter(|&k| f.is_open(k, Delim::Brace)) else {
            continue;
        };
        let Some(close) = f.partner[open] else {
            continue;
        };
        let (owner, trait_name) = match second_head {
            Some(t) if !t.is_empty() => (t, Some(first_head)),
            _ => (first_head, None),
        };
        if !owner.is_empty() {
            out.push(ImplBlock {
                owner,
                trait_name: trait_name.filter(|t| !t.is_empty()),
                body: (open, close),
            });
        }
    }
    out
}

/// Named-field struct definitions (field → type text).
fn find_structs(f: &SourceFile) -> Vec<StructFacts> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !f.is_ident(i, "struct") {
            continue;
        }
        let Some(name_tok) = f.next(i) else { continue };
        if f.tokens[name_tok].kind != TokenKind::Ident {
            continue;
        }
        // Skip generics / where clause to the defining `{` (or bail on
        // tuple/unit structs at `(` / `;`).
        let mut cur = f.next(name_tok);
        let mut angle = 0i32;
        let mut open = None;
        while let Some(k) = cur {
            match f.tokens[k].kind {
                TokenKind::Open(Delim::Brace) if angle <= 0 => {
                    open = Some(k);
                    break;
                }
                TokenKind::Open(Delim::Paren) if angle <= 0 => break,
                TokenKind::Open(_) => {
                    cur = f.partner[k].and_then(|c| f.next(c));
                    continue;
                }
                TokenKind::Op => match f.text(k) {
                    ";" if angle <= 0 => break,
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                },
                _ => {}
            }
            cur = f.next(k);
        }
        let Some(open) = open else { continue };
        let Some(close) = f.partner[open] else {
            continue;
        };
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            if f.tokens[k].is_comment() {
                k += 1;
                continue;
            }
            // One field: [pub[(..)]] name : <type tokens> [,]
            let mut j = k;
            if f.is_ident(j, "pub") {
                j = match f.next(j) {
                    Some(n) => n,
                    None => break,
                };
                if f.is_open(j, Delim::Paren) {
                    j = match f.partner[j].and_then(|c| f.next(c)) {
                        Some(n) => n,
                        None => break,
                    };
                }
            }
            // Skip attributes on the field.
            while f.is_op(j, "#") {
                let Some(b) = f.next(j).filter(|&b| f.is_open(b, Delim::Bracket)) else {
                    break;
                };
                j = match f.partner[b].and_then(|c| f.next(c)) {
                    Some(n) => n,
                    None => break,
                };
            }
            if f.tokens[j].kind != TokenKind::Ident {
                break;
            }
            let fname = f.text(j).to_string();
            let Some(colon) = f.next(j).filter(|&c| f.is_op(c, ":")) else {
                break;
            };
            // Type runs to the next top-level comma or the close brace.
            let mut ty = String::new();
            let mut angle = 0i32;
            let mut cur = f.next(colon);
            let mut after = close;
            while let Some(t) = cur {
                if t >= close {
                    after = close;
                    break;
                }
                match f.tokens[t].kind {
                    TokenKind::Op if f.text(t) == "," && angle <= 0 => {
                        after = t + 1;
                        break;
                    }
                    TokenKind::Open(_) => {
                        let Some(c) = f.partner[t] else { break };
                        for g in t..=c {
                            if !f.tokens[g].is_comment() {
                                append_ty(&mut ty, f.text(g));
                            }
                        }
                        cur = f.next(c);
                        after = c + 1;
                        continue;
                    }
                    TokenKind::Op => {
                        match f.text(t) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "<<" => angle += 2,
                            ">>" => angle -= 2,
                            _ => {}
                        }
                        ty.push_str(f.text(t));
                    }
                    _ => append_ty(&mut ty, f.text(t)),
                }
                after = t + 1;
                cur = f.next(t);
            }
            fields.push((fname, ty));
            k = after.max(k + 1);
        }
        out.push(StructFacts {
            name: f.text(name_tok).to_string(),
            fields,
        });
    }
    out
}

/// `use` items, including one level of `{...}` groups and `as` renames.
fn find_imports(f: &SourceFile) -> Vec<Import> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        if !f.is_ident(i, "use") || f.in_test(i) {
            continue;
        }
        let reexport = f.prev(i).is_some_and(|p| {
            f.is_ident(p, "pub")
                || (matches!(f.tokens[p].kind, TokenKind::Close(Delim::Paren))
                    && f.partner[p]
                        .and_then(|o| f.prev(o))
                        .is_some_and(|pp| f.is_ident(pp, "pub")))
        });
        let mut prefix: Vec<String> = Vec::new();
        let mut cur = f.next(i);
        while let Some(k) = cur {
            match f.tokens[k].kind {
                TokenKind::Ident => {
                    let seg = f.text(k).to_string();
                    // `use path as alias;`
                    if seg == "as" {
                        if let Some(a) = f.next(k).filter(|&a| f.tokens[a].kind == TokenKind::Ident)
                        {
                            out.push(Import {
                                alias: f.text(a).to_string(),
                                path: prefix.clone(),
                                reexport,
                            });
                        }
                        break;
                    }
                    prefix.push(seg);
                }
                TokenKind::Open(Delim::Brace) => {
                    // One group level: `use a::{b, c as d, e::f};`
                    let Some(close) = f.partner[k] else { break };
                    let mut seg_path = prefix.clone();
                    let mut last: Option<String> = None;
                    let mut g = f.next(k);
                    while let Some(t) = g.filter(|&t| t < close) {
                        match f.tokens[t].kind {
                            TokenKind::Ident if f.text(t) == "as" => {
                                if let Some(a) =
                                    f.next(t).filter(|&a| f.tokens[a].kind == TokenKind::Ident)
                                {
                                    out.push(Import {
                                        alias: f.text(a).to_string(),
                                        path: seg_path.clone(),
                                        reexport,
                                    });
                                    last = None;
                                    g = f.next(a);
                                    continue;
                                }
                            }
                            TokenKind::Ident => {
                                seg_path.push(f.text(t).to_string());
                                last = Some(f.text(t).to_string());
                            }
                            TokenKind::Op if f.text(t) == "," => {
                                if let Some(name) = last.take() {
                                    out.push(Import {
                                        alias: name,
                                        path: seg_path.clone(),
                                        reexport,
                                    });
                                }
                                seg_path = prefix.clone();
                            }
                            _ => {}
                        }
                        g = f.next(t);
                    }
                    if let Some(name) = last {
                        out.push(Import {
                            alias: name,
                            path: seg_path,
                            reexport,
                        });
                    }
                    break;
                }
                TokenKind::Op if f.text(k) == ";" => {
                    if let Some(name) = prefix.last().cloned() {
                        out.push(Import {
                            alias: name,
                            path: prefix.clone(),
                            reexport,
                        });
                    }
                    break;
                }
                TokenKind::Op if f.text(k) == "*" => break,
                _ => {}
            }
            cur = f.next(k);
        }
    }
    out
}

fn find_lock_tables(f: &SourceFile) -> Vec<LockTable> {
    let mut out = Vec::new();
    for c in &f.comments {
        let text = f.text(c.tok);
        if let Some(pos) = text.find("lock-order:") {
            let names: Vec<String> = text[pos + "lock-order:".len()..]
                .split('<')
                .filter_map(|piece| piece.split_whitespace().next())
                .map(str::to_string)
                .collect();
            if names.len() >= 2 {
                out.push(LockTable {
                    names,
                    offset: f.tokens[c.tok].start,
                });
            }
        }
    }
    out
}

fn find_allows(f: &SourceFile) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for info in &f.comments {
        let text = f.text(info.tok);
        for code in ["A1", "A2", "A3", "A4", "R3"] {
            let plain = format!("lint: allow({code})");
            let tight = format!("lint:allow({code})");
            if text.contains(&plain) || text.contains(&tight) {
                out.push(AllowMarker {
                    code: code.to_string(),
                    own: info.own,
                    node: info.node,
                    text: text.trim().to_string(),
                });
            }
        }
    }
    out
}

/// Parse `(params)` after the fn name token: `self` detection plus
/// `(name, type-text)` pairs split on top-level commas.
fn parse_params(f: &SourceFile, name_tok: usize) -> (bool, Vec<Param>) {
    // Skip generics between the name and the parameter list.
    let mut cur = f.next(name_tok);
    if cur.is_some_and(|k| f.is_op(k, "<")) {
        let mut depth = 0i32;
        while let Some(k) = cur {
            match f.text(k) {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                _ => {}
            }
            match f.tokens[k].kind {
                TokenKind::Open(_) => cur = f.partner[k].and_then(|c| f.next(c)),
                _ => cur = f.next(k),
            }
            if depth <= 0 {
                break;
            }
        }
    }
    let Some(open) = cur.filter(|&k| f.is_open(k, Delim::Paren)) else {
        return (false, Vec::new());
    };
    let Some(close) = f.partner[open] else {
        return (false, Vec::new());
    };
    // Split the group on top-level commas.
    let mut pieces: Vec<(usize, usize)> = Vec::new();
    let mut start = open + 1;
    let mut k = open + 1;
    let mut angle = 0i32;
    while k < close {
        match f.tokens[k].kind {
            TokenKind::Open(_) => {
                k = f.partner[k].map(|c| c + 1).unwrap_or(close);
                continue;
            }
            TokenKind::Op => match f.text(k) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "," if angle <= 0 => {
                    pieces.push((start, k));
                    start = k + 1;
                }
                _ => {}
            },
            _ => {}
        }
        k += 1;
    }
    if start < close {
        pieces.push((start, close));
    }
    let mut has_self = false;
    let mut params = Vec::new();
    for (s, e) in pieces {
        let idents: Vec<usize> = (s..e)
            .filter(|&k| f.tokens[k].kind == TokenKind::Ident && !f.tokens[k].is_comment())
            .collect();
        let colon =
            (s..e).find(|&k| f.is_op(k, ":") && !f.prev(k).is_some_and(|p| f.is_op(p, ":")));
        // Bare/ref `self` receiver: no top-level colon.
        let Some(colon) = colon else {
            if idents.iter().any(|&k| f.is_ident(k, "self")) {
                has_self = true;
            }
            continue;
        };
        if idents.iter().any(|&k| k < colon && f.is_ident(k, "self")) {
            // `self: Pin<&mut Self>` style receiver.
            has_self = true;
            continue;
        }
        let name = idents
            .iter()
            .rev()
            .find(|&&k| k < colon && !f.is_ident(k, "mut") && !f.is_ident(k, "ref"))
            .map(|&k| f.text(k).to_string())
            .unwrap_or_default();
        let mut ty = String::new();
        for t in colon + 1..e {
            if !f.tokens[t].is_comment() {
                append_ty(&mut ty, f.text(t));
            }
        }
        params.push(Param { name, ty });
    }
    (has_self, params)
}

/// Typed-local table for one fn body: `let [mut] name: Ty = ...`, plus
/// `let name = Ty::new(...)` / `let name = Ty { ... }` constructions.
fn local_types(f: &SourceFile, open: usize, close: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for k in open + 1..close {
        if !f.is_ident(k, "let") {
            continue;
        }
        let mut j = match f.next(k) {
            Some(j) => j,
            None => continue,
        };
        if f.is_ident(j, "mut") {
            j = match f.next(j) {
                Some(j) => j,
                None => continue,
            };
        }
        if f.tokens[j].kind != TokenKind::Ident {
            continue;
        }
        let name = f.text(j).to_string();
        let Some(after) = f.next(j) else { continue };
        if f.is_op(after, ":") {
            // Explicit type to `=` or `;`.
            let mut ty = String::new();
            let mut angle = 0i32;
            let mut cur = f.next(after);
            while let Some(t) = cur {
                match f.tokens[t].kind {
                    TokenKind::Op => match f.text(t) {
                        "=" | ";" if angle <= 0 => break,
                        "<" => {
                            angle += 1;
                            ty.push('<');
                        }
                        ">" => {
                            angle -= 1;
                            ty.push('>');
                        }
                        other => ty.push_str(other),
                    },
                    TokenKind::Open(_) => {
                        let Some(c) = f.partner[t] else { break };
                        for g in t..=c {
                            if !f.tokens[g].is_comment() {
                                append_ty(&mut ty, f.text(g));
                            }
                        }
                        cur = f.next(c);
                        continue;
                    }
                    _ => append_ty(&mut ty, f.text(t)),
                }
                cur = f.next(t);
            }
            if !ty.is_empty() {
                out.push((name, ty));
            }
        } else if f.is_op(after, "=") {
            // `let x = Ty::...(...)` / `let x = Ty { .. }`: the first
            // ident names the type when capitalized.
            if let Some(first) = f.next(after) {
                if f.tokens[first].kind == TokenKind::Ident {
                    let txt = f.text(first);
                    if txt.chars().next().is_some_and(char::is_uppercase)
                        && f.next(first)
                            .is_some_and(|n| f.is_op(n, "::") || f.is_open(n, Delim::Brace))
                    {
                        out.push((name, txt.to_string()));
                    }
                }
            }
        }
    }
    out
}

/// Walk one fn body collecting calls, dangers and lock acquisitions.
// the scan shares the pre-computed per-file tables with its caller; a one-shot struct would just rename the list
#[allow(clippy::too_many_arguments)]
fn scan_body(
    f: &SourceFile,
    structs: &[StructFacts],
    fn_rets: &[(String, String)],
    owner: Option<&str>,
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
    facts: &mut FnFacts,
) {
    let locals = local_types(f, open, close);
    // Snapshot the params so the lookup closure doesn't hold a borrow of
    // `facts` across the mutating scan below.
    let params: Vec<Param> = facts.params.clone();
    let local_ty = move |name: &str| -> Option<String> {
        locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
            .or_else(|| params.iter().find(|p| p.name == name).map(|p| p.ty.clone()))
    };
    let field_ty = |ty_head: &str, field: &str| -> Option<String> {
        structs
            .iter()
            .find(|s| s.name == ty_head)
            .and_then(|s| s.fields.iter().find(|(n, _)| n == field))
            .map(|(_, t)| t.clone())
    };
    let ret_ty = |name: &str| -> Option<String> {
        fn_rets
            .iter()
            .find(|(n, r)| n == name && !r.is_empty())
            .map(|(_, r)| r.clone())
    };
    let in_nested = |k: usize| nested.iter().any(|&(o, c)| o <= k && k <= c);

    let mut k = open + 1;
    while k < close {
        if in_nested(k) || f.tokens[k].kind != TokenKind::Ident || f.tokens[k].is_comment() {
            k += 1;
            continue;
        }
        let text = f.text(k);

        // Certification (A2): any R3 certifier ident or `invariant!`.
        if engine::R3_CERTIFIERS.contains(&text)
            || (text == "invariant" && f.next(k).is_some_and(|n| f.is_op(n, "!")))
        {
            facts.certifies = true;
        }

        // Macro invocation: `name!(...)` / `name![...]` / `name!{...}` —
        // record alloc macros as dangers and idents called inside the
        // arguments as conservative Macro edges.
        if f.next(k).is_some_and(|n| f.is_op(n, "!")) {
            if matches!(text, "vec" | "format") {
                facts.dangers.push(DangerSite {
                    kind: DangerKind::AllocFresh,
                    what: format!("{text}![...]"),
                    span: (f.tokens[k].start, f.tokens[k].end),
                });
            }
            let group = f.next(k).and_then(|n| f.next(n));
            if let Some(g) = group.filter(|&g| matches!(f.tokens[g].kind, TokenKind::Open(_))) {
                if let Some(gc) = f.partner[g] {
                    for a in g + 1..gc {
                        if f.tokens[a].kind == TokenKind::Ident
                            && !NON_CALLEES.contains(&f.text(a))
                            && f.next(a).is_some_and(|n| f.is_open(n, Delim::Paren))
                            && !f.prev(a).is_some_and(|p| f.is_op(p, "."))
                        {
                            facts.calls.push(CallSite {
                                name: f.text(a).to_string(),
                                kind: CallKind::Macro,
                                path: Vec::new(),
                                recv_ty: None,
                                span: (f.tokens[a].start, f.tokens[a].end),
                                tok: a,
                                arg_idents: Vec::new(),
                                under_locks: Vec::new(),
                                bound_to: None,
                            });
                        }
                    }
                    k = gc + 1;
                    continue;
                }
            }
            k += 1;
            continue;
        }

        let called = f.next(k).is_some_and(|n| f.is_open(n, Delim::Paren));
        if !called || NON_CALLEES.contains(&text) {
            k += 1;
            continue;
        }
        // Definitions are not calls.
        if f.prev(k).is_some_and(|p| f.is_ident(p, "fn")) {
            k += 1;
            continue;
        }

        let is_method = f.prev(k).is_some_and(|p| f.is_op(p, "."));
        let Some(open_paren) = f.next(k) else {
            k += 1;
            continue;
        };
        let arg_idents = call_arg_idents(f, open_paren);

        // Danger classification by callee name/shape.
        let danger = if is_method {
            match text {
                "counter" | "gauge" | "histogram" => {
                    Some((DangerKind::Registry, format!(".{text}(...)")))
                }
                "push" | "push_back" | "reserve" | "extend" => {
                    Some((DangerKind::AllocGrow, format!(".{text}(...)")))
                }
                "collect" | "to_vec" | "to_string" | "with_capacity" => {
                    Some((DangerKind::AllocFresh, format!(".{text}(...)")))
                }
                "recv" | "recv_timeout" | "wait" => {
                    Some((DangerKind::Blocking, format!(".{text}(...)")))
                }
                _ => None,
            }
        } else {
            let assoc_of = f
                .prev(k)
                .filter(|&p| f.is_op(p, "::"))
                .and_then(|p| f.prev(p))
                .filter(|&o| f.tokens[o].kind == TokenKind::Ident)
                .map(|o| f.text(o));
            match (assoc_of, text) {
                (
                    Some("Vec" | "VecDeque" | "String" | "HashMap" | "BTreeMap" | "HashSet"),
                    "new",
                )
                | (Some(_), "with_capacity")
                | (Some("Box"), "new")
                | (Some("String"), "from") => Some((
                    DangerKind::AllocFresh,
                    format!("{}::{text}(...)", assoc_of.unwrap_or("")),
                )),
                (_, "sleep") => Some((DangerKind::Blocking, "sleep(...)".to_string())),
                _ => None,
            }
        };
        if let Some((kind, what)) = danger {
            facts.dangers.push(DangerSite {
                kind,
                what,
                span: (f.tokens[k].start, f.tokens[k].end),
            });
        }

        // Lock acquisition (engine-R13-compatible shapes).
        let lock_name = if is_method && text == "lock" {
            f.prev(k)
                .and_then(|dot| f.prev(dot))
                .filter(|&r| f.tokens[r].kind == TokenKind::Ident)
                .map(|r| f.text(r).to_string())
        } else if let Some(suffix) = text.strip_prefix("lock_") {
            (!suffix.is_empty()).then(|| suffix.to_string())
        } else {
            None
        };
        if let Some(name) = lock_name {
            if let Some(held_to) = engine::held_range(f, k) {
                facts.locks.push(LockAcq {
                    name: name.clone(),
                    span: (f.tokens[k].start, f.tokens[k].end),
                    tok: k,
                    held_to,
                });
            }
            facts.dangers.push(DangerSite {
                kind: DangerKind::Lock,
                what: format!("lock `{name}`"),
                span: (f.tokens[k].start, f.tokens[k].end),
            });
        }

        // The call edge itself.
        if is_method {
            let recv_ty = receiver_type(f, k, owner, &local_ty, &field_ty, &ret_ty);
            facts.calls.push(CallSite {
                name: text.to_string(),
                kind: CallKind::Method,
                path: Vec::new(),
                recv_ty,
                span: (f.tokens[k].start, f.tokens[k].end),
                tok: k,
                arg_idents,
                under_locks: Vec::new(),
                bound_to: bound_ident(f, k),
            });
        } else {
            // Leading path segments: `a::b::foo(`.
            let mut path = Vec::new();
            let mut seg = f.prev(k);
            while let Some(sep) = seg.filter(|&s| f.is_op(s, "::")) {
                match f.prev(sep) {
                    Some(p) if f.tokens[p].kind == TokenKind::Ident => {
                        path.push(f.text(p).to_string());
                        seg = f.prev(p);
                    }
                    _ => {
                        path.push("?".to_string());
                        break;
                    }
                }
            }
            path.reverse();
            facts.calls.push(CallSite {
                name: text.to_string(),
                kind: CallKind::Direct,
                path,
                recv_ty: None,
                span: (f.tokens[k].start, f.tokens[k].end),
                tok: k,
                arg_idents,
                under_locks: Vec::new(),
                bound_to: bound_ident(f, k),
            });
        }
        k += 1;
    }

    // Resolve which locks are held over each call site.
    for call in &mut facts.calls {
        call.under_locks = facts
            .locks
            .iter()
            .filter(|l| l.tok < call.tok && call.tok <= l.held_to)
            .map(|l| l.name.clone())
            .collect();
    }
}

/// Single-ident argument names for a call's paren group (top-level commas;
/// `&`/`&mut` prefixes stripped).
fn call_arg_idents(f: &SourceFile, open: usize) -> Vec<Option<String>> {
    let Some(close) = f.partner[open] else {
        return Vec::new();
    };
    if f.next(open) == Some(close) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut piece: Vec<usize> = Vec::new();
    let mut k = open + 1;
    let mut compound_piece = false;
    while k < close {
        match f.tokens[k].kind {
            _ if f.tokens[k].is_comment() => {}
            TokenKind::Open(_) => {
                compound_piece = true;
                k = f.partner[k].map(|c| c + 1).unwrap_or(close);
                continue;
            }
            TokenKind::Op if f.text(k) == "," => {
                out.push(piece_ident(f, &piece, compound_piece));
                piece.clear();
                compound_piece = false;
            }
            _ => piece.push(k),
        }
        k += 1;
    }
    out.push(piece_ident(f, &piece, compound_piece));
    out
}

fn piece_ident(f: &SourceFile, piece: &[usize], compound: bool) -> Option<String> {
    if compound {
        return None;
    }
    // Accept `ident`, `&ident`, `&mut ident`, `*ident`.
    let idents: Vec<usize> = piece
        .iter()
        .copied()
        .filter(|&k| f.tokens[k].kind == TokenKind::Ident && !f.is_ident(k, "mut"))
        .collect();
    let ops_ok = piece
        .iter()
        .all(|&k| f.tokens[k].kind == TokenKind::Ident || matches!(f.text(k), "&" | "*" | "&&"));
    if idents.len() == 1 && ops_ok {
        Some(f.text(idents[0]).to_string())
    } else {
        None
    }
}

/// `let <ident> = <expr starting the call chain at tok>` binding ident.
fn bound_ident(f: &SourceFile, call_tok: usize) -> Option<String> {
    // Walk back over the receiver/path chain to the expression start.
    let mut start = call_tok;
    while let Some(prev) = f.prev(start) {
        if f.is_op(prev, ".") || f.is_op(prev, "::") {
            match f.prev(prev) {
                Some(p) if f.tokens[p].kind == TokenKind::Ident => start = p,
                Some(p) if matches!(f.tokens[p].kind, TokenKind::Close(_)) => match f.partner[p] {
                    Some(o) => match f.prev(o) {
                        Some(q) if f.tokens[q].kind == TokenKind::Ident => start = q,
                        _ => break,
                    },
                    None => break,
                },
                _ => break,
            }
        } else if f.is_op(prev, "&") || f.is_ident(prev, "mut") {
            start = prev;
        } else {
            break;
        }
    }
    let eq = f.prev(start).filter(|&e| f.is_op(e, "="))?;
    let name = f.prev(eq)?;
    if f.tokens[name].kind != TokenKind::Ident {
        return None;
    }
    let mut before = f.prev(name)?;
    if f.is_ident(before, "mut") {
        before = f.prev(before)?;
    }
    if f.is_ident(before, "let") {
        Some(f.text(name).to_string())
    } else {
        None
    }
}

/// Infer the receiver type text for the method call at `tok`:
/// `self.m()` → owner, `self.field.m()` → field type, `var.m()` /
/// `var.field.m()` → local/param (then field) type, `callee(...).m()` →
/// unresolvable here (the call graph retries via return types).
fn receiver_type(
    f: &SourceFile,
    tok: usize,
    owner: Option<&str>,
    local_ty: &dyn Fn(&str) -> Option<String>,
    field_ty: &dyn Fn(&str, &str) -> Option<String>,
    ret_ty: &dyn Fn(&str) -> Option<String>,
) -> Option<String> {
    // Collect the ident chain walking back: m . b . a → [a, b].
    let mut chain: Vec<String> = Vec::new();
    let mut cur = f.prev(tok)?; // the `.` before the method
    loop {
        if !f.is_op(cur, ".") {
            break;
        }
        match f.prev(cur) {
            Some(p) if f.tokens[p].kind == TokenKind::Ident => {
                chain.push(f.text(p).to_string());
                match f.prev(p) {
                    Some(q) => cur = q,
                    None => break,
                }
            }
            // `name(...).m()` — a call-result receiver is typed by its
            // producer's declared return (same-file bare fns only).
            Some(p) if f.tokens[p].kind == TokenKind::Close(Delim::Paren) => {
                let open = f.partner[p]?;
                let callee = f
                    .prev(open)
                    .filter(|&c| f.tokens[c].kind == TokenKind::Ident)?;
                if f.prev(callee)
                    .is_some_and(|q| f.is_op(q, ".") || f.is_op(q, "::"))
                {
                    return None; // longer chain: stay conservative
                }
                let head_ty = ret_ty(f.text(callee))?;
                chain.reverse();
                return match chain.len() {
                    0 => Some(head_ty),
                    1 => field_ty(type_head(&head_ty), &chain[0]),
                    _ => None,
                };
            }
            _ => return None, // receiver is a compound expression
        }
    }
    chain.reverse();
    if chain.is_empty() {
        return None;
    }
    let head_ty = if chain[0] == "self" {
        owner.map(str::to_string)
    } else {
        local_ty(&chain[0])
    }?;
    // Resolve at most one field hop: `x.field.m()`.
    match chain.len() {
        1 => Some(head_ty),
        2 => field_ty(type_head(&head_ty), &chain[1]),
        _ => None,
    }
}

/// The base ident of a type text: `&mut Vec<ProbeCache>` → `Vec`,
/// `Option<usize>` → `Option`.
pub fn type_head(ty: &str) -> &str {
    let ty = ty.trim_start_matches(['&', '*']);
    let ty = ty.strip_prefix("mut").unwrap_or(ty);
    let end = ty
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(ty.len());
    let head = &ty[..end];
    if head.is_empty() && ty.len() > end {
        // leading punctuation (e.g. `dyn `): retry past it
        type_head(&ty[1..])
    } else {
        head
    }
}

/// Every capitalized ident appearing in a type text — the owner-candidate
/// set for method resolution (`MutexGuard<'_, Engine>` → both idents, so
/// `.run_epoch()` on a guard still reaches `Engine`).
pub fn type_idents(ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ty.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if cur.chars().next().is_some_and(char::is_uppercase) && !out.contains(&cur) {
                out.push(cur.clone());
            }
            cur.clear();
        }
    }
    if cur.chars().next().is_some_and(char::is_uppercase) && !out.contains(&cur) {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_with_owner_trait_and_params() {
        let src = r#"
pub struct Controller { dram: DramSim, queues: QueueSet }

impl Controller {
    pub fn tick(&mut self, now_cycles: u64) -> bool {
        self.dram.probe(now_cycles);
        helper(now_cycles);
        true
    }
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}

fn helper(t_cycles: u64) -> u64 { t_cycles }
"#;
        let ff = FileFacts::extract("crates/mc/src/controller.rs", src);
        assert_eq!(ff.crate_name, "mc");
        let tick = ff.fns.iter().find(|f| f.name == "tick").expect("tick");
        assert_eq!(tick.owner.as_deref(), Some("Controller"));
        assert!(tick.trait_name.is_none());
        assert!(tick.has_self && tick.is_pub);
        assert_eq!(tick.params.len(), 1);
        assert_eq!(tick.params[0].name, "now_cycles");
        assert_eq!(tick.params[0].ty, "u64");
        assert_eq!(tick.ret_text, "bool");
        let probe = tick
            .calls
            .iter()
            .find(|c| c.name == "probe")
            .expect("probe");
        assert_eq!(probe.kind, CallKind::Method);
        assert_eq!(probe.recv_ty.as_deref(), Some("DramSim"));
        assert_eq!(probe.arg_idents, vec![Some("now_cycles".to_string())]);
        let helper = tick
            .calls
            .iter()
            .find(|c| c.name == "helper")
            .expect("helper");
        assert_eq!(helper.kind, CallKind::Direct);
        let disp = ff.fns.iter().find(|f| f.name == "fmt").expect("fmt");
        assert_eq!(disp.owner.as_deref(), Some("Controller"));
        assert_eq!(disp.trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn records_danger_sites_and_locks() {
        let src = r#"
impl Engine {
    fn run(&mut self, registry: &Registry) {
        let c = registry.counter("x");
        let mut v = Vec::new();
        v.push(1);
        let s: Vec<u8> = self.buf.iter().collect();
        let g = state.lock().unwrap_or_else(|p| p.into_inner());
        lock_engine(&self.inner).step();
    }
}
"#;
        let ff = FileFacts::extract("crates/bwpartd/src/engine.rs", src);
        let run = &ff.fns[0];
        let kinds: Vec<DangerKind> = run.dangers.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DangerKind::Registry));
        assert!(kinds.contains(&DangerKind::AllocFresh));
        assert!(kinds.contains(&DangerKind::AllocGrow));
        assert_eq!(kinds.iter().filter(|k| **k == DangerKind::Lock).count(), 2);
        let names: Vec<&str> = run.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["state", "engine"]);
        // `.step()` happens under neither guard (temporary statements).
        let step = run.calls.iter().find(|c| c.name == "step").expect("step");
        assert!(step.under_locks.contains(&"engine".to_string()));
    }

    #[test]
    fn imports_reexports_and_tables_parse() {
        let src = "
pub use inner::helper as aliased;
use bwpart_core::solver::{solve, certify as check};
// lint: lock-order: engine < table
pub fn f() {}
";
        let ff = FileFacts::extract("crates/cmp/src/lib.rs", src);
        let aliased = ff
            .imports
            .iter()
            .find(|i| i.alias == "aliased")
            .expect("aliased");
        assert!(aliased.reexport);
        assert_eq!(aliased.path, vec!["inner", "helper"]);
        let solve = ff
            .imports
            .iter()
            .find(|i| i.alias == "solve")
            .expect("solve");
        assert_eq!(solve.path, vec!["bwpart_core", "solver", "solve"]);
        let check = ff
            .imports
            .iter()
            .find(|i| i.alias == "check")
            .expect("check");
        assert_eq!(check.path, vec!["bwpart_core", "solver", "certify"]);
        assert_eq!(ff.lock_tables.len(), 1);
        assert_eq!(ff.lock_tables[0].names, vec!["engine", "table"]);
    }

    #[test]
    fn cfg_test_fns_are_marked_and_allows_resolve() {
        let src = "
// lint: allow(A1): fixture justification
pub fn hot() {}

#[cfg(test)]
mod tests {
    fn only_in_tests() {}
}
";
        let ff = FileFacts::extract("crates/dram/src/lib.rs", src);
        let hot = ff.fns.iter().find(|f| f.name == "hot").expect("hot");
        assert!(!hot.in_test);
        assert!(ff.allowed_at("A1", hot.span.0).is_some());
        assert!(ff.allowed_at("A2", hot.span.0).is_none());
        let t = ff
            .fns
            .iter()
            .find(|f| f.name == "only_in_tests")
            .expect("t");
        assert!(t.in_test);
    }

    #[test]
    fn type_head_and_idents_strip_decorations() {
        assert_eq!(type_head("&mut Vec<ProbeCache>"), "Vec");
        assert_eq!(type_head("Option<usize>"), "Option");
        assert_eq!(
            type_idents("MutexGuard<'_, Engine>"),
            vec!["MutexGuard", "Engine"]
        );
        assert_eq!(type_idents("&dyn Scheduler"), vec!["Scheduler"]);
    }

    #[test]
    fn struct_fields_capture_types() {
        let src = "
pub struct QueueSet {
    pub slots: Vec<Slot>,
    depth: usize,
}
";
        let ff = FileFacts::extract("crates/mc/src/queue.rs", src);
        assert_eq!(ff.structs.len(), 1);
        let s = &ff.structs[0];
        assert_eq!(s.name, "QueueSet");
        assert_eq!(s.fields[0], ("slots".to_string(), "Vec<Slot>".to_string()));
        assert_eq!(s.fields[1], ("depth".to_string(), "usize".to_string()));
    }
}
