//! A minimal JSON parser for validating the tool's own reports.
//!
//! The lint/analyze renderers emit JSON and SARIF by hand (no external
//! crates, per the workspace's zero-dependency rule); this module is the
//! matching reader so tests can structurally validate what was emitted —
//! round-tripping through a real parser catches escaping and nesting bugs
//! that string assertions cannot.
//!
//! Supports exactly the JSON the renderers produce: objects, arrays,
//! strings with `\"` `\\` `\/` `\b` `\f` `\n` `\r` `\t` `\uXXXX` escapes,
//! numbers (integer, fraction, exponent), booleans and null. Parsing is
//! total — any malformed input yields `Err`, never a panic.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Object keys are sorted (BTreeMap) — key order is not significant
    /// in JSON and a stable order simplifies assertions.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(src, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Nested lookup: `j.path(&["runs", "0", "tool"])` — numeric segments
    /// index arrays.
    pub fn path(&self, segments: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for seg in segments {
            cur = match cur {
                Json::Obj(m) => m.get(*seg)?,
                Json::Arr(v) => v.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(src, bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(src, bytes, pos)?;
                map.insert(key, val);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(src, bytes, pos).map(Json::Str),
        Some(b't') => expect_lit(src, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(src, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => expect_lit(src, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(src, bytes, pos),
    }
}

fn expect_lit(src: &str, pos: &mut usize, lit: &str) -> Result<(), String> {
    if src.get(*pos..*pos + lit.len()) == Some(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = src
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates are not emitted by the renderers;
                        // map them to the replacement char rather than
                        // failing (totality over fidelity here).
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole char.
                let ch = src[*pos..]
                    .chars()
                    .next()
                    .ok_or_else(|| "invalid UTF-8 boundary".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(j.path(&["a", "1"]).and_then(Json::num), Some(2.5));
        assert_eq!(j.path(&["a", "2"]).and_then(Json::num), Some(-300.0));
        assert_eq!(j.path(&["b", "c"]), Some(&Json::Bool(true)));
        assert_eq!(j.path(&["b", "d"]), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let j = Json::parse(r#""quote \" slash \\ nl \n tab \t uni A""#).unwrap();
        assert_eq!(j.str(), Some("quote \" slash \\ nl \n tab \t uni A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{'a': 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn utf8_passthrough() {
        let j = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(j.str(), Some("héllo → wörld"));
    }
}
