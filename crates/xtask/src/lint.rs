//! bwpart-audit: the model-invariant lint pass.
//!
//! A dependency-free **token-level** scanner over `crates/*/src` (plus the
//! vendored pool) that enforces the repository's model-safety rules. It
//! deliberately avoids rustc internals: [`crate::lex`] produces spanned
//! tokens (raw strings, nested block comments, char/lifetime ambiguity and
//! doc comments handled in the lexer, so none of them can leak into rule
//! matching), [`crate::tokens`] adds brace-matched structure with item/fn
//! boundaries, and [`crate::engine`] evaluates the rules on that shape.
//! `#[cfg(test)]` items are masked out. The rules are type-blind
//! heuristics tuned to this codebase; anything flagged can be suppressed
//! with an explicit, reasoned annotation attached to the site (same line,
//! the comment block above, or above the attributes/header of the
//! annotated item):
//!
//! ```text
//! // lint: allow(R1): reason the reviewer should read
//! ```
//!
//! # Rules
//!
//! * **R1** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` in non-test library code. Model code must
//!   surface bad inputs as `ModelError`, not aborts.
//! * **R2** — no `==` / `!=` against floating-point literals and no bare
//!   `.partial_cmp(...)` calls. Ordering goes through `f64::total_cmp`;
//!   tolerance comparisons go through `bwpart_core::contracts`.
//! * **R3** — in the share-producing crates (`bwpart-core` and the
//!   `bwpartd` epoch engine), every `pub fn` returning shares — a bare
//!   `Vec<f64>` anywhere in the return type, or an owned `Allocation` /
//!   `MultiAllocation` / `CoordOutcome` wrapper (reference accessors are
//!   exempt) — must certify its output via `validate_shares`,
//!   `Allocation::certified`, or a contract macro (`ensures_simplex!`,
//!   `ensures_capped!`, `invariant!`).
//! * **R4** — no `#[allow(clippy::...)]` without a justification comment
//!   (a plain `//` comment attached to the attribute).
//! * **R5** — in `bwpart-experiments`, no hand-rolled `.step()` calls:
//!   experiment code must advance the simulator through `CmpSystem::run`
//!   so event-driven fast-forward applies to every figure/table
//!   reproduction uniformly.
//! * **R6** — every `Ordering::Relaxed` / `Ordering::AcqRel` use needs a
//!   justification comment naming the happens-before edge it relies on
//!   (or why none is needed): a comment containing `hb:` or
//!   `happens-before` attached to the site. SeqCst/Acquire/Release need
//!   no annotation.
//! * **R7** — no `static mut` anywhere; and inside the vendored crates
//!   (`vendor/rayon`, `vendor/mio`), no direct `std::sync` /
//!   `std::thread` references outside `shim.rs`: they construct every
//!   synchronization primitive through the loomlite-aliased shim module
//!   so model runs cover the real code.
//! * **R8** — every `unsafe` site (block, impl, fn, trait) needs a
//!   `// SAFETY:` comment attached, and every file containing unsafe code
//!   must be registered with a matching (token-accurate) site count in
//!   `UNSAFE_AUDIT.md`.
//! * **R9** — in the simulator's hot crates (`crates/dram`, `crates/mc`),
//!   the per-cycle/per-tick functions (`tick`, `step`, `issue`, ...) may
//!   touch metrics only through the zero-cost `obs_*!` macros over hooks
//!   pre-resolved at attach time: direct registry calls (`.counter(...)`,
//!   `.gauge(...)`, `.histogram(...)`) resolve names per event and are
//!   banned there. Cold paths (attach, publish) are exempt.
//! * **R10** — in `crates/core` and `crates/bwpartd`, `match`es whose
//!   patterns name `PartitionScheme` / `Scheme` / `ErrorCode` must stay
//!   exhaustive: no `_` wildcard or lowercase catch-all binding arms, so a
//!   newly added scheme variant or error code forces a review at every
//!   dispatch site instead of silently falling through.
//! * **R11** — unit safety: additive/comparison arithmetic must not mix
//!   `*_cycles`, `*_ns` and share-fraction (`*_share` / `*_frac`)
//!   identifiers without an explicit conversion call (`ns_to_cycles`
//!   etc.); `*` and `/` are exempt because that is how conversions are
//!   written.
//! * **R12** — feature-gate consistency: `obs_*!` macro call sites must
//!   live in crates whose `Cargo.toml` wires the `trace` feature through
//!   to `bwpart-obs` (either a `trace = ["bwpart-obs/trace", ...]`
//!   feature or the dep feature enabled directly), so tracing builds
//!   actually reach those sites.
//! * **R13** — mutex acquisition order: in `bwpartd::server` /
//!   `bwpartd::engine`, lock guards must be taken in the order declared
//!   by an in-source `// lint: lock-order: outer < inner` table; nested
//!   out-of-order or re-entrant acquisitions (the deadlock shapes) are
//!   flagged, as is any lock missing from the table.
//! * **R14** — allocation-free SoA hot path: the per-tick functions of
//!   the batched DRAM timing core (`crates/dram/src/soa.rs`) must not
//!   heap-allocate — no `.push`/`.push_back`/`.to_vec`/`.collect`/
//!   `.reserve`/`.extend`, `vec![...]` or `Box::new(...)` inside them;
//!   scratch buffers are hoisted to construction time.
//!
//! Rules R1–R5 run over `crates/*/src`; R6 and R8 run over both
//! `crates/*/src` and `vendor/{rayon,mio}/src`; R7's `static mut` ban
//! runs everywhere and its shim-only part over `vendor/{rayon,mio}/src`;
//! R9
//! runs over `crates/dram/src` and `crates/mc/src`; R10 over
//! `crates/core/src` and `crates/bwpartd/src`; R11 and R12 over every
//! first-party crate; R13 over the `bwpartd` server/engine modules; R14
//! over the SoA timing core file only.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::{self, FileCtx, Finding};

/// One enforced rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No panicking constructs in non-test library code.
    R1,
    /// No float-literal equality or bare `partial_cmp`.
    R2,
    /// Share/allocation producers must certify their outputs.
    R3,
    /// Clippy suppressions need a justification comment.
    R4,
    /// Experiments must drive the simulator via `CmpSystem::run`, not
    /// per-cycle `.step()` loops.
    R5,
    /// Relaxed/AcqRel atomic orderings need a happens-before
    /// justification comment.
    R6,
    /// No `static mut`; vendored pool code must reach `std::sync` /
    /// `std::thread` only through its shim module.
    R7,
    /// `unsafe` sites need `// SAFETY:` comments and an `UNSAFE_AUDIT.md`
    /// inventory entry.
    R8,
    /// Simulator hot loops (`crates/dram`, `crates/mc`) must not resolve
    /// metrics inline: no direct registry calls inside per-cycle/per-tick
    /// functions — pre-resolve handles at attach time and touch them
    /// through the `obs_*!` macros.
    R9,
    /// `match`es over `PartitionScheme` / `ErrorCode` in the scheme and
    /// service crates must list every variant (no wildcard arms).
    R10,
    /// No mixing `_cycles` / `_ns` / share-fraction identifiers in
    /// additive or comparison arithmetic without an explicit conversion.
    R11,
    /// `obs_*!` call sites require `trace` feature wiring to `bwpart-obs`
    /// in the owning crate's manifest.
    R12,
    /// `bwpartd` lock guards must follow the declared in-source
    /// lock-order table (deadlock lint).
    R13,
    /// The SoA timing core's per-tick functions must not heap-allocate.
    R14,
}

impl Rule {
    /// Short code used in reports and `lint: allow(...)` annotations.
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
            Rule::R11 => "R11",
            Rule::R12 => "R12",
            Rule::R13 => "R13",
            Rule::R14 => "R14",
        }
    }

    /// Parse a rule code (`"R7"`) back to the rule.
    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// One-line description for `cargo xtask lint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::R1 => "no unwrap()/expect()/panic!/unreachable! in non-test library code",
            Rule::R2 => "no ==/!= against float literals, no bare partial_cmp (use total_cmp)",
            Rule::R3 => {
                "pub fns returning shares (Vec<f64>, or owned Allocation/MultiAllocation/\
                         CoordOutcome) in bwpart-core or the bwpartd engine must route \
                         through validate_shares, Allocation::certified, or a contract macro"
            }
            Rule::R4 => "#[allow(clippy::...)] requires a justification comment",
            Rule::R5 => {
                "bwpart-experiments must drive the simulator via CmpSystem::run, \
                         not per-cycle .step() loops (fast-forward must apply everywhere)"
            }
            Rule::R6 => {
                "Ordering::Relaxed / Ordering::AcqRel requires a justification \
                         comment naming the happens-before edge (`hb:` or `happens-before`)"
            }
            Rule::R7 => {
                "no static mut; vendored crates must construct sync primitives only \
                         through their loomlite-aliased shim module (no std::sync/std::thread)"
            }
            Rule::R8 => {
                "unsafe sites need a // SAFETY: comment and a matching entry in \
                         the UNSAFE_AUDIT.md inventory"
            }
            Rule::R9 => {
                "simulator hot loops (crates/dram, crates/mc per-cycle/per-tick \
                         functions) must use the obs_*! macros over pre-resolved hooks, \
                         never direct registry .counter()/.gauge()/.histogram() calls"
            }
            Rule::R10 => {
                "matches over PartitionScheme/ErrorCode in crates/core and \
                         crates/bwpartd must list every variant — no `_`/binding \
                         catch-all arms"
            }
            Rule::R11 => {
                "no mixing _cycles / _ns / share-fraction identifiers in +,-, \
                         or comparison arithmetic without an explicit conversion call"
            }
            Rule::R12 => {
                "obs_*! call sites must live in crates whose Cargo.toml wires \
                         the `trace` feature through to bwpart-obs"
            }
            Rule::R13 => {
                "bwpartd server/engine lock acquisitions must follow the \
                         declared `// lint: lock-order:` table (deadlock lint)"
            }
            Rule::R14 => {
                "the SoA timing core's per-tick functions (crates/dram/src/soa.rs) \
                         must not heap-allocate: no .push/.push_back/.to_vec/.collect/\
                         .reserve/.extend, vec![...] or Box::new(...) — hoist scratch \
                         buffers to construction time"
            }
        }
    }

    /// Long-form rationale for `cargo xtask lint --explain R<N>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1 => {
                "The model is a library first: experiments, the CLI, bwpartd and the \
                 benches all call into it with inputs the library cannot vet at compile \
                 time. A panic in shared code aborts every one of those harnesses at \
                 once, so fallible paths must return ModelError instead. Tests \
                 (#[cfg(test)] items) may panic freely. Suppress a deliberate abort \
                 with `// lint: allow(R1): <reason>` attached to the call."
            }
            Rule::R2 => {
                "Float equality is not transitive under rounding, and partial_cmp \
                 silently returns None for NaN — both have produced wrong ordering \
                 decisions in bandwidth-share code. Use f64::total_cmp for ordering \
                 and contracts::approx_eq for tolerance checks. The rule matches the \
                 token stream, so float literals inside strings or comments are inert."
            }
            Rule::R3 => {
                "Eq. 9-11 of the paper require share vectors to lie on the capped \
                 simplex. Every public producer of shares — a bare Vec<f64>, or an \
                 owned Allocation / MultiAllocation / CoordOutcome wrapper — in \
                 bwpart-core or the bwpartd engine must route its output through \
                 validate_shares, Allocation::certified, ensures_simplex!, \
                 ensures_capped! or invariant! so the certification is part of the \
                 function, not the caller's homework. Reference accessors \
                 (`&Allocation`) are exempt: they return an already-certified value."
            }
            Rule::R4 => {
                "A clippy suppression with no reason rots: nobody can tell whether it \
                 is still needed or what it was hiding. Attach a plain `//` comment \
                 (not a doc comment) with the reason to the attribute."
            }
            Rule::R5 => {
                "bwpart-experiments reproduces the paper's figures; hand-rolled \
                 .step() loops bypass CmpSystem::run's event-driven fast-forward, so \
                 a figure could silently measure a different simulator configuration \
                 than the rest of the suite. Drive the system through run()."
            }
            Rule::R6 => {
                "Relaxed and AcqRel orderings are correct only relative to a specific \
                 happens-before edge; an unexplained one cannot be reviewed or \
                 model-checked. Name the edge in an attached comment containing `hb:` \
                 or `happens-before` (or state why no edge is needed). SeqCst, \
                 Acquire and Release carry their own contract and need no comment."
            }
            Rule::R7 => {
                "static mut is UB-prone (aliased &mut) and invisible to the loomlite \
                 model checker — use atomics, locks, or OnceLock. Inside the vendored \
                 crates every sync/thread primitive must come from crate::shim so the \
                 loomlite build swaps in its controlled versions; naming std::sync or \
                 std::thread directly would leave an unexplored interleaving."
            }
            Rule::R8 => {
                "Every unsafe site needs a reviewable obligation: a // SAFETY: \
                 comment attached to the site, plus a per-file, token-accurate site \
                 count registered in UNSAFE_AUDIT.md. The audit cross-check fails \
                 when counts drift, so new unsafe cannot land unnoticed."
            }
            Rule::R9 => {
                "The dram/mc per-cycle functions run millions of times per \
                 experiment; a registry .counter()/.gauge()/.histogram() call hashes \
                 a name and takes a lock per event. Hot paths must pre-resolve \
                 handles at attach time and touch them through the zero-cost obs_*! \
                 macros; cold paths (attach, publish) are exempt."
            }
            Rule::R10 => {
                "Adding a PartitionScheme variant or an ErrorCode must force a \
                 review at every dispatch over those enums — the certification and \
                 wire-protocol story depends on it. A `_` or lowercase binding arm \
                 in a match whose patterns name PartitionScheme/Scheme/ErrorCode \
                 would adopt new variants silently, so such matches must list every \
                 variant (or-patterns are fine). String-keyed matches are exempt: \
                 the rule looks at arm patterns, not expressions."
            }
            Rule::R11 => {
                "Cycle counts, wall-clock nanoseconds and share fractions are all \
                 bare numbers in this codebase; adding or comparing across units is \
                 a silent correctness bug (the F2 class of drift). The rule \
                 classifies operand identifiers by suffix (_cycles/_ns/_share/_frac) \
                 and flags +,-,== and ordering comparisons that mix classes. \
                 Multiplication and division are exempt — that is how conversions \
                 like ns_to_cycles are written, and a conversion call renames the \
                 unit (its name ends in the target suffix)."
            }
            Rule::R12 => {
                "The obs_*! macros compile to no-ops unless the `trace` feature \
                 reaches bwpart-obs. A call site in a crate that does not forward \
                 the feature (`trace = [\"bwpart-obs/trace\", ...]` or the dep \
                 feature enabled directly) can never fire, which is a silent \
                 observability hole: builds with --features trace would still skip \
                 it. Wire the feature through the owning crate's Cargo.toml."
            }
            Rule::R13 => {
                "bwpartd's server and engine share mutexes; taking them in \
                 different orders on different paths is the classic deadlock. The \
                 order is declared in-source (`// lint: lock-order: outer < inner`) \
                 and the rule checks every nested acquisition against it, flags \
                 re-entrant locking of the same mutex, and requires every lock it \
                 sees to appear in the table — so adding a lock forces the table \
                 (and the reviewer) to place it."
            }
            Rule::R14 => {
                "The struct-of-arrays timing core exists so the controller's \
                 scheduling scan can probe bank state in nanoseconds: its per-tick \
                 functions (raw_probe, probe, issuable_at, commit, channel_floor, \
                 quiesce_at, grid_clear, bank_earliest) run once per candidate per \
                 DRAM tick, millions of times per simulated second. A single heap \
                 allocation on that path — a growing Vec, a collect, a boxed \
                 temporary — reintroduces exactly the malloc traffic the SoA rewrite \
                 removed, and profiles as a diffuse slowdown no single caller owns. \
                 All scratch space is sized and allocated at construction; the hot \
                 functions may only index into it."
            }
        }
    }

    /// All rules, report order.
    pub const ALL: [Rule; 14] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
        Rule::R10,
        Rule::R11,
        Rule::R12,
        Rule::R13,
        Rule::R14,
    ];
}

/// One finding: a rule violated at a specific source span.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (as given to the scanner).
    pub file: String,
    /// 1-based line number of the anchor.
    pub line: usize,
    /// 1-based byte column of the anchor.
    pub col: usize,
    /// 1-based line number of the span end.
    pub end_line: usize,
    /// 1-based byte column just past the span end.
    pub end_col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line the anchor sits on.
    pub snippet: String,
    /// Suppressed by an attached `lint: allow(R<N>)` marker?
    pub suppressed: bool,
    /// The marker comment's text, when suppressed.
    pub justification: Option<String>,
}

impl Violation {
    /// A position-only violation (used by the inventory cross-check,
    /// which reports on markdown rather than lexed Rust).
    fn at(file: &str, line: usize, rule: Rule, message: String) -> Self {
        Violation {
            file: file.to_string(),
            line,
            col: 1,
            end_line: line,
            end_col: 1,
            rule,
            message,
            snippet: String::new(),
            suppressed: false,
            justification: None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.code(),
            self.message
        )
    }
}

/// 1-based (line, byte-col) of byte offset `pos` in `src`.
pub(crate) fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let before = &src.as_bytes()[..pos];
    let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
    let line_start = before
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    (line, pos - line_start + 1)
}

/// The trimmed source line containing byte offset `pos` (truncated so
/// reports and JSON stay readable).
pub(crate) fn snippet_at(src: &str, pos: usize) -> String {
    let pos = pos.min(src.len());
    let bytes = src.as_bytes();
    let start = bytes[..pos]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let end = bytes[pos..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| pos + p)
        .unwrap_or(bytes.len());
    let line = src.get(start..end).unwrap_or("").trim();
    let mut out: String = line.chars().take(160).collect();
    if out.len() < line.len() {
        out.push('…');
    }
    out
}

/// Convert engine findings into reported violations.
fn to_violations(file: &str, src: &str, findings: Vec<Finding>) -> Vec<Violation> {
    let mut out: Vec<Violation> = findings
        .into_iter()
        .map(|f| {
            let (line, col) = line_col(src, f.start);
            let (end_line, end_col) = line_col(src, f.end);
            Violation {
                file: file.to_string(),
                line,
                col,
                end_line,
                end_col,
                rule: f.rule,
                message: f.message,
                snippet: snippet_at(src, f.start),
                suppressed: f.suppressed,
                justification: f.justification,
            }
        })
        .collect();
    out.sort_by(|a, b| (a.line, a.col, a.rule.code()).cmp(&(b.line, b.col, b.rule.code())));
    out
}

/// Count the `unsafe` sites R8 audits in `src` (non-test code),
/// token-accurately, for cross-checking against the `UNSAFE_AUDIT.md`
/// inventory.
pub fn count_unsafe_sites(src: &str) -> usize {
    engine::unsafe_sites(src)
}

/// Scan one file's source. `is_share_producer` enables the R3 producer
/// rule and the R10 exhaustiveness rule (both apply to the crates that
/// compute share vectors: `bwpart-core` and the `bwpartd` engine);
/// `is_experiments` enables the R5 stepping rule; `is_hot_sim` enables
/// R9. R11 always runs; R12/R13 need tree context and are exercised via
/// [`lint_tree`]. Suppressed findings are filtered out (use
/// [`lint_tree_report`] to see them).
pub fn lint_source(
    file: &str,
    src: &str,
    is_share_producer: bool,
    is_experiments: bool,
    is_hot_sim: bool,
) -> Vec<Violation> {
    let ctx = FileCtx {
        share_producer: is_share_producer,
        experiments: is_experiments,
        hot_sim: is_hot_sim,
        match_exhaustive: is_share_producer,
        unit_safety: true,
        ..FileCtx::default()
    };
    to_violations(file, src, engine::run(src, &ctx))
        .into_iter()
        .filter(|v| !v.suppressed)
        .collect()
}

/// Scan one vendored-crate file (`vendor/{rayon,mio}/src/**`). Only the
/// concurrency rules apply there: R6, R7 (both parts; `is_shim` exempts
/// the alias module itself from the std-reference ban), and R8.
pub fn lint_vendor_source(file: &str, src: &str, is_shim: bool) -> Vec<Violation> {
    let ctx = FileCtx {
        vendor: true,
        shim: is_shim,
        ..FileCtx::default()
    };
    to_violations(file, src, engine::run(src, &ctx))
        .into_iter()
        .filter(|v| !v.suppressed)
        .collect()
}

/// Cross-check actual per-file `unsafe` site counts against the
/// `UNSAFE_AUDIT.md` inventory (`audit` is its text; `None` when the file
/// does not exist, meaning an empty inventory). Inventory lines look like:
///
/// ```text
/// - `crates/loomlite/src/sync.rs` — 4 — UnsafeCell access behind the guard
/// ```
pub fn check_unsafe_inventory(audit: Option<&str>, actual: &[(String, usize)]) -> Vec<Violation> {
    let audit_file = "UNSAFE_AUDIT.md";
    let mut out = Vec::new();
    let mut inventory: Vec<(String, usize, usize)> = Vec::new(); // (path, count, line)
    for (idx, line) in audit.unwrap_or("").lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("- `") else {
            continue;
        };
        let Some((path, tail)) = rest.split_once('`') else {
            continue;
        };
        let count = tail
            .split(['—', '-'])
            .map(str::trim)
            .find(|s| !s.is_empty())
            .and_then(|s| s.parse::<usize>().ok());
        match count {
            Some(n) => inventory.push((path.to_string(), n, idx + 1)),
            None => out.push(Violation::at(
                audit_file,
                idx + 1,
                Rule::R8,
                format!(
                    "malformed inventory line for `{path}`: expected \
                     `- \u{60}path\u{60} — <count> — <description>`"
                ),
            )),
        }
    }
    for (file, count) in actual {
        match inventory.iter().find(|(p, _, _)| p == file) {
            None => out.push(Violation::at(
                file,
                1,
                Rule::R8,
                format!(
                    "{count} unsafe site(s) not registered in {audit_file}: add \
                     `- \u{60}{file}\u{60} — {count} — <description>`"
                ),
            )),
            Some((_, registered, audit_line)) if registered != count => out.push(Violation::at(
                audit_file,
                *audit_line,
                Rule::R8,
                format!(
                    "inventory lists {registered} unsafe site(s) for `{file}` \
                     but the source has {count}: update the entry"
                ),
            )),
            Some(_) => {}
        }
    }
    for (path, _, audit_line) in &inventory {
        if !actual.iter().any(|(f, _)| f == path) {
            out.push(Violation::at(
                audit_file,
                *audit_line,
                Rule::R8,
                format!(
                    "stale inventory entry: `{path}` has no unsafe sites (or no \
                     longer exists); remove the line"
                ),
            ));
        }
    }
    out
}

/// Does this crate manifest wire the `trace` feature through to
/// `bwpart-obs` (R12)? Accepts either shape:
///
/// ```text
/// bwpart-obs = { workspace = true, features = ["trace"] }
/// ```
///
/// or a forwarding feature:
///
/// ```text
/// [features]
/// trace = ["bwpart-obs/trace"]
/// ```
fn obs_trace_wired(manifest: &str) -> bool {
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with("bwpart-obs") && t.contains("features") && t.contains("\"trace\"") {
            return true;
        }
        let assigned = t
            .strip_prefix("trace")
            .map(|rest| rest.trim_start().starts_with('='))
            .unwrap_or(false);
        if assigned && t.contains("bwpart-obs/trace") {
            return true;
        }
    }
    false
}

/// Collect `.rs` files under `dir`, recursively.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `root`, plus (when present)
/// the vendored crates under `vendor/{rayon,mio}/src` with the
/// concurrency rules,
/// and cross-check the `UNSAFE_AUDIT.md` inventory. Returns **all**
/// findings — including suppressed ones with their justification text —
/// in deterministic (path, line, col) order.
pub fn lint_tree_report(root: &Path) -> io::Result<Vec<Violation>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    let mut unsafe_counts: Vec<(String, usize)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let unix_rel = rel.replace('\\', "/");
        let is_share_producer =
            unix_rel.starts_with("crates/core/") || unix_rel.starts_with("crates/bwpartd/");
        // crates/obs defines the macros; every other crate must wire the
        // feature through its own manifest to call them.
        let obs_wired = if unix_rel.starts_with("crates/obs/") {
            Some(true)
        } else {
            let crate_dir = unix_rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("");
            let manifest =
                fs::read_to_string(root.join("crates").join(crate_dir).join("Cargo.toml"))
                    .unwrap_or_default();
            Some(obs_trace_wired(&manifest))
        };
        let ctx = FileCtx {
            share_producer: is_share_producer,
            experiments: unix_rel.starts_with("crates/experiments/"),
            hot_sim: unix_rel.starts_with("crates/dram/") || unix_rel.starts_with("crates/mc/"),
            match_exhaustive: is_share_producer,
            unit_safety: true,
            obs_wired,
            lock_order: unix_rel == "crates/bwpartd/src/server.rs"
                || unix_rel == "crates/bwpartd/src/engine.rs",
            soa_hot: unix_rel == "crates/dram/src/soa.rs",
            ..FileCtx::default()
        };
        let src = fs::read_to_string(&path)?;
        out.extend(to_violations(&rel, &src, engine::run(&src, &ctx)));
        let sites = count_unsafe_sites(&src);
        if sites > 0 {
            unsafe_counts.push((unix_rel, sites));
        }
    }

    // The vendored crates (the rayon-like pool and the mio-like reactor):
    // concurrency rules only — their panic/float idioms are deliberately
    // upstream-shaped, so R1-R5 stay out.
    for vendored in ["rayon", "mio"] {
        let vendor_src = root.join("vendor").join(vendored).join("src");
        if !vendor_src.is_dir() {
            continue;
        }
        let mut vendor_files = Vec::new();
        collect_rs(&vendor_src, &mut vendor_files)?;
        vendor_files.sort();
        for path in vendor_files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            let unix_rel = rel.replace('\\', "/");
            let is_shim = unix_rel.ends_with("/shim.rs");
            let ctx = FileCtx {
                vendor: true,
                shim: is_shim,
                ..FileCtx::default()
            };
            let src = fs::read_to_string(&path)?;
            out.extend(to_violations(&unix_rel, &src, engine::run(&src, &ctx)));
            let sites = count_unsafe_sites(&src);
            if sites > 0 {
                unsafe_counts.push((unix_rel, sites));
            }
        }
    }

    let audit = fs::read_to_string(root.join("UNSAFE_AUDIT.md")).ok();
    out.extend(check_unsafe_inventory(audit.as_deref(), &unsafe_counts));
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.code()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.code(),
        ))
    });
    Ok(out)
}

/// Like [`lint_tree_report`], filtered to the findings that gate CI: the
/// unsuppressed ones.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(lint_tree_report(root)?
        .into_iter()
        .filter(|v| !v.suppressed)
        .collect())
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings as the stable machine-readable report consumed by
/// CI artifacts (`cargo xtask lint --json`). Schema (version 1):
///
/// ```json
/// {
///   "schema_version": 1,
///   "tool": "bwpart-audit",
///   "rules": [{"code": "R1", "summary": "..."}, ...],
///   "findings": [{
///     "rule": "R1", "path": "crates/...", "line": 3, "col": 13,
///     "end_line": 3, "end_col": 19, "snippet": "...", "message": "...",
///     "suppressed": false, "justification": null
///   }, ...],
///   "counts": {"total": 0, "active": 0, "suppressed": 0}
/// }
/// ```
pub fn render_json(findings: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"tool\": \"bwpart-audit\",\n  \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let sep = if i + 1 < Rule::ALL.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"code\": \"{}\", \"summary\": \"{}\"}}{sep}\n",
            rule.code(),
            json_escape(rule.describe())
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, v) in findings.iter().enumerate() {
        let sep = if i + 1 < findings.len() { "," } else { "" };
        let justification = match &v.justification {
            Some(j) => format!("\"{}\"", json_escape(j)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"end_line\": {}, \"end_col\": {}, \"snippet\": \"{}\", \
             \"message\": \"{}\", \"suppressed\": {}, \"justification\": {}}}{sep}\n",
            v.rule.code(),
            json_escape(&v.file),
            v.line,
            v.col,
            v.end_line,
            v.end_col,
            json_escape(&v.snippet),
            json_escape(&v.message),
            v.suppressed,
            justification,
        ));
    }
    let suppressed = findings.iter().filter(|v| v.suppressed).count();
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"total\": {}, \"active\": {}, \"suppressed\": {}}}\n}}\n",
        findings.len(),
        findings.len() - suppressed,
        suppressed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.code()).collect()
    }

    #[test]
    fn r1_catches_seeded_unwrap_and_panic() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let y = x.unwrap();
    if y == 0 { panic!("zero"); }
    y
}
"#;
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R1", "R1"]);
        assert_eq!(vs[0].line, 3);
        assert_eq!(vs[1].line, 4);
    }

    #[test]
    fn r1_allows_annotated_sites_and_unwrap_or() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(R1): length checked two lines up
    let y = x.unwrap();
    let z = x.unwrap_or(7);
    y + z + x.unwrap_or_else(|| 9)
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r1_skips_cfg_test_modules_and_strings() {
        let src = r#"
pub fn describe() -> &'static str {
    "call .unwrap() and panic! at will"
}

#[cfg(test)]
mod tests {
    #[test]
    fn boom() {
        super::describe().to_string().parse::<u32>().unwrap();
        panic!("fine in tests");
    }
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r2_catches_partial_cmp_and_float_eq() {
        let src = r#"
pub fn f(a: f64, b: f64) -> bool {
    let _ = a.partial_cmp(&b);
    a == 0.5 || b != 1e-9
}
"#;
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R2", "R2", "R2"]);
    }

    #[test]
    fn r2_permits_total_cmp_int_eq_and_fn_definitions() {
        let src = r#"
pub fn partial_cmp_like(a: f64, b: f64, n: usize) -> bool {
    let _ = a.total_cmp(&b);
    n == 3 && a <= 0.5 && b >= 1.0
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r3_requires_certification_in_core() {
        let bad = r#"
pub fn shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#;
        let vs = lint_source("core.rs", bad, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
        assert!(vs[0].message.contains("shares"));
        // The same file is fine outside bwpart-core...
        assert!(lint_source("other.rs", bad, false, false, false).is_empty());
        // ...and fine once the output is certified.
        let good = r#"
pub fn shares(n: usize) -> Vec<f64> {
    let beta = vec![1.0 / n as f64; n];
    crate::ensures_simplex!(beta);
    beta
}
"#;
        assert!(lint_source("core.rs", good, true, false, false).is_empty());
    }

    #[test]
    fn r3_covers_the_bwpartd_engine() {
        // The epoch engine is a share producer just like bwpart-core: an
        // uncertified Vec<f64> producer must trip R3 when the file is
        // linted with the share-producer flag set (as run_lint does for
        // everything under crates/bwpartd/).
        let bad = r#"
pub fn epoch_shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#;
        let vs = lint_source("crates/bwpartd/src/engine.rs", bad, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
        let good = r#"
pub fn epoch_shares(n: usize) -> Vec<f64> {
    let beta = vec![1.0 / n as f64; n];
    bwpart_core::ensures_simplex!(beta);
    beta
}
"#;
        assert!(lint_source("crates/bwpartd/src/engine.rs", good, true, false, false).is_empty());
    }

    #[test]
    fn r3_sees_through_result_wrappers() {
        let src = r#"
pub fn allocation(b: f64) -> Result<Vec<f64>, ModelError> {
    Ok(vec![b])
}
"#;
        let vs = lint_source("core.rs", src, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
    }

    #[test]
    fn r3_covers_owned_allocation_wrappers() {
        // The typed multi-resource wrappers are share producers just like
        // a bare Vec<f64>: an uncertified owned return trips R3...
        let bad = r#"
pub fn split(r: &Resource) -> MultiAllocation {
    MultiAllocation { allocations: vec![] }
}
pub fn outcome(r: &Resource) -> Result<CoordOutcome, ModelError> {
    todo_build()
}
"#;
        let vs = lint_source("core.rs", bad, true, false, false);
        assert_eq!(codes(&vs), vec!["R3", "R3"]);
        // ...a producer that routes through Allocation::certified (or a
        // contract macro) passes...
        let good = r#"
pub fn split(r: &Resource, amounts: Vec<f64>) -> Result<Allocation, ModelError> {
    Allocation::certified(r, amounts, None)
}
pub fn outcome(apps: &[App]) -> Result<CoordOutcome, ModelError> {
    let beta = inner(apps)?;
    crate::ensures_simplex!(beta);
    assemble(beta)
}
"#;
        assert!(lint_source("core.rs", good, true, false, false).is_empty());
        // ...and reference accessors are exempt: they hand out a value
        // that was certified at construction.
        let accessor = r#"
pub fn get(&self, kind: &str) -> Option<&Allocation> {
    self.allocations.iter().find(|a| a.kind == kind)
}
"#;
        assert!(lint_source("core.rs", accessor, true, false, false).is_empty());
    }

    #[test]
    fn r4_requires_justification() {
        let bad = "#[allow(clippy::too_many_arguments)]\npub fn f() {}\n";
        let vs = lint_source("fixture.rs", bad, false, false, false);
        assert_eq!(codes(&vs), vec!["R4"]);
        let good = "// the signature mirrors the paper's Eq. 7 terms\n\
                    #[allow(clippy::too_many_arguments)]\npub fn f() {}\n";
        assert!(lint_source("fixture.rs", good, false, false, false).is_empty());
    }

    #[test]
    fn r5_catches_step_loops_in_experiments_only() {
        let src = r#"
pub fn measure(sys: &mut CmpSystem) {
    for _ in 0..1_000 {
        sys.step();
    }
}
"#;
        let vs = lint_source("experiments.rs", src, false, true, false);
        assert_eq!(codes(&vs), vec!["R5"]);
        assert_eq!(vs[0].line, 4);
        // The same code is fine outside bwpart-experiments (e.g. the cmp
        // crate's own per-cycle reference implementation).
        assert!(lint_source("cmp.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r5_allows_annotated_sites_run_calls_and_tests() {
        let src = r#"
pub fn fine(sys: &mut CmpSystem) {
    sys.run(1_000);
    // lint: allow(R5): cross-checking one cycle against the reference
    sys.step();
    let stepper = 3;
    let _ = stepper;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_step() {
        let mut sys = super::mk();
        sys.step();
    }
}
"#;
        assert!(lint_source("experiments.rs", src, false, true, false).is_empty());
    }

    #[test]
    fn comments_and_raw_strings_do_not_leak_into_code() {
        let src = r##"
// a.unwrap() in a comment is fine
/* block with panic! and == 0.5 */
pub fn f() -> &'static str {
    r#"raw with .unwrap() and == 1.0"#
}
"##;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r6_catches_unjustified_relaxed_and_acqrel() {
        let src = r"
pub fn f(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::Relaxed)
}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R6", "R6"]);
        assert_eq!(vs[0].line, 3);
        assert_eq!(vs[1].line, 4);
    }

    #[test]
    fn r6_accepts_hb_justifications_and_seqcst() {
        let src = r"
pub fn f(c: &AtomicUsize) -> usize {
    // hb: pairs with the Release store in publish(); the counter is the
    // only memory read through this edge.
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::SeqCst);
    // the happens-before edge is the scope join below
    c.load(Ordering::Relaxed)
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r6_ignores_bare_identifiers_and_comments() {
        let src = r#"
// Ordering::Relaxed in a comment is fine
pub fn f(relaxed: bool) -> &'static str {
    let Relaxed = 3;
    let _ = (relaxed, Relaxed);
    "Ordering::Relaxed in a string is fine"
}
"#;
        // lint: allow(R7) not needed: fixture has no static mut.
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert!(vs.is_empty(), "unexpected: {vs:?}");
    }

    #[test]
    fn r7_catches_static_mut() {
        let src = r"
static mut COUNTER: usize = 0;
pub fn f() {}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R7"]);
        assert_eq!(vs[0].line, 2);
        // Immutable statics are fine.
        let ok = "static COUNTER: AtomicUsize = AtomicUsize::new(0);\n";
        assert!(lint_source("fixture.rs", ok, false, false, false).is_empty());
    }

    #[test]
    fn r7_vendor_bans_std_sync_outside_shim() {
        let src = r"
use std::sync::Mutex;
pub fn f() {
    let _ = std::thread::available_parallelism();
}
";
        let vs = lint_vendor_source("vendor/rayon/src/lib.rs", src, false);
        assert_eq!(codes(&vs), vec!["R7", "R7"]);
        // The shim module itself is the one sanctioned construction point.
        assert!(lint_vendor_source("vendor/rayon/src/shim.rs", src, true).is_empty());
        // Non-sync std paths stay allowed in vendor code.
        let ok = "pub fn g() { let _ = std::env::var(\"X\"); }\n";
        assert!(lint_vendor_source("vendor/rayon/src/lib.rs", ok, false).is_empty());
    }

    #[test]
    fn r8_requires_safety_comment() {
        let bad = r"
pub fn f(p: *const u32) -> u32 {
    unsafe { *p }
}
";
        let vs = lint_source("fixture.rs", bad, false, false, false);
        assert_eq!(codes(&vs), vec!["R8"]);
        assert_eq!(vs[0].line, 3);
        let good = r"
pub fn f(p: *const u32) -> u32 {
    // SAFETY: caller contract guarantees p is valid and aligned, and no
    // mutable alias exists for the duration of the read.
    unsafe { *p }
}
";
        assert!(lint_source("fixture.rs", good, false, false, false).is_empty());
    }

    #[test]
    fn r8_safety_comment_chain_stops_at_blank_lines() {
        let src = r"
// SAFETY: this comment is separated from the site by a blank line and
// must NOT count.

pub unsafe fn f() {}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R8"]);
    }

    #[test]
    fn r9_flags_direct_registry_calls_in_hot_fns() {
        let src = r#"
impl Controller {
    pub fn tick(&mut self, registry: &Registry) {
        registry.counter("mc_ticks_total").inc();
    }
}
"#;
        let vs = lint_source("crates/mc/src/controller.rs", src, false, false, true);
        assert_eq!(codes(&vs), vec!["R9"]);
        assert_eq!(vs[0].line, 4);
        assert!(vs[0].message.contains("tick"));
    }

    #[test]
    fn r9_only_applies_to_hot_sim_trees_and_hot_fns() {
        let src = r#"
pub fn tick(registry: &Registry) {
    registry.gauge("x").set(1.0);
}
pub fn publish(registry: &Registry) {
    registry.gauge("cold_path_is_fine").set(1.0);
}
"#;
        // Same source outside crates/dram / crates/mc: not scanned.
        assert!(lint_source("crates/cmp/src/system.rs", src, false, false, false).is_empty());
        // Inside a hot tree, only the hot fn trips; `publish` is cold.
        let vs = lint_source("crates/dram/src/dram.rs", src, false, false, true);
        assert_eq!(codes(&vs), vec!["R9"]);
        assert!(vs[0].message.contains("tick"));
    }

    #[test]
    fn r9_allow_marker_and_macro_use_are_clean() {
        let src = r#"
pub fn issue(&mut self) {
    obs_count!(self.obs, row_hits);
}
pub fn step(&mut self, registry: &Registry) {
    // lint: allow(R9): one-shot lazy init outside the steady-state loop
    registry.counter("init_total").inc();
}
"#;
        assert!(lint_source("crates/dram/src/dram.rs", src, false, false, true).is_empty());
    }

    #[test]
    fn unsafe_sites_are_counted_outside_tests_only() {
        let src = r#"
// SAFETY: fixture.
unsafe impl Send for X {}
pub fn f(p: *const u32) -> u32 {
    "unsafe in a string does not count";
    // SAFETY: fixture.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    fn g(p: *const u32) -> u32 {
        unsafe { *p }
    }
}
"#;
        assert_eq!(count_unsafe_sites(src), 2);
    }

    #[test]
    fn unsafe_in_macro_bodies_counts_once_at_definition() {
        // Pinned semantics: one site per occurrence in the macro_rules!
        // definition; expansions add nothing (the token only exists at the
        // definition). Two arms with unsafe + one plain fn = 3 sites, no
        // matter how many call sites exist.
        let src = r#"
macro_rules! read_raw {
    ($p:expr) => {
        // SAFETY: caller contract pins $p valid for reads.
        unsafe { *$p }
    };
    ($p:expr, $n:expr) => {
        // SAFETY: caller contract pins $p..$p+$n valid for reads.
        unsafe { core::slice::from_raw_parts($p, $n) }
    };
}

pub fn f(p: *const u32) -> u32 {
    let a = read_raw!(p);
    let b = read_raw!(p);
    // SAFETY: fixture.
    let c = unsafe { *p };
    a + b + c
}
"#;
        assert_eq!(count_unsafe_sites(src), 3);
        // And R8 holds each definition-site occurrence to the same
        // SAFETY-comment standard as ordinary code.
        assert!(lint_source("crates/core/src/m.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn inventory_cross_check_flags_all_mismatch_kinds() {
        let audit = "\
# Unsafe audit

- `crates/a/src/lib.rs` — 2 — cell access
- `crates/b/src/lib.rs` — 1 — stale entry
- `crates/c/src/lib.rs` — not-a-number — malformed
";
        let actual = vec![
            ("crates/a/src/lib.rs".to_string(), 3), // count mismatch
            ("crates/d/src/lib.rs".to_string(), 1), // unregistered
        ];
        let vs = check_unsafe_inventory(Some(audit), &actual);
        let mut kinds: Vec<String> = vs.iter().map(|v| v.message.clone()).collect();
        kinds.sort();
        assert_eq!(vs.len(), 4, "got: {vs:?}");
        assert!(vs.iter().all(|v| v.rule == Rule::R8));
        assert!(kinds.iter().any(|m| m.contains("malformed")));
        assert!(kinds.iter().any(|m| m.contains("stale")));
        assert!(kinds.iter().any(|m| m.contains("not registered")));
        assert!(kinds.iter().any(|m| m.contains("update the entry")));
    }

    #[test]
    fn inventory_matches_cleanly() {
        let audit = "- `crates/a/src/lib.rs` — 2 — guard-protected cell access\n";
        let actual = vec![("crates/a/src/lib.rs".to_string(), 2)];
        assert!(check_unsafe_inventory(Some(audit), &actual).is_empty());
        // No audit file + no unsafe code is also clean.
        assert!(check_unsafe_inventory(None, &[]).is_empty());
    }

    #[test]
    fn string_line_continuations_do_not_shift_comment_attribution() {
        // Regression (F2 bug class): a `\`-newline continuation inside a
        // string literal used to desync the scanner's line counter,
        // attributing every later comment to the wrong line — so allow
        // markers and SAFETY/hb justifications below the string silently
        // stopped matching. The lexer keeps the whole literal one spanned
        // token, so line attribution cannot drift.
        let src = "
pub fn f() -> String {
    format!(\"a long message that wraps \\
             onto a second line\")
}

pub fn g(x: Option<u32>) -> u32 {
    // lint: allow(R1): fixture reason
    x.unwrap()
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn allow_marker_covers_multi_line_comment_blocks() {
        let src = r"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(R1): the marker line wraps onto a second comment
    // line, and the site sits right under the block.
    x.unwrap()
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn lifetimes_do_not_derail_the_scanner() {
        let src = "
pub fn f<'a>(x: &'a Option<u32>) -> u32 {
    x.unwrap()
}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R1"]);
        assert_eq!(vs[0].line, 3);
    }

    // ---- F2 regression pins: the false-positive classes the regex-era
    // scanner mis-handled must stay clean under the token engine. ----

    #[test]
    fn raw_strings_with_rule_triggers_lint_clean() {
        let src = r###"
pub fn help() -> &'static str {
    r#"try .unwrap() or panic!("x"); compare == 0.5; take Ordering::Relaxed"#
}
pub fn fenced() -> &'static str {
    r##"even "# inside"# stays a string: unsafe { static mut X }"##
}
"###;
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert!(vs.is_empty(), "raw-string leak: {vs:?}");
    }

    #[test]
    fn nested_block_comments_around_unsafe_lint_clean() {
        let src = r"
/* outer /* unsafe { *p } still inside the nested comment */ and
   the outer comment continues: static mut Y, Ordering::AcqRel */
pub fn f() {}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert!(vs.is_empty(), "nested-comment leak: {vs:?}");
    }

    #[test]
    fn backslash_continuation_strings_stay_one_token() {
        // Rule triggers on the continued line are string content, and the
        // lines after the literal still resolve attachments correctly.
        let src = "
pub fn f(x: Option<u32>) -> (String, u32) {
    let s = \"first line \\
             .unwrap() == 0.5 panic! unsafe\".to_string();
    // lint: allow(R1): pinned — attribution after the continuation
    (s, x.unwrap())
}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert!(vs.is_empty(), "continuation desync: {vs:?}");
    }

    #[test]
    fn allow_above_multi_line_attribute_attaches_to_the_item() {
        // Span-based attachment: the marker sits above a multi-line
        // attribute; line-adjacency matching could never reach the fn.
        let src = r#"
// lint: allow(R3): fixture — shares are certified by the caller
#[allow(
    clippy::needless_pass_by_value,
)]
// the wrapped signature mirrors the paper's Eq. 7 terms
pub fn shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#;
        assert!(lint_source("core.rs", src, true, false, false).is_empty());
    }

    #[test]
    fn r10_and_r11_run_through_lint_source() {
        let src = r#"
pub fn exponent(s: PartitionScheme) -> Option<f64> {
    match s {
        PartitionScheme::Equal => Some(0.0),
        _ => None,
    }
}
pub fn overdue(now_cycles: u64, deadline_ns: u64) -> bool {
    now_cycles > deadline_ns
}
"#;
        // R10 is tied to the share-producer scope; R11 runs everywhere.
        let vs = lint_source("crates/core/src/schemes.rs", src, true, false, false);
        assert_eq!(codes(&vs), vec!["R10", "R11"]);
        let vs = lint_source("crates/cmp/src/system.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R11"]);
    }

    #[test]
    fn obs_trace_wiring_detection() {
        assert!(obs_trace_wired(
            "[dependencies]\nbwpart-obs = { workspace = true, features = [\"trace\"] }\n"
        ));
        assert!(obs_trace_wired(
            "[dependencies]\nbwpart-obs = { workspace = true }\n\n[features]\ntrace = [\"bwpart-obs/trace\"]\n"
        ));
        assert!(!obs_trace_wired(
            "[dependencies]\nbwpart-obs = { workspace = true }\n"
        ));
        // A `trace` feature that does not forward to bwpart-obs is not wiring.
        assert!(!obs_trace_wired("[features]\ntrace = []\n"));
    }

    #[test]
    fn violations_carry_spans_and_snippets() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[0].col, 7);
        assert_eq!(vs[0].end_line, 2);
        assert_eq!(vs[0].end_col, 13);
        assert_eq!(vs[0].snippet, "x.unwrap()");
        let shown = vs[0].to_string();
        assert!(shown.starts_with("fixture.rs:2:7: [R1]"), "{shown}");
    }

    #[test]
    fn json_report_is_schema_stable() {
        let vs = vec![
            Violation {
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                col: 7,
                end_line: 3,
                end_col: 13,
                rule: Rule::R1,
                message: "a \"quoted\" message".into(),
                snippet: "x.unwrap()".into(),
                suppressed: false,
                justification: None,
            },
            Violation {
                file: "crates/b/src/lib.rs".into(),
                line: 9,
                col: 1,
                end_line: 9,
                end_col: 2,
                rule: Rule::R13,
                message: "m".into(),
                snippet: "s".into(),
                suppressed: true,
                justification: Some("// lint: allow(R13): fixture".into()),
            },
        ];
        let json = render_json(&vs);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"tool\": \"bwpart-audit\""));
        assert!(json.contains("\"rule\": \"R1\""));
        assert!(json.contains("\"path\": \"crates/a/src/lib.rs\""));
        assert!(json.contains("\"line\": 3, \"col\": 7"));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"suppressed\": true"));
        assert!(json.contains("\"justification\": \"// lint: allow(R13): fixture\""));
        assert!(json.contains("\"counts\": {\"total\": 2, \"active\": 1, \"suppressed\": 1}"));
        // Every rule appears in the catalogue section.
        for rule in Rule::ALL {
            assert!(json.contains(&format!("\"code\": \"{}\"", rule.code())));
        }
        // The empty report still carries the full schema.
        let empty = render_json(&[]);
        assert!(empty.contains("\"counts\": {\"total\": 0, \"active\": 0, \"suppressed\": 0}"));
    }

    #[test]
    fn every_rule_has_an_explanation_and_parses_back() {
        for rule in Rule::ALL {
            assert!(!rule.explain().is_empty());
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
        }
        assert_eq!(Rule::from_code("R99"), None);
    }
}
