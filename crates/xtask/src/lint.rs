//! bwpart-audit: the model-invariant lint pass.
//!
//! A dependency-free line/token scanner over `crates/*/src` that enforces
//! the repository's model-safety rules. It deliberately avoids rustc
//! internals: the scanner strips comments and string literals, skips
//! `#[cfg(test)]` modules, and then pattern-matches the remaining code. The
//! rules are type-blind heuristics tuned to this codebase; anything flagged
//! can be suppressed with an explicit, reasoned annotation on the same line
//! or the line above:
//!
//! ```text
//! // lint: allow(R1): reason the reviewer should read
//! ```
//!
//! # Rules
//!
//! * **R1** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` in non-test library code. Model code must
//!   surface bad inputs as `ModelError`, not aborts.
//! * **R2** — no `==` / `!=` against floating-point literals and no bare
//!   `.partial_cmp(...)` calls. Ordering goes through `f64::total_cmp`;
//!   tolerance comparisons go through `bwpart_core::contracts`.
//! * **R3** — in the share-producing crates (`bwpart-core` and the
//!   `bwpartd` epoch engine), every `pub fn` returning a share/allocation
//!   vector (`Vec<f64>` anywhere in the return type) must certify its output
//!   via `validate_shares` or a contract macro (`ensures_simplex!`,
//!   `ensures_capped!`, `invariant!`).
//! * **R4** — no `#[allow(clippy::...)]` without a justification comment
//!   (a plain `//` comment on the same line or the line above).
//! * **R5** — in `bwpart-experiments`, no hand-rolled `.step()` calls:
//!   experiment code must advance the simulator through `CmpSystem::run`
//!   so event-driven fast-forward applies to every figure/table
//!   reproduction uniformly.
//! * **R6** — every `Ordering::Relaxed` / `Ordering::AcqRel` use needs a
//!   justification comment naming the happens-before edge it relies on
//!   (or why none is needed): a comment containing `hb:` or
//!   `happens-before` on the same line or the contiguous comment block
//!   above. SeqCst/Acquire/Release need no annotation.
//! * **R7** — no `static mut` anywhere; and inside `vendor/rayon`, no
//!   direct `std::sync` / `std::thread` references outside `shim.rs`:
//!   the pool constructs every synchronization primitive through the
//!   loomlite-aliased shim module so model runs cover the real code.
//! * **R8** — every `unsafe` site (block, impl, fn, trait) needs a
//!   `// SAFETY:` comment on the same line or the contiguous comment
//!   block above, and every file containing unsafe code must be
//!   registered with a matching site count in `UNSAFE_AUDIT.md`.
//!
//! * **R9** — in the simulator's hot crates (`crates/dram`, `crates/mc`),
//!   the per-cycle/per-tick functions (`tick`, `step`, `issue`, ...) may
//!   touch metrics only through the zero-cost `obs_*!` macros over hooks
//!   pre-resolved at attach time: direct registry calls (`.counter(...)`,
//!   `.gauge(...)`, `.histogram(...)`) resolve names per event and are
//!   banned there. Cold paths (attach, publish) are exempt.
//!
//! Rules R1–R5 run over `crates/*/src`; R6 and R8 run over both
//! `crates/*/src` and `vendor/rayon/src`; R7's `static mut` ban runs
//! everywhere and its shim-only part runs over `vendor/rayon/src`; R9
//! runs over `crates/dram/src` and `crates/mc/src` only.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One enforced rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No panicking constructs in non-test library code.
    R1,
    /// No float-literal equality or bare `partial_cmp`.
    R2,
    /// Share/allocation producers must certify their outputs.
    R3,
    /// Clippy suppressions need a justification comment.
    R4,
    /// Experiments must drive the simulator via `CmpSystem::run`, not
    /// per-cycle `.step()` loops.
    R5,
    /// Relaxed/AcqRel atomic orderings need a happens-before
    /// justification comment.
    R6,
    /// No `static mut`; vendored pool code must reach `std::sync` /
    /// `std::thread` only through its shim module.
    R7,
    /// `unsafe` sites need `// SAFETY:` comments and an `UNSAFE_AUDIT.md`
    /// inventory entry.
    R8,
    /// Simulator hot loops (`crates/dram`, `crates/mc`) must not resolve
    /// metrics inline: no direct registry calls inside per-cycle/per-tick
    /// functions — pre-resolve handles at attach time and touch them
    /// through the `obs_*!` macros.
    R9,
}

impl Rule {
    /// Short code used in reports and `lint: allow(...)` annotations.
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
        }
    }

    /// One-line description for `cargo xtask lint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::R1 => "no unwrap()/expect()/panic!/unreachable! in non-test library code",
            Rule::R2 => "no ==/!= against float literals, no bare partial_cmp (use total_cmp)",
            Rule::R3 => {
                "pub fns returning share/allocation Vec<f64> in bwpart-core or the \
                         bwpartd engine must route through validate_shares or a contract macro"
            }
            Rule::R4 => "#[allow(clippy::...)] requires a justification comment",
            Rule::R5 => {
                "bwpart-experiments must drive the simulator via CmpSystem::run, \
                         not per-cycle .step() loops (fast-forward must apply everywhere)"
            }
            Rule::R6 => {
                "Ordering::Relaxed / Ordering::AcqRel requires a justification \
                         comment naming the happens-before edge (`hb:` or `happens-before`)"
            }
            Rule::R7 => {
                "no static mut; vendor/rayon must construct sync primitives only \
                         through its loomlite-aliased shim module (no std::sync/std::thread)"
            }
            Rule::R8 => {
                "unsafe sites need a // SAFETY: comment and a matching entry in \
                         the UNSAFE_AUDIT.md inventory"
            }
            Rule::R9 => {
                "simulator hot loops (crates/dram, crates/mc per-cycle/per-tick \
                         functions) must use the obs_*! macros over pre-resolved hooks, \
                         never direct registry .counter()/.gauge()/.histogram() calls"
            }
        }
    }

    /// All rules, report order.
    pub const ALL: [Rule; 9] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
    ];
}

/// One finding: a rule violated at a specific line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// Source text split into scannable code and per-line comment text.
struct Prepared {
    /// Lines of code with comment and string/char-literal contents blanked
    /// to spaces (byte offsets preserved).
    code_lines: Vec<String>,
    /// The full blanked code as one string (for multi-line constructs).
    code: String,
    /// Concatenated comment text per 0-based line, including the `//`.
    comments: Vec<String>,
    /// `true` for each 0-based line inside a `#[cfg(test)]` item.
    test_line: Vec<bool>,
}

/// Blank comments, strings and char literals out of `src`, collecting the
/// comment text per line. Byte length and newline positions are preserved so
/// offsets map 1:1 onto the original source.
fn prepare(src: &str) -> Prepared {
    let bytes = src.as_bytes();
    let len = bytes.len();
    let mut code = bytes.to_vec();
    let n_lines = src.split('\n').count();
    let mut comments = vec![String::new(); n_lines];
    let mut line = 0usize;
    let mut i = 0usize;

    // Record a comment span [start, end) into `comments`, blanking it in
    // `code` and advancing the line counter across embedded newlines.
    let record_comment = |code: &mut [u8],
                          comments: &mut [String],
                          line: &mut usize,
                          src: &str,
                          start: usize,
                          end: usize| {
        let mut seg_start = start;
        let seg_bytes = src.as_bytes();
        for j in start..end {
            if seg_bytes[j] == b'\n' {
                if let Some(seg) = src.get(seg_start..j) {
                    comments[*line].push_str(seg);
                }
                *line += 1;
                seg_start = j + 1;
            } else {
                code[j] = b' ';
            }
        }
        if let Some(seg) = src.get(seg_start..end) {
            comments[*line].push_str(seg);
        }
    };

    while i < len {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                let start = i;
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
                record_comment(&mut code, &mut comments, &mut line, src, start, i);
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < len && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                record_comment(&mut code, &mut comments, &mut line, src, start, i);
            }
            b'"' => {
                // Plain string literal: blank the contents and delimiters.
                code[i] = b' ';
                i += 1;
                while i < len {
                    match bytes[i] {
                        b'\\' => {
                            code[i] = b' ';
                            if i + 1 < len {
                                if bytes[i + 1] == b'\n' {
                                    // Line-continuation escape: the newline
                                    // must still advance the line counter or
                                    // every later comment is attributed to
                                    // the wrong line.
                                    line += 1;
                                } else {
                                    code[i + 1] = b' ';
                                }
                            }
                            i += 2;
                        }
                        b'"' => {
                            code[i] = b' ';
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            code[i] = b' ';
                            i += 1;
                        }
                    }
                }
            }
            b'r' | b'b' => {
                // Possible raw-string prefix (r", r#", br#"...). Only treat
                // as one when the full prefix pattern matches; otherwise the
                // byte is ordinary code (identifier, lifetime, ...).
                let mut j = i;
                if bytes[j] == b'b' && j + 1 < len && bytes[j + 1] == b'r' {
                    j += 1;
                }
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < len && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                let prev_ident =
                    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                if !prev_ident && bytes[j] == b'r' && k < len && bytes[k] == b'"' {
                    // Raw string: runs until `"` followed by `hashes` hashes.
                    for c in code.iter_mut().take(k + 1).skip(i) {
                        *c = b' ';
                    }
                    i = k + 1;
                    loop {
                        if i >= len {
                            break;
                        }
                        if bytes[i] == b'\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if bytes[i] == b'"' {
                            let mut h = 0usize;
                            while i + 1 + h < len && h < hashes && bytes[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                for c in code.iter_mut().take(i + 1 + h).skip(i) {
                                    *c = b' ';
                                }
                                i += 1 + h;
                                break;
                            }
                        }
                        code[i] = b' ';
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\x'`, `'a'` are literals; a
                // quote not closed within two chars is a lifetime tick.
                if i + 1 < len && bytes[i + 1] == b'\\' {
                    code[i] = b' ';
                    i += 1;
                    while i < len && bytes[i] != b'\'' {
                        code[i] = b' ';
                        i += 1;
                    }
                    if i < len {
                        code[i] = b' ';
                        i += 1;
                    }
                } else if i + 2 < len && bytes[i + 2] == b'\'' {
                    code[i] = b' ';
                    code[i + 1] = b' ';
                    code[i + 2] = b' ';
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }

    let code = String::from_utf8_lossy(&code).into_owned();
    let code_lines: Vec<String> = code.split('\n').map(str::to_string).collect();
    let test_line = test_line_mask(&code, code_lines.len());
    Prepared {
        code_lines,
        code,
        comments,
        test_line,
    }
}

/// Mark every line belonging to a `#[cfg(test)]` item (attribute through the
/// item's closing brace or semicolon).
fn test_line_mask(code: &str, n_lines: usize) -> Vec<bool> {
    let bytes = code.as_bytes();
    let len = bytes.len();
    let mut mask = vec![false; n_lines];
    // line number of each byte offset
    let line_of = |pos: usize| code[..pos].matches('\n').count();

    let mut i = 0usize;
    while i < len {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        while j < len && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= len || bytes[j] != b'[' {
            i += 1;
            continue;
        }
        // bracket-match the attribute
        let mut depth = 0usize;
        let mut k = j;
        while k < len {
            match bytes[k] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= len {
            break;
        }
        let attr: String = code[j..=k].chars().filter(|c| !c.is_whitespace()).collect();
        if attr != "[cfg(test)]" {
            i = k + 1;
            continue;
        }
        // Scan forward to the end of the annotated item: the matching close
        // brace, or a semicolon that appears before any brace opens.
        let mut m = k + 1;
        let mut brace = 0usize;
        let mut end = len.saturating_sub(1);
        while m < len {
            match bytes[m] {
                b'{' => brace += 1,
                b'}' => {
                    brace -= 1;
                    if brace == 0 {
                        end = m;
                        break;
                    }
                }
                b';' if brace == 0 => {
                    end = m;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let first = line_of(attr_start);
        let last = line_of(end.min(len.saturating_sub(1)));
        let last = last.min(n_lines.saturating_sub(1));
        for flag in mask.iter_mut().take(last + 1).skip(first) {
            *flag = true;
        }
        i = end + 1;
    }
    mask
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte positions where `ident` occurs as a whole token in `line`.
fn ident_positions(line: &str, ident: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let lb = line.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(ident) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident_byte(lb[pos - 1]);
        let after = pos + ident.len();
        let after_ok = after >= lb.len() || !is_ident_byte(lb[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + ident.len().max(1);
    }
    out
}

fn prev_nonspace(line: &str, pos: usize) -> Option<u8> {
    line.as_bytes()[..pos]
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

fn next_nonspace(line: &str, pos: usize) -> Option<u8> {
    line.as_bytes()[pos..]
        .iter()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// Extract the token (identifier/number/field-path characters) ending
/// immediately before `pos`, and the one starting at `pos`.
fn token_before(line: &str, mut pos: usize) -> &str {
    let lb = line.as_bytes();
    while pos > 0 && lb[pos - 1].is_ascii_whitespace() {
        pos -= 1;
    }
    let end = pos;
    while pos > 0 && (is_ident_byte(lb[pos - 1]) || lb[pos - 1] == b'.') {
        pos -= 1;
    }
    &line[pos..end]
}

fn token_after(line: &str, mut pos: usize) -> &str {
    let lb = line.as_bytes();
    while pos < lb.len() && lb[pos].is_ascii_whitespace() {
        pos += 1;
    }
    let start = pos;
    let mut neg = false;
    if pos < lb.len() && lb[pos] == b'-' {
        neg = true;
        pos += 1;
    }
    while pos < lb.len() && (is_ident_byte(lb[pos]) || lb[pos] == b'.') {
        pos += 1;
    }
    if neg && pos == start + 1 {
        // a lone '-' is not a token
        return "";
    }
    &line[start..pos]
}

/// Type-blind float-literal detector: `1.0`, `1e-9`, `2f64`, `-0.5`, ...
fn is_float_literal(token: &str) -> bool {
    let t = token.strip_prefix('-').unwrap_or(token);
    let Some(first) = t.chars().next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    t.contains('.')
        || t.ends_with("f32")
        || t.ends_with("f64")
        || t.chars().any(|c| c == 'e' || c == 'E')
}

/// Does line `idx` (or the line above) carry a `lint: allow(<rule>)` marker?
fn allowed(prepared: &Prepared, idx: usize, rule: Rule) -> bool {
    let marker_plain = format!("lint: allow({})", rule.code());
    let marker_tight = format!("lint:allow({})", rule.code());
    // Same-line, or anywhere in the contiguous comment block above (so a
    // marker whose explanation wraps onto a second comment line still
    // covers the site beneath it).
    comment_chain_matches(prepared, idx, &|c: &str| {
        c.contains(&marker_plain) || c.contains(&marker_tight)
    })
}

/// Does line `idx` (or the line above) carry a plain, non-doc comment
/// (accepted as an R4 justification)?
fn has_justification(prepared: &Prepared, idx: usize) -> bool {
    let check = |l: usize| {
        prepared.comments.get(l).is_some_and(|c| {
            let t = c.trim_start();
            t.starts_with("//")
                && !t.starts_with("///")
                && !t.starts_with("//!")
                && t.trim_start_matches('/').trim().len() > 2
        })
    };
    check(idx) || (idx > 0 && check(idx - 1))
}

/// Does any comment attached to line `idx` satisfy `pred`? Checks the
/// same line, then walks up through the contiguous block of comment-only
/// lines above (plus the first code line's trailing comment), so block
/// explanations like a three-line `// SAFETY:` paragraph count for the
/// site beneath them.
fn comment_chain_matches(prepared: &Prepared, idx: usize, pred: &dyn Fn(&str) -> bool) -> bool {
    if prepared.comments.get(idx).is_some_and(|c| pred(c)) {
        return true;
    }
    let mut l = idx;
    while l > 0 {
        l -= 1;
        let comment = prepared.comments.get(l).map(String::as_str).unwrap_or("");
        let code_blank = prepared
            .code_lines
            .get(l)
            .is_none_or(|c| c.trim().is_empty());
        if !comment.is_empty() && pred(comment) {
            return true;
        }
        // Stop once we leave the contiguous comment block: a code line
        // terminates the chain (after its trailing comment was checked),
        // and a fully blank line separates unrelated comments.
        if !code_blank || comment.is_empty() {
            return false;
        }
    }
    false
}

/// R6: does this line's comment chain justify a weak atomic ordering?
fn has_hb_justification(prepared: &Prepared, idx: usize) -> bool {
    comment_chain_matches(prepared, idx, &|c: &str| {
        c.contains("hb:") || c.contains("happens-before")
    })
}

/// R8: does this line's comment chain carry a `SAFETY:` explanation?
fn has_safety_comment(prepared: &Prepared, idx: usize) -> bool {
    comment_chain_matches(prepared, idx, &|c: &str| c.contains("SAFETY:"))
}

fn scan_r6(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    for variant in ["Relaxed", "AcqRel"] {
        for pos in ident_positions(line, variant) {
            // Only the path form (`Ordering::Relaxed`, `atomic::Ordering::
            // AcqRel`, ...) is an ordering use; a bare identifier is just
            // a name.
            if !line[..pos].trim_end().ends_with("::") {
                continue;
            }
            if has_hb_justification(prepared, idx) || allowed(prepared, idx, Rule::R6) {
                continue;
            }
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::R6,
                message: format!(
                    "Ordering::{variant} without a happens-before justification: \
                     add a comment naming the hb: edge (or why none is needed)"
                ),
            });
        }
    }
}

fn scan_r7_static_mut(
    file: &str,
    prepared: &Prepared,
    idx: usize,
    line: &str,
    out: &mut Vec<Violation>,
) {
    for pos in ident_positions(line, "static") {
        // `&'static mut T` is the lifetime, not the item keyword.
        if pos > 0 && line.as_bytes()[pos - 1] == b'\'' {
            continue;
        }
        if token_after(line, pos + "static".len()) == "mut" && !allowed(prepared, idx, Rule::R7) {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::R7,
                message: "static mut is banned: use an atomic, a lock, or OnceLock".into(),
            });
        }
    }
}

/// R7, shim part: vendored pool code must not name `std::sync` /
/// `std::thread` directly (only `shim.rs` may).
fn scan_r7_vendor_std(
    file: &str,
    prepared: &Prepared,
    idx: usize,
    line: &str,
    out: &mut Vec<Violation>,
) {
    for banned in ["std::sync", "std::thread"] {
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(banned) {
            let pos = from + rel;
            from = pos + banned.len();
            let lb = line.as_bytes();
            let before_ok = pos == 0 || !(is_ident_byte(lb[pos - 1]) || lb[pos - 1] == b':');
            let after = pos + banned.len();
            let after_ok = after >= lb.len() || !is_ident_byte(lb[after]);
            if before_ok && after_ok && !allowed(prepared, idx, Rule::R7) {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::R7,
                    message: format!(
                        "direct {banned} reference in vendored pool code: go through \
                         crate::shim so the loomlite model checker covers this path"
                    ),
                });
            }
        }
    }
}

fn scan_r8(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    for pos in ident_positions(line, "unsafe") {
        // `unsafe` in a type position (`unsafe fn` pointer types) still
        // deserves the comment; no exemptions beyond the allow marker.
        let _ = pos;
        if has_safety_comment(prepared, idx) || allowed(prepared, idx, Rule::R8) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line: idx + 1,
            rule: Rule::R8,
            message: "unsafe without a // SAFETY: comment on the same line or the \
                      comment block above"
                .into(),
        });
    }
}

/// Count the `unsafe` sites R8 audits in `src` (non-test code lines),
/// for cross-checking against the `UNSAFE_AUDIT.md` inventory.
pub fn count_unsafe_sites(src: &str) -> usize {
    let prepared = prepare(src);
    prepared
        .code_lines
        .iter()
        .enumerate()
        .filter(|(idx, _)| !prepared.test_line.get(*idx).copied().unwrap_or(false))
        .map(|(_, line)| ident_positions(line, "unsafe").len())
        .sum()
}

/// Scan one vendored-pool file (`vendor/rayon/src/**`). Only the
/// concurrency rules apply there: R6, R7 (both parts; `is_shim` exempts
/// the alias module itself from the std-reference ban), and R8.
pub fn lint_vendor_source(file: &str, src: &str, is_shim: bool) -> Vec<Violation> {
    let prepared = prepare(src);
    let mut out = Vec::new();
    for (idx, line) in prepared.code_lines.iter().enumerate() {
        if prepared.test_line.get(idx).copied().unwrap_or(false) {
            continue;
        }
        scan_r6(file, &prepared, idx, line, &mut out);
        scan_r7_static_mut(file, &prepared, idx, line, &mut out);
        if !is_shim {
            scan_r7_vendor_std(file, &prepared, idx, line, &mut out);
        }
        scan_r8(file, &prepared, idx, line, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Cross-check actual per-file `unsafe` site counts against the
/// `UNSAFE_AUDIT.md` inventory (`audit` is its text; `None` when the file
/// does not exist, meaning an empty inventory). Inventory lines look like:
///
/// ```text
/// - `crates/loomlite/src/sync.rs` — 4 — UnsafeCell access behind the guard
/// ```
pub fn check_unsafe_inventory(audit: Option<&str>, actual: &[(String, usize)]) -> Vec<Violation> {
    let audit_file = "UNSAFE_AUDIT.md";
    let mut out = Vec::new();
    let mut inventory: Vec<(String, usize, usize)> = Vec::new(); // (path, count, line)
    for (idx, line) in audit.unwrap_or("").lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("- `") else {
            continue;
        };
        let Some((path, tail)) = rest.split_once('`') else {
            continue;
        };
        let count = tail
            .split(['—', '-'])
            .map(str::trim)
            .find(|s| !s.is_empty())
            .and_then(|s| s.parse::<usize>().ok());
        match count {
            Some(n) => inventory.push((path.to_string(), n, idx + 1)),
            None => out.push(Violation {
                file: audit_file.to_string(),
                line: idx + 1,
                rule: Rule::R8,
                message: format!(
                    "malformed inventory line for `{path}`: expected \
                     `- \u{60}path\u{60} — <count> — <description>`"
                ),
            }),
        }
    }
    for (file, count) in actual {
        match inventory.iter().find(|(p, _, _)| p == file) {
            None => out.push(Violation {
                file: file.clone(),
                line: 1,
                rule: Rule::R8,
                message: format!(
                    "{count} unsafe site(s) not registered in {audit_file}: add \
                     `- \u{60}{file}\u{60} — {count} — <description>`"
                ),
            }),
            Some((_, registered, audit_line)) if registered != count => out.push(Violation {
                file: audit_file.to_string(),
                line: *audit_line,
                rule: Rule::R8,
                message: format!(
                    "inventory lists {registered} unsafe site(s) for `{file}` \
                     but the source has {count}: update the entry"
                ),
            }),
            Some(_) => {}
        }
    }
    for (path, _, audit_line) in &inventory {
        if !actual.iter().any(|(f, _)| f == path) {
            out.push(Violation {
                file: audit_file.to_string(),
                line: *audit_line,
                rule: Rule::R8,
                message: format!(
                    "stale inventory entry: `{path}` has no unsafe sites (or no \
                     longer exists); remove the line"
                ),
            });
        }
    }
    out
}

/// Scan one file's source. `is_share_producer` enables the R3 producer rule
/// (it applies to the crates that compute share vectors: `bwpart-core` and
/// the `bwpartd` epoch engine); `is_experiments` enables the R5 stepping
/// rule (it only applies to `bwpart-experiments`).
pub fn lint_source(
    file: &str,
    src: &str,
    is_share_producer: bool,
    is_experiments: bool,
    is_hot_sim: bool,
) -> Vec<Violation> {
    let prepared = prepare(src);
    let mut out = Vec::new();

    for (idx, line) in prepared.code_lines.iter().enumerate() {
        if prepared.test_line.get(idx).copied().unwrap_or(false) {
            continue;
        }
        scan_r1(file, &prepared, idx, line, &mut out);
        scan_r2(file, &prepared, idx, line, &mut out);
        scan_r4(file, &prepared, idx, line, &mut out);
        if is_experiments {
            scan_r5(file, &prepared, idx, line, &mut out);
        }
        scan_r6(file, &prepared, idx, line, &mut out);
        scan_r7_static_mut(file, &prepared, idx, line, &mut out);
        scan_r8(file, &prepared, idx, line, &mut out);
    }
    if is_share_producer {
        scan_r3(file, &prepared, &mut out);
    }
    if is_hot_sim {
        scan_r9(file, &prepared, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

fn scan_r1(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    for method in ["unwrap", "expect"] {
        for pos in ident_positions(line, method) {
            let called = next_nonspace(line, pos + method.len()) == Some(b'(');
            if prev_nonspace(line, pos) == Some(b'.') && called && !allowed(prepared, idx, Rule::R1)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::R1,
                    message: format!(
                        ".{method}() in library code: return ModelError (or annotate \
                         `// lint: allow(R1): <reason>`)"
                    ),
                });
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for pos in ident_positions(line, mac) {
            if next_nonspace(line, pos + mac.len()) == Some(b'!')
                && prev_nonspace(line, pos) != Some(b'.')
                && !allowed(prepared, idx, Rule::R1)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::R1,
                    message: format!(
                        "{mac}! in library code: return ModelError (or annotate \
                         `// lint: allow(R1): <reason>`)"
                    ),
                });
            }
        }
    }
}

fn scan_r2(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    for pos in ident_positions(line, "partial_cmp") {
        if prev_nonspace(line, pos) == Some(b'.') && !allowed(prepared, idx, Rule::R2) {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::R2,
                message: "bare .partial_cmp(): use f64::total_cmp for a total order".into(),
            });
        }
    }
    let lb = line.as_bytes();
    for op in ["==", "!="] {
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(op) {
            let pos = from + rel;
            from = pos + 2;
            // Exclude <=, >=, =>, === style neighbours.
            if pos > 0 && matches!(lb[pos - 1], b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if pos + 2 < lb.len() && lb[pos + 2] == b'=' {
                continue;
            }
            let lhs = token_before(line, pos);
            let rhs = token_after(line, pos + 2);
            if (is_float_literal(lhs) || is_float_literal(rhs)) && !allowed(prepared, idx, Rule::R2)
            {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: Rule::R2,
                    message: format!(
                        "float-literal comparison `{} {} {}`: use contracts::approx_eq \
                         or restructure",
                        lhs, op, rhs
                    ),
                });
            }
        }
    }
}

fn scan_r5(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    for pos in ident_positions(line, "step") {
        let called = next_nonspace(line, pos + "step".len()) == Some(b'(');
        if prev_nonspace(line, pos) == Some(b'.') && called && !allowed(prepared, idx, Rule::R5) {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: Rule::R5,
                message: ".step() in experiment code: advance the simulator via \
                          CmpSystem::run so event-driven fast-forward applies (or \
                          annotate `// lint: allow(R5): <reason>`)"
                    .into(),
            });
        }
    }
}

fn scan_r4(file: &str, prepared: &Prepared, idx: usize, line: &str, out: &mut Vec<Violation>) {
    let tight: String = line.chars().filter(|c| !c.is_whitespace()).collect();
    if tight.contains("[allow(clippy::") && !has_justification(prepared, idx) {
        out.push(Violation {
            file: file.to_string(),
            line: idx + 1,
            rule: Rule::R4,
            message: "#[allow(clippy::...)] needs a justification comment on the same \
                      or previous line"
                .into(),
        });
    }
}

/// The certification calls R3 accepts inside a producer's body.
const R3_CERTIFIERS: [&str; 4] = [
    "validate_shares",
    "ensures_simplex",
    "ensures_capped",
    "invariant!",
];

fn scan_r3(file: &str, prepared: &Prepared, out: &mut Vec<Violation>) {
    let code = &prepared.code;
    let bytes = code.as_bytes();
    let len = bytes.len();
    let line_of = |pos: usize| code[..pos].matches('\n').count();

    let mut search = 0usize;
    while let Some(rel) = code[search..].find("pub") {
        let pub_pos = search + rel;
        search = pub_pos + 3;
        let before_ok = pub_pos == 0 || !is_ident_byte(bytes[pub_pos - 1]);
        let after_ok = pub_pos + 3 >= len || !is_ident_byte(bytes[pub_pos + 3]);
        if !(before_ok && after_ok) {
            continue;
        }
        let pub_line = line_of(pub_pos);
        if prepared.test_line.get(pub_line).copied().unwrap_or(false) {
            continue;
        }
        // Parse: pub [(...)] [const|async|unsafe]* fn name
        let mut i = pub_pos + 3;
        let skip_ws = |i: &mut usize| {
            while *i < len && bytes[*i].is_ascii_whitespace() {
                *i += 1;
            }
        };
        skip_ws(&mut i);
        if i < len && bytes[i] == b'(' {
            let mut depth = 0usize;
            while i < len {
                match bytes[i] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let mut is_fn = false;
        for _ in 0..4 {
            skip_ws(&mut i);
            let start = i;
            while i < len && is_ident_byte(bytes[i]) {
                i += 1;
            }
            match &code[start..i] {
                "fn" => {
                    is_fn = true;
                    break;
                }
                "const" | "async" | "unsafe" => continue,
                _ => break,
            }
        }
        if !is_fn {
            continue;
        }
        skip_ws(&mut i);
        let name_start = i;
        while i < len && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let fn_name = code[name_start..i].to_string();
        // Signature: scan to the body `{` (or `;` for a bodiless decl),
        // tracking angle/paren/bracket depth and skipping `->` arrows.
        let mut arrow: Option<usize> = None;
        let mut angle = 0isize;
        let mut paren = 0isize;
        let mut body_start: Option<usize> = None;
        while i < len {
            match bytes[i] {
                b'-' if i + 1 < len && bytes[i + 1] == b'>' => {
                    if arrow.is_none() && angle == 0 && paren == 0 {
                        arrow = Some(i + 2);
                    }
                    i += 2;
                    continue;
                }
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if angle <= 0 && paren == 0 => {
                    body_start = Some(i);
                    break;
                }
                b';' if angle <= 0 && paren == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let (Some(arrow_pos), Some(body_open)) = (arrow, body_start) else {
            continue;
        };
        let mut ret: String = code[arrow_pos..body_open]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if let Some(w) = ret.find("where") {
            ret.truncate(w);
        }
        if !ret.contains("Vec<f64>") {
            continue;
        }
        // Brace-match the body and look for a certification call.
        let mut depth = 0usize;
        let mut j = body_open;
        let mut body_end = len;
        while j < len {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &code[body_open..body_end.min(len)];
        let certified = R3_CERTIFIERS.iter().any(|c| body.contains(c));
        if !certified && !allowed(prepared, pub_line, Rule::R3) {
            out.push(Violation {
                file: file.to_string(),
                line: pub_line + 1,
                rule: Rule::R3,
                message: format!(
                    "pub fn {fn_name} returns a Vec<f64> without certifying it via \
                     validate_shares / ensures_simplex! / ensures_capped! / invariant!"
                ),
            });
        }
        search = i.max(search);
    }
}

/// Per-cycle/per-tick functions R9 inspects in the simulator's hot crates.
const R9_HOT_FNS: [&str; 7] = [
    "tick",
    "step",
    "issue",
    "issuable_at",
    "probe",
    "enqueue",
    "pop_completion",
];

/// Registry-resolving calls banned inside those functions: each performs a
/// by-name lookup (hashing, locking) per event instead of touching a
/// pre-resolved handle.
const R9_DIRECT_CALLS: [&str; 3] = [".counter(", ".gauge(", ".histogram("];

fn scan_r9(file: &str, prepared: &Prepared, out: &mut Vec<Violation>) {
    let code = &prepared.code;
    let bytes = code.as_bytes();
    let len = bytes.len();
    let line_of = |pos: usize| code[..pos].matches('\n').count();

    let mut search = 0usize;
    while let Some(rel) = code[search..].find("fn") {
        let fn_pos = search + rel;
        search = fn_pos + 2;
        let before_ok = fn_pos == 0 || !is_ident_byte(bytes[fn_pos - 1]);
        let after_ok = fn_pos + 2 >= len || !is_ident_byte(bytes[fn_pos + 2]);
        if !(before_ok && after_ok) {
            continue;
        }
        let mut i = fn_pos + 2;
        while i < len && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < len && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if !R9_HOT_FNS.contains(&&code[name_start..i]) {
            continue;
        }
        let fn_name = code[name_start..i].to_string();
        if prepared
            .test_line
            .get(line_of(fn_pos))
            .copied()
            .unwrap_or(false)
        {
            continue;
        }
        // Scan to the body `{` (or `;` for a bodiless decl), tracking
        // angle/paren/bracket depth and skipping `->` arrows.
        let mut angle = 0isize;
        let mut paren = 0isize;
        let mut body_open: Option<usize> = None;
        while i < len {
            match bytes[i] {
                b'-' if i + 1 < len && bytes[i + 1] == b'>' => {
                    i += 2;
                    continue;
                }
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if angle <= 0 && paren == 0 => {
                    body_open = Some(i);
                    break;
                }
                b';' if angle <= 0 && paren == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(body_open) = body_open else {
            continue;
        };
        // Brace-match the body, then flag every direct registry call in it.
        let mut depth = 0usize;
        let mut j = body_open;
        let mut body_end = len;
        while j < len {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &code[body_open..body_end.min(len)];
        for call in R9_DIRECT_CALLS {
            let mut from = 0usize;
            while let Some(rel) = body[from..].find(call) {
                let pos = body_open + from + rel;
                from += rel + call.len();
                let line = line_of(pos);
                if allowed(prepared, line, Rule::R9) {
                    continue;
                }
                out.push(Violation {
                    file: file.to_string(),
                    line: line + 1,
                    rule: Rule::R9,
                    message: format!(
                        "direct registry `{call}...)` call inside hot fn `{fn_name}`: \
                         pre-resolve the handle at attach time and touch it through \
                         the obs_*! macros (or annotate `// lint: allow(R9): <reason>`)"
                    ),
                });
            }
        }
        search = i.max(search);
    }
}

/// Collect `.rs` files under `dir`, recursively.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `root`, plus (when present)
/// the vendored pool under `vendor/rayon/src` with the concurrency rules,
/// and cross-check the `UNSAFE_AUDIT.md` inventory. Returns violations in
/// deterministic (path, line) order.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    let mut unsafe_counts: Vec<(String, usize)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let unix_rel = rel.replace('\\', "/");
        let is_share_producer =
            unix_rel.starts_with("crates/core/") || unix_rel.starts_with("crates/bwpartd/");
        let is_experiments = unix_rel.starts_with("crates/experiments/");
        let is_hot_sim = unix_rel.starts_with("crates/dram/") || unix_rel.starts_with("crates/mc/");
        let src = fs::read_to_string(&path)?;
        out.extend(lint_source(
            &rel,
            &src,
            is_share_producer,
            is_experiments,
            is_hot_sim,
        ));
        let sites = count_unsafe_sites(&src);
        if sites > 0 {
            unsafe_counts.push((unix_rel, sites));
        }
    }

    // The vendored pool: concurrency rules only (its panic/float idioms
    // are deliberately rayon-shaped, so R1-R5 stay out).
    let vendor_src = root.join("vendor").join("rayon").join("src");
    if vendor_src.is_dir() {
        let mut vendor_files = Vec::new();
        collect_rs(&vendor_src, &mut vendor_files)?;
        vendor_files.sort();
        for path in vendor_files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            let unix_rel = rel.replace('\\', "/");
            let is_shim = unix_rel.ends_with("/shim.rs");
            let src = fs::read_to_string(&path)?;
            out.extend(lint_vendor_source(&unix_rel, &src, is_shim));
            let sites = count_unsafe_sites(&src);
            if sites > 0 {
                unsafe_counts.push((unix_rel, sites));
            }
        }
    }

    let audit = fs::read_to_string(root.join("UNSAFE_AUDIT.md")).ok();
    out.extend(check_unsafe_inventory(audit.as_deref(), &unsafe_counts));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.code()).collect()
    }

    #[test]
    fn r1_catches_seeded_unwrap_and_panic() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let y = x.unwrap();
    if y == 0 { panic!("zero"); }
    y
}
"#;
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R1", "R1"]);
        assert_eq!(vs[0].line, 3);
        assert_eq!(vs[1].line, 4);
    }

    #[test]
    fn r1_allows_annotated_sites_and_unwrap_or() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(R1): length checked two lines up
    let y = x.unwrap();
    let z = x.unwrap_or(7);
    y + z + x.unwrap_or_else(|| 9)
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r1_skips_cfg_test_modules_and_strings() {
        let src = r#"
pub fn describe() -> &'static str {
    "call .unwrap() and panic! at will"
}

#[cfg(test)]
mod tests {
    #[test]
    fn boom() {
        super::describe().to_string().parse::<u32>().unwrap();
        panic!("fine in tests");
    }
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r2_catches_partial_cmp_and_float_eq() {
        let src = r#"
pub fn f(a: f64, b: f64) -> bool {
    let _ = a.partial_cmp(&b);
    a == 0.5 || b != 1e-9
}
"#;
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R2", "R2", "R2"]);
    }

    #[test]
    fn r2_permits_total_cmp_int_eq_and_fn_definitions() {
        let src = r#"
pub fn partial_cmp_like(a: f64, b: f64, n: usize) -> bool {
    let _ = a.total_cmp(&b);
    n == 3 && a <= 0.5 && b >= 1.0
}
"#;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r3_requires_certification_in_core() {
        let bad = r#"
pub fn shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#;
        let vs = lint_source("core.rs", bad, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
        assert!(vs[0].message.contains("shares"));
        // The same file is fine outside bwpart-core...
        assert!(lint_source("other.rs", bad, false, false, false).is_empty());
        // ...and fine once the output is certified.
        let good = r#"
pub fn shares(n: usize) -> Vec<f64> {
    let beta = vec![1.0 / n as f64; n];
    crate::ensures_simplex!(beta);
    beta
}
"#;
        assert!(lint_source("core.rs", good, true, false, false).is_empty());
    }

    #[test]
    fn r3_covers_the_bwpartd_engine() {
        // The epoch engine is a share producer just like bwpart-core: an
        // uncertified Vec<f64> producer must trip R3 when the file is
        // linted with the share-producer flag set (as run_lint does for
        // everything under crates/bwpartd/).
        let bad = r#"
pub fn epoch_shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#;
        let vs = lint_source("crates/bwpartd/src/engine.rs", bad, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
        let good = r#"
pub fn epoch_shares(n: usize) -> Vec<f64> {
    let beta = vec![1.0 / n as f64; n];
    bwpart_core::ensures_simplex!(beta);
    beta
}
"#;
        assert!(lint_source("crates/bwpartd/src/engine.rs", good, true, false, false).is_empty());
    }

    #[test]
    fn r3_sees_through_result_wrappers() {
        let src = r#"
pub fn allocation(b: f64) -> Result<Vec<f64>, ModelError> {
    Ok(vec![b])
}
"#;
        let vs = lint_source("core.rs", src, true, false, false);
        assert_eq!(codes(&vs), vec!["R3"]);
    }

    #[test]
    fn r4_requires_justification() {
        let bad = "#[allow(clippy::too_many_arguments)]\npub fn f() {}\n";
        let vs = lint_source("fixture.rs", bad, false, false, false);
        assert_eq!(codes(&vs), vec!["R4"]);
        let good = "// the signature mirrors the paper's Eq. 7 terms\n\
                    #[allow(clippy::too_many_arguments)]\npub fn f() {}\n";
        assert!(lint_source("fixture.rs", good, false, false, false).is_empty());
    }

    #[test]
    fn r5_catches_step_loops_in_experiments_only() {
        let src = r#"
pub fn measure(sys: &mut CmpSystem) {
    for _ in 0..1_000 {
        sys.step();
    }
}
"#;
        let vs = lint_source("experiments.rs", src, false, true, false);
        assert_eq!(codes(&vs), vec!["R5"]);
        assert_eq!(vs[0].line, 4);
        // The same code is fine outside bwpart-experiments (e.g. the cmp
        // crate's own per-cycle reference implementation).
        assert!(lint_source("cmp.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r5_allows_annotated_sites_run_calls_and_tests() {
        let src = r#"
pub fn fine(sys: &mut CmpSystem) {
    sys.run(1_000);
    // lint: allow(R5): cross-checking one cycle against the reference
    sys.step();
    let stepper = 3;
    let _ = stepper;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_step() {
        let mut sys = super::mk();
        sys.step();
    }
}
"#;
        assert!(lint_source("experiments.rs", src, false, true, false).is_empty());
    }

    #[test]
    fn comments_and_raw_strings_do_not_leak_into_code() {
        let src = r##"
// a.unwrap() in a comment is fine
/* block with panic! and == 0.5 */
pub fn f() -> &'static str {
    r#"raw with .unwrap() and == 1.0"#
}
"##;
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r6_catches_unjustified_relaxed_and_acqrel() {
        let src = r"
pub fn f(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::Relaxed)
}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R6", "R6"]);
        assert_eq!(vs[0].line, 3);
        assert_eq!(vs[1].line, 4);
    }

    #[test]
    fn r6_accepts_hb_justifications_and_seqcst() {
        let src = r"
pub fn f(c: &AtomicUsize) -> usize {
    // hb: pairs with the Release store in publish(); the counter is the
    // only memory read through this edge.
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::SeqCst);
    // the happens-before edge is the scope join below
    c.load(Ordering::Relaxed)
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn r6_ignores_bare_identifiers_and_comments() {
        let src = r#"
// Ordering::Relaxed in a comment is fine
pub fn f(relaxed: bool) -> &'static str {
    let Relaxed = 3;
    let _ = (relaxed, Relaxed);
    "Ordering::Relaxed in a string is fine"
}
"#;
        // lint: allow(R7) not needed: fixture has no static mut.
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert!(vs.is_empty(), "unexpected: {vs:?}");
    }

    #[test]
    fn r7_catches_static_mut() {
        let src = r"
static mut COUNTER: usize = 0;
pub fn f() {}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R7"]);
        assert_eq!(vs[0].line, 2);
        // Immutable statics are fine.
        let ok = "static COUNTER: AtomicUsize = AtomicUsize::new(0);\n";
        assert!(lint_source("fixture.rs", ok, false, false, false).is_empty());
    }

    #[test]
    fn r7_vendor_bans_std_sync_outside_shim() {
        let src = r"
use std::sync::Mutex;
pub fn f() {
    let _ = std::thread::available_parallelism();
}
";
        let vs = lint_vendor_source("vendor/rayon/src/lib.rs", src, false);
        assert_eq!(codes(&vs), vec!["R7", "R7"]);
        // The shim module itself is the one sanctioned construction point.
        assert!(lint_vendor_source("vendor/rayon/src/shim.rs", src, true).is_empty());
        // Non-sync std paths stay allowed in vendor code.
        let ok = "pub fn g() { let _ = std::env::var(\"X\"); }\n";
        assert!(lint_vendor_source("vendor/rayon/src/lib.rs", ok, false).is_empty());
    }

    #[test]
    fn r8_requires_safety_comment() {
        let bad = r"
pub fn f(p: *const u32) -> u32 {
    unsafe { *p }
}
";
        let vs = lint_source("fixture.rs", bad, false, false, false);
        assert_eq!(codes(&vs), vec!["R8"]);
        assert_eq!(vs[0].line, 3);
        let good = r"
pub fn f(p: *const u32) -> u32 {
    // SAFETY: caller contract guarantees p is valid and aligned, and no
    // mutable alias exists for the duration of the read.
    unsafe { *p }
}
";
        assert!(lint_source("fixture.rs", good, false, false, false).is_empty());
    }

    #[test]
    fn r8_safety_comment_chain_stops_at_blank_lines() {
        let src = r"
// SAFETY: this comment is separated from the site by a blank line and
// must NOT count.

pub unsafe fn f() {}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R8"]);
    }

    #[test]
    fn r9_flags_direct_registry_calls_in_hot_fns() {
        let src = r#"
impl Controller {
    pub fn tick(&mut self, registry: &Registry) {
        registry.counter("mc_ticks_total").inc();
    }
}
"#;
        let vs = lint_source("crates/mc/src/controller.rs", src, false, false, true);
        assert_eq!(codes(&vs), vec!["R9"]);
        assert_eq!(vs[0].line, 4);
        assert!(vs[0].message.contains("tick"));
    }

    #[test]
    fn r9_only_applies_to_hot_sim_trees_and_hot_fns() {
        let src = r#"
pub fn tick(registry: &Registry) {
    registry.gauge("x").set(1.0);
}
pub fn publish(registry: &Registry) {
    registry.gauge("cold_path_is_fine").set(1.0);
}
"#;
        // Same source outside crates/dram / crates/mc: not scanned.
        assert!(lint_source("crates/cmp/src/system.rs", src, false, false, false).is_empty());
        // Inside a hot tree, only the hot fn trips; `publish` is cold.
        let vs = lint_source("crates/dram/src/dram.rs", src, false, false, true);
        assert_eq!(codes(&vs), vec!["R9"]);
        assert!(vs[0].message.contains("tick"));
    }

    #[test]
    fn r9_allow_marker_and_macro_use_are_clean() {
        let src = r#"
pub fn issue(&mut self) {
    obs_count!(self.obs, row_hits);
}
pub fn step(&mut self, registry: &Registry) {
    // lint: allow(R9): one-shot lazy init outside the steady-state loop
    registry.counter("init_total").inc();
}
"#;
        assert!(lint_source("crates/dram/src/dram.rs", src, false, false, true).is_empty());
    }

    #[test]
    fn unsafe_sites_are_counted_outside_tests_only() {
        let src = r#"
// SAFETY: fixture.
unsafe impl Send for X {}
pub fn f(p: *const u32) -> u32 {
    "unsafe in a string does not count";
    // SAFETY: fixture.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    fn g(p: *const u32) -> u32 {
        unsafe { *p }
    }
}
"#;
        assert_eq!(count_unsafe_sites(src), 2);
    }

    #[test]
    fn inventory_cross_check_flags_all_mismatch_kinds() {
        let audit = "\
# Unsafe audit

- `crates/a/src/lib.rs` — 2 — cell access
- `crates/b/src/lib.rs` — 1 — stale entry
- `crates/c/src/lib.rs` — not-a-number — malformed
";
        let actual = vec![
            ("crates/a/src/lib.rs".to_string(), 3), // count mismatch
            ("crates/d/src/lib.rs".to_string(), 1), // unregistered
        ];
        let vs = check_unsafe_inventory(Some(audit), &actual);
        let mut kinds: Vec<String> = vs.iter().map(|v| v.message.clone()).collect();
        kinds.sort();
        assert_eq!(vs.len(), 4, "got: {vs:?}");
        assert!(vs.iter().all(|v| v.rule == Rule::R8));
        assert!(kinds.iter().any(|m| m.contains("malformed")));
        assert!(kinds.iter().any(|m| m.contains("stale")));
        assert!(kinds.iter().any(|m| m.contains("not registered")));
        assert!(kinds.iter().any(|m| m.contains("update the entry")));
    }

    #[test]
    fn inventory_matches_cleanly() {
        let audit = "- `crates/a/src/lib.rs` — 2 — guard-protected cell access\n";
        let actual = vec![("crates/a/src/lib.rs".to_string(), 2)];
        assert!(check_unsafe_inventory(Some(audit), &actual).is_empty());
        // No audit file + no unsafe code is also clean.
        assert!(check_unsafe_inventory(None, &[]).is_empty());
    }

    #[test]
    fn string_line_continuations_do_not_shift_comment_attribution() {
        // Regression: a `\`-newline continuation inside a string literal
        // used to skip the newline without counting it, attributing every
        // later comment to the wrong line — so allow markers and SAFETY/
        // hb justifications below the string silently stopped matching.
        let src = "
pub fn f() -> String {
    format!(\"a long message that wraps \\
             onto a second line\")
}

pub fn g(x: Option<u32>) -> u32 {
    // lint: allow(R1): fixture reason
    x.unwrap()
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn allow_marker_covers_multi_line_comment_blocks() {
        let src = r"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(R1): the marker line wraps onto a second comment
    // line, and the site sits right under the block.
    x.unwrap()
}
";
        assert!(lint_source("fixture.rs", src, false, false, false).is_empty());
    }

    #[test]
    fn lifetimes_do_not_derail_the_scanner() {
        let src = "
pub fn f<'a>(x: &'a Option<u32>) -> u32 {
    x.unwrap()
}
";
        let vs = lint_source("fixture.rs", src, false, false, false);
        assert_eq!(codes(&vs), vec!["R1"]);
        assert_eq!(vs[0].line, 3);
    }
}
