//! A dependency-free Rust lexer for the bwpart-audit lint engine.
//!
//! Produces a flat stream of spanned [`Token`]s covering **every byte** of
//! the input: code tokens, comments (line/block/doc), string and char
//! literals (including raw strings with arbitrary `#` counts, byte and C
//! strings), lifetimes, numbers, multi-character operators, delimiters, a
//! shebang line, and `Unknown` for anything unclassifiable. Whitespace is
//! the only thing not tokenized; the invariant the property tests pin is
//! that the gaps between consecutive token spans are whitespace-only.
//!
//! Design constraints:
//!
//! * **Total**: lexing never panics and never loops, for arbitrary input
//!   (the fuzz/property suite feeds it arbitrary strings, and the CI miri
//!   job runs it — the lexer is clock- and IO-free by construction).
//! * **Spanned**: every token carries byte offsets plus 1-based line and
//!   column (byte column) so findings can point at `path:line:col`.
//! * **Honest about strings/comments**: rule scanning happens over the
//!   token kinds, so `unwrap()` inside a raw string or a nested block
//!   comment can never be mistaken for code again (the regex-era F2 bug
//!   class is eliminated by construction, not by patching).

/// The three bracket shapes the token-tree layer matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `#!...` on the very first line (not an inner attribute).
    Shebang,
    /// `// ...` — `doc` is true for `///` (outer) and `//!` (inner), but
    /// not for `////...` rulers.
    LineComment {
        /// Whether this is a doc comment (`///` / `//!`).
        doc: bool,
    },
    /// `/* ... */`, nesting-aware. `doc` is true for `/**` / `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` / `/*!`).
        doc: bool,
        /// False when the comment ran to EOF without closing.
        terminated: bool,
    },
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, `cr"…"`.
    Str {
        /// Raw literal (no escape processing, `#`-fenced).
        raw: bool,
        /// False when the literal ran to EOF without closing.
        terminated: bool,
    },
    /// `'a'`, `'\n'`, `'\u{1F600}'`, or `b'x'`.
    CharLit {
        /// False when the literal hit a newline/EOF before closing.
        terminated: bool,
    },
    /// An integer literal (any base, with or without suffix).
    Int,
    /// A float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
    /// An identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// A lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// An operator, possibly multi-character (`::`, `->`, `==`, `..=`, …).
    Op,
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
    /// A byte (or UTF-8 char) the lexer cannot classify. Never merged;
    /// guarantees totality.
    Unknown,
}

/// One spanned token. `start..end` are byte offsets into the source;
/// `line`/`col` are 1-based and refer to `start` (column counts bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for comment-like tokens (comments and the shebang), which the
    /// rule engine skips when walking code.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } | TokenKind::Shebang
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Internal cursor over the source bytes.
struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(offset).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(s))
    }

    /// Advance past one UTF-8 character (at least one byte).
    fn bump_char(&mut self) {
        let mut step = 1;
        // Skip continuation bytes so spans stay on char boundaries.
        while self
            .bytes
            .get(self.pos + step)
            .is_some_and(|&b| (0x80..0xC0).contains(&b))
        {
            step += 1;
        }
        self.pos += step;
    }

    /// Consume a line comment or shebang: everything up to (not including)
    /// the next newline.
    fn eat_to_eol(&mut self) {
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.pos += 1;
        }
    }

    /// Consume a nesting-aware block comment body starting *after* the
    /// opening `/*`. Returns `true` if the comment closed before EOF.
    fn eat_block_comment(&mut self) -> bool {
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return false,
            }
        }
        true
    }

    /// Consume an escaped (non-raw) string/char body starting after the
    /// opening quote. Returns `true` when the closing quote was found.
    /// Char literals additionally stop at an unescaped newline (a stray
    /// `'` should not swallow the rest of the file).
    fn eat_quoted(&mut self, quote: u8, stop_at_newline: bool) -> bool {
        loop {
            match self.peek(0) {
                None => return false,
                Some(b'\\') => {
                    // Skip the escape lead and whatever follows it (which
                    // may be a newline continuation — the span just grows).
                    self.pos += 1;
                    if self.peek(0).is_some() {
                        self.pos += 1;
                    }
                }
                Some(b) if b == quote => {
                    self.pos += 1;
                    return true;
                }
                Some(b'\n') if stop_at_newline => return false,
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Consume a raw-string body starting after the opening quote, with
    /// `hashes` trailing `#` required to close. Returns `terminated`.
    fn eat_raw_string(&mut self, hashes: usize) -> bool {
        loop {
            match self.peek(0) {
                None => return false,
                Some(b'"') => {
                    let mut h = 0usize;
                    while h < hashes && self.peek(1 + h) == Some(b'#') {
                        h += 1;
                    }
                    if h == hashes {
                        self.pos += 1 + hashes;
                        return true;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }
}

/// Multi-character operators, longest first (maximal munch).
const OPERATORS: [&str; 25] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "\u{0}", // sentinel, never matches
];

/// Try to lex a string-literal prefix (`r`, `b`, `br`, `c`, `cr`, with
/// optional `#` fencing) at the cursor. Returns `Some((kind, raw))` and
/// advances past the whole literal on success; leaves the cursor untouched
/// otherwise.
fn try_string(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let start = cur.pos;
    let mut i = start;
    // Optional one- or two-letter prefix.
    let mut raw = false;
    match (cur.at(i), cur.at(i + 1)) {
        (Some(b'r'), _) => {
            raw = true;
            i += 1;
        }
        (Some(b'b' | b'c'), Some(b'r')) => {
            raw = true;
            i += 2;
        }
        (Some(b'b' | b'c'), _) => i += 1,
        _ => {}
    }
    let mut hashes = 0usize;
    if raw {
        while cur.at(i + hashes) == Some(b'#') {
            hashes += 1;
        }
        i += hashes;
    }
    if cur.at(i) != Some(b'"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    cur.pos = i + 1;
    let terminated = if raw {
        cur.eat_raw_string(hashes)
    } else {
        cur.eat_quoted(b'"', false)
    };
    Some(TokenKind::Str { raw, terminated })
}

/// Lex a numeric literal starting at a digit. Advances the cursor and
/// returns `Int` or `Float`.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefixed {
        cur.pos += 2;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.pos += 1;
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.pos += 1;
    }
    // Fractional part: `1.5`, or trailing `1.` when not followed by an
    // identifier (`1.foo` is a field access) or `..` (a range).
    if cur.peek(0) == Some(b'.') {
        match cur.peek(1) {
            Some(b) if b.is_ascii_digit() => {
                float = true;
                cur.pos += 1;
                while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    cur.pos += 1;
                }
            }
            Some(b'.') => {}
            Some(b) if is_ident_start(b) => {}
            _ => {
                float = true;
                cur.pos += 1;
            }
        }
    }
    // Exponent: `1e9`, `1.5e-12`, `2E+3`.
    if matches!(cur.peek(0), Some(b'e' | b'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let direct = sign.is_some_and(|b| b.is_ascii_digit());
        let signed = matches!(sign, Some(b'+' | b'-')) && digit.is_some_and(|b| b.is_ascii_digit());
        if direct || signed {
            float = true;
            cur.pos += if signed { 2 } else { 1 };
            while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.pos += 1;
            }
        }
    }
    // Suffix (`u64`, `f32`, `usize`, …).
    let suffix_start = cur.pos;
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.pos += 1;
    }
    let suffix = cur.src.get(suffix_start..cur.pos).unwrap_or("");
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

/// Lex `src` into a complete token stream. Total: never panics, always
/// terminates, and covers every non-whitespace byte with exactly one token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    };
    let mut raw: Vec<(TokenKind, usize, usize)> = Vec::new();

    // Shebang: `#!` at offset 0 not starting an inner attribute `#![`.
    if cur.starts_with("#!") && !cur.starts_with("#![") {
        cur.eat_to_eol();
        raw.push((TokenKind::Shebang, 0, cur.pos));
    }

    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        if b.is_ascii_whitespace() {
            cur.pos += 1;
            continue;
        }
        let kind = match b {
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.eat_to_eol();
                let text = cur.src.get(start..cur.pos).unwrap_or("");
                let doc = (text.starts_with("///") && !text.starts_with("////"))
                    || text.starts_with("//!");
                TokenKind::LineComment { doc }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.pos += 2;
                let doc = matches!(cur.peek(0), Some(b'*' | b'!')) && cur.peek(1) != Some(b'/');
                let terminated = cur.eat_block_comment();
                TokenKind::BlockComment { doc, terminated }
            }
            b'"' | b'r' | b'b' | b'c' => {
                if b == b'b' && cur.peek(1) == Some(b'\'') {
                    // Byte char literal: b'x'.
                    cur.pos += 2;
                    let terminated = cur.eat_quoted(b'\'', true);
                    TokenKind::CharLit { terminated }
                } else if let Some(kind) = try_string(&mut cur) {
                    kind
                } else if b == b'r'
                    && cur.peek(1) == Some(b'#')
                    && is_ident_start(cur.peek(2).unwrap_or(b' '))
                {
                    // Raw identifier: r#match.
                    cur.pos += 2;
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.pos += 1;
                    }
                    TokenKind::Ident
                } else if b == b'"' {
                    // try_string always accepts a bare quote, so this arm
                    // is unreachable in practice; keep it total anyway.
                    cur.pos += 1;
                    let terminated = cur.eat_quoted(b'"', false);
                    TokenKind::Str {
                        raw: false,
                        terminated,
                    }
                } else {
                    // Plain identifier starting with r/b/c.
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.pos += 1;
                    }
                    TokenKind::Ident
                }
            }
            b'\'' => {
                // Lifetime vs char literal. `'a'` (ident-start then a
                // closing quote) is a char; `'a` without the quote is a
                // lifetime; `'\...'` is always a char.
                let one = cur.peek(1);
                if one == Some(b'\\') {
                    cur.pos += 1;
                    let terminated = cur.eat_quoted(b'\'', true);
                    TokenKind::CharLit { terminated }
                } else if one.is_some_and(is_ident_start) {
                    // Find the end of the ident run; a `'` right after a
                    // one-char run means a char literal like 'x'.
                    let mut j = cur.pos + 2;
                    while cur.at(j).is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    if cur.at(j) == Some(b'\'') && j == cur.pos + 2 {
                        cur.pos = j + 1;
                        TokenKind::CharLit { terminated: true }
                    } else {
                        cur.pos = j;
                        TokenKind::Lifetime
                    }
                } else {
                    cur.pos += 1;
                    let terminated = cur.eat_quoted(b'\'', true);
                    TokenKind::CharLit { terminated }
                }
            }
            b'(' => {
                cur.pos += 1;
                TokenKind::Open(Delim::Paren)
            }
            b')' => {
                cur.pos += 1;
                TokenKind::Close(Delim::Paren)
            }
            b'[' => {
                cur.pos += 1;
                TokenKind::Open(Delim::Bracket)
            }
            b']' => {
                cur.pos += 1;
                TokenKind::Close(Delim::Bracket)
            }
            b'{' => {
                cur.pos += 1;
                TokenKind::Open(Delim::Brace)
            }
            b'}' => {
                cur.pos += 1;
                TokenKind::Close(Delim::Brace)
            }
            b if b.is_ascii_digit() => lex_number(&mut cur),
            b if is_ident_start(b) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.pos += 1;
                }
                TokenKind::Ident
            }
            _ => {
                let mut matched = false;
                for op in OPERATORS {
                    if cur.starts_with(op) {
                        cur.pos += op.len();
                        matched = true;
                        break;
                    }
                }
                if matched {
                    TokenKind::Op
                } else if b.is_ascii_punctuation() {
                    cur.pos += 1;
                    TokenKind::Op
                } else {
                    cur.bump_char();
                    TokenKind::Unknown
                }
            }
        };
        // Totality backstop: a lexer bug that fails to advance must not
        // hang the tool — emit the byte as Unknown and move on.
        if cur.pos <= start {
            cur.pos = start;
            cur.bump_char();
            raw.push((TokenKind::Unknown, start, cur.pos));
        } else {
            raw.push((kind, start, cur.pos));
        }
    }

    // Second pass: line/col from a newline index.
    let mut line_starts = vec![0usize];
    for (i, byte) in src.bytes().enumerate() {
        if byte == b'\n' {
            line_starts.push(i + 1);
        }
    }
    raw.into_iter()
        .map(|(kind, start, end)| {
            let line_idx = match line_starts.binary_search(&start) {
                Ok(i) => i,
                Err(i) => i.saturating_sub(1),
            };
            let line_start = line_starts.get(line_idx).copied().unwrap_or(0);
            Token {
                kind,
                start,
                end,
                line: (line_idx as u32).saturating_add(1),
                col: ((start - line_start) as u32).saturating_add(1),
            }
        })
        .collect()
}

/// 1-based line number of a byte offset (for spans derived outside the
/// token list, e.g. rule anchors inside multi-line tokens).
pub fn line_of(src: &str, pos: usize) -> u32 {
    let upto = src.get(..pos.min(src.len())).unwrap_or("");
    (upto.bytes().filter(|&b| b == b'\n').count() as u32).saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_numbers_ops() {
        assert_eq!(
            kinds("let x = 1 + 2.5;"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Op,
                TokenKind::Int,
                TokenKind::Op,
                TokenKind::Float,
                TokenKind::Op,
            ]
        );
    }

    #[test]
    fn float_forms() {
        for f in [
            "1.0", "1.", "1e9", "1E-9", "2.5e+3", "3f64", "4f32", "1_000.5",
        ] {
            assert_eq!(kinds(f), vec![TokenKind::Float], "{f}");
        }
        for i in ["1", "0x1F", "0b1010", "0o777", "42u64", "1_000", "0xE1"] {
            assert_eq!(kinds(i), vec![TokenKind::Int], "{i}");
        }
    }

    #[test]
    fn range_is_not_a_float() {
        assert_eq!(
            kinds("0..10"),
            vec![TokenKind::Int, TokenKind::Op, TokenKind::Int]
        );
        assert_eq!(texts("1.foo"), vec!["1", ".", "foo"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"r#"contains .unwrap() and "quotes""# x"####;
        let toks = lex(src);
        assert_eq!(
            toks[0].kind,
            TokenKind::Str {
                raw: true,
                terminated: true
            }
        );
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn byte_and_c_strings() {
        for s in [
            r#"b"bytes""#,
            r##"br#"raw"#"##,
            r#"c"cstr""#,
            r##"cr#"raw"#"##,
        ] {
            let toks = lex(s);
            assert_eq!(toks.len(), 1, "{s}: {toks:?}");
            assert!(matches!(toks[0].kind, TokenKind::Str { .. }), "{s}");
        }
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        assert_eq!(kinds("r#match"), vec![TokenKind::Ident]);
        assert_eq!(texts("r#match"), vec!["r#match"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still outer */ code";
        let toks = lex(src);
        assert_eq!(
            toks[0].kind,
            TokenKind::BlockComment {
                doc: false,
                terminated: true
            }
        );
        assert_eq!(toks[1].text(src), "code");
    }

    #[test]
    fn doc_comment_classification() {
        assert!(matches!(
            kinds("/// outer doc")[0],
            TokenKind::LineComment { doc: true }
        ));
        assert!(matches!(
            kinds("//! inner doc")[0],
            TokenKind::LineComment { doc: true }
        ));
        assert!(matches!(
            kinds("//// ruler")[0],
            TokenKind::LineComment { doc: false }
        ));
        assert!(matches!(
            kinds("// plain")[0],
            TokenKind::LineComment { doc: false }
        ));
        assert!(matches!(
            kinds("/** block doc */")[0],
            TokenKind::BlockComment { doc: true, .. }
        ));
        assert!(matches!(
            kinds("/**/")[0],
            TokenKind::BlockComment { doc: false, .. }
        ));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit { terminated: true }]);
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'_"), vec![TokenKind::Lifetime]);
        assert_eq!(
            kinds(r"'\n'"),
            vec![TokenKind::CharLit { terminated: true }]
        );
        assert_eq!(
            kinds(r"'\u{1F600}'"),
            vec![TokenKind::CharLit { terminated: true }]
        );
        assert_eq!(kinds("b'x'"), vec![TokenKind::CharLit { terminated: true }]);
        // Generic lifetime position: `&'a str`.
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Op, TokenKind::Lifetime, TokenKind::Ident]
        );
    }

    #[test]
    fn backslash_continuation_stays_one_token() {
        let src = "\"wraps \\\n  over\" next";
        let toks = lex(src);
        assert!(matches!(
            toks[0].kind,
            TokenKind::Str {
                raw: false,
                terminated: true
            }
        ));
        assert_eq!(toks[1].text(src), "next");
        assert_eq!(
            toks[1].line, 2,
            "line counting must survive the continuation"
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(texts("a::b"), vec!["a", "::", "b"]);
        assert_eq!(texts("a->b"), vec!["a", "->", "b"]);
        assert_eq!(texts("a=>b"), vec!["a", "=>", "b"]);
        assert_eq!(
            texts("a==b!=c<=d>=e"),
            vec!["a", "==", "b", "!=", "c", "<=", "d", ">=", "e"]
        );
        assert_eq!(texts("0..=9"), vec!["0", "..=", "9"]);
    }

    #[test]
    fn shebang_only_at_start() {
        let toks = lex("#!/usr/bin/env run\nfn main() {}");
        assert_eq!(toks[0].kind, TokenKind::Shebang);
        assert_eq!(toks[1].line, 2);
        // Inner attribute is not a shebang.
        let toks = lex("#![allow(dead_code)]");
        assert_eq!(toks[0].kind, TokenKind::Op);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'", "r#\"x\"", "'\\"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn spans_cover_all_non_whitespace() {
        let src = "fn f() -> Vec<f64> { vec![1.0 / n as f64; n] } // tail";
        let toks = lex(src);
        let mut cursor = 0usize;
        for t in &toks {
            assert!(t.start >= cursor, "overlap at {t:?}");
            assert!(
                src[cursor..t.start].chars().all(char::is_whitespace),
                "gap {:?} not whitespace",
                &src[cursor..t.start]
            );
            cursor = t.end;
        }
        assert!(src[cursor..].chars().all(char::is_whitespace));
    }

    #[test]
    fn line_and_col_are_one_based() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
