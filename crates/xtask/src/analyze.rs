//! The interprocedural analysis pass: `cargo xtask analyze`.
//!
//! Where the per-file lint engine (`engine.rs`, rules R1–R14) checks what
//! a single file can prove, this pass indexes the whole workspace
//! ([`crate::symbols`]), builds an approximate call graph
//! ([`crate::callgraph`]) and checks four properties that only hold — or
//! fail — *across* function and crate boundaries:
//!
//! * **A1 — hot-path purity.** No allocation, lock acquisition, blocking
//!   call, or per-event registry resolution may be *reachable* from the
//!   R9/R14 hot simulator functions, to a bounded call depth. The finding
//!   reports the full call path from the hot fn to the danger site.
//! * **A2 — contract reachability.** A public share producer — returning
//!   a bare `Vec<f64>` or an owned `Allocation` / `MultiAllocation` /
//!   `CoordOutcome` wrapper (in `crates/core` / `crates/bwpartd`) — must
//!   certify its output either directly (rule R3's certifiers) or via a
//!   callee that does — the per-file R3 rule cannot see certification one
//!   call away. Reference accessors (`&Allocation`) are exempt.
//! * **A3 — interprocedural unit flow.** R11's `_cycles` / `_ns` /
//!   share-fraction naming discipline is checked across call boundaries:
//!   an argument named in one unit must not flow into a parameter named in
//!   another, and a call result must not be bound to a name in a different
//!   unit than the callee's name promises. `*_to_*` conversion fns are
//!   exempt on the argument side (converting is their job).
//! * **A4 — workspace lock-order.** Per-file `// lint: lock-order:`
//!   tables (R13) are merged into one workspace graph; lock acquisitions
//!   *reached through calls* while another lock is held become observed
//!   nesting edges. Observed edges must follow the declared order, and the
//!   combined declared+observed graph must be acyclic. Observed-edge
//!   analysis is opt-in per crate: only crates that declare at least one
//!   lock table participate (the loomlite model-checker's cooperative
//!   locks stay out by design).
//!
//! Suppression mirrors the lint engine: a `lint: allow(A<N>): reason`
//! comment attached to the finding's anchor suppresses it (A2 also honours
//! `allow(R3)` — the annotation already asserts the value is not a share
//! vector). Output formats: human text, JSON (`--json`, schema below) and
//! SARIF 2.1.0 (`--sarif`) for code-scanning upload.
//!
//! Warm runs are cached: the rendered reports are stored under
//! `target/analyze-cache.txt` keyed by a hash of every indexed file, so a
//! no-change re-run only re-hashes sources (`--no-cache` bypasses).
//!
//! ## Soundness boundaries (documented, deliberate)
//!
//! * The call graph is heuristic (see `callgraph.rs`): unresolvable calls
//!   (std methods, unknown receivers) produce no edges, so a danger hidden
//!   behind one is invisible to A1/A4. The danger *sites* themselves are
//!   still visible wherever they lexically occur.
//! * `vendor/` is outside the index: the vendored pool is certified by the
//!   loomlite model check, not by this pass. `bwpart_mc`'s fan-out call
//!   into `rayon::pool` therefore ends at the crate boundary.
//! * `.join(` is *not* a blocking danger: `Path::join` / `slice::join`
//!   false positives outweigh the thread-join catch, and thread joins on
//!   hot paths are already unreachable by construction here.

use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::engine::{unit_class, R14_HOT_FNS, R9_HOT_FNS};
use crate::lint::{line_col, snippet_at};
use crate::symbols::{DangerKind, FileFacts, Workspace};

/// The interprocedural rule catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ARule {
    /// Hot-path purity: no allocation/lock/blocking reachable from hot fns.
    A1HotPathPurity,
    /// Share-vector producers must certify directly or via a callee.
    A2ContractReachability,
    /// Unit-suffix discipline across call boundaries.
    A3UnitFlow,
    /// Workspace lock-order: observed nesting vs declared tables, acyclic.
    A4LockOrderGraph,
}

impl ARule {
    /// All rules, in report order.
    pub const ALL: [ARule; 4] = [
        ARule::A1HotPathPurity,
        ARule::A2ContractReachability,
        ARule::A3UnitFlow,
        ARule::A4LockOrderGraph,
    ];

    /// Stable code, used in reports and `lint: allow(A<N>)` markers.
    pub fn code(&self) -> &'static str {
        match self {
            ARule::A1HotPathPurity => "A1",
            ARule::A2ContractReachability => "A2",
            ARule::A3UnitFlow => "A3",
            ARule::A4LockOrderGraph => "A4",
        }
    }

    /// Parse a rule code.
    pub fn from_code(code: &str) -> Option<ARule> {
        ARule::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// One-line summary for `--rules`.
    pub fn describe(&self) -> &'static str {
        match self {
            ARule::A1HotPathPurity => {
                "no allocation, locking, or blocking reachable from hot simulator fns"
            }
            ARule::A2ContractReachability => {
                "share/allocation producers must certify directly or via a certified callee"
            }
            ARule::A3UnitFlow => {
                "unit-suffixed values must not cross call boundaries into another unit"
            }
            ARule::A4LockOrderGraph => {
                "cross-fn lock nesting must follow the declared workspace lock order"
            }
        }
    }

    /// Long-form rationale for `--explain A<N>`.
    pub fn explain(&self) -> &'static str {
        match self {
            ARule::A1HotPathPurity => {
                "A1 — hot-path purity, transitively.\n\
                 \n\
                 The per-file rules R9/R14 keep the named hot simulator functions\n\
                 (tick/step/issue/probe/… in crates/dram and crates/mc, and the SoA\n\
                 core's bank_earliest/grid_clear/…) free of direct clocking, I/O and\n\
                 allocation. A1 extends the same budget through the call graph: from\n\
                 each hot fn, every function reachable within 8 call hops is scanned\n\
                 for danger sites — fresh allocation (Vec::new, vec![], collect,\n\
                 with_capacity, …), lock acquisition, blocking calls (sleep, recv,\n\
                 wait) and per-event metrics-registry resolution (.counter()/.gauge()/\n\
                 .histogram(), which take the registry's internal lock; resolve\n\
                 handles once at construction instead). Container *growth* (.push,\n\
                 .extend) is only flagged when reached from the SoA core's R14 fns —\n\
                 amortized growth of caller-owned scratch is the honest idiom\n\
                 elsewhere (that is what enqueue is for).\n\
                 \n\
                 The finding is anchored at the danger site and reports the full call\n\
                 path from the hot fn, so the fix target is visible: hoist the\n\
                 allocation to construction time, pre-resolve the handle, or break\n\
                 the call edge. Suppress with `lint: allow(A1): <reason>` at the\n\
                 danger site only when the path is provably cold (e.g. a once-per-run\n\
                 panic path)."
            }
            ARule::A2ContractReachability => {
                "A2 — certification must be reachable, not just local.\n\
                 \n\
                 Rule R3 requires public fns returning shares — a bare Vec<f64>, or\n\
                 an owned Allocation / MultiAllocation / CoordOutcome wrapper — in\n\
                 crates/core and crates/bwpartd to call a certifier\n\
                 (validate_shares / ensures_simplex / ensures_capped /\n\
                 Allocation::certified / invariant!) before returning. R3 scans one\n\
                 function body; a producer that delegates certification to a helper\n\
                 is invisible to it. A2 redoes the check over the call graph: the\n\
                 producer passes if a certifier call is reachable within 3 call hops\n\
                 through resolved callees. Reference-returning accessors\n\
                 (`&Allocation`) are exempt: they hand out an already-certified\n\
                 value.\n\
                 \n\
                 A2 fails only when *no* certification is reachable: the shares\n\
                 leave the crate unchecked, and the paper's simplex invariant\n\
                 (shares sum to 1, each within [floor, cap]) is unenforced at the\n\
                 boundary. Fix by certifying in the producer or a callee; suppress\n\
                 with `lint: allow(A2)` (or R3's own allow) when the return type is\n\
                 incidentally Vec<f64> but not a share vector."
            }
            ARule::A3UnitFlow => {
                "A3 — unit discipline across call boundaries.\n\
                 \n\
                 Rule R11 checks unit-suffix mixing (`_cycles` vs `_ns` vs\n\
                 share-fraction names) inside one expression. A3 checks the two\n\
                 places R11 cannot see: (1) an argument whose name carries one unit\n\
                 flowing into a parameter whose name carries another —\n\
                 `probe(now_ns)` against `fn probe(now_cycles: u64)` is a latent\n\
                 time-base bug even though each file is locally consistent; and\n\
                 (2) a call result bound against the callee's promise —\n\
                 `let t_ns = ns_to_cycles(...)` binds a cycles value to an ns name.\n\
                 \n\
                 Conversion functions (`*_to_*`) are exempt on the argument side:\n\
                 feeding `_ns` into `ns_to_cycles` is the point. Only calls that\n\
                 resolve to exactly one workspace target are checked, so heuristic\n\
                 resolution cannot produce cross-target false positives. Suppress\n\
                 with `lint: allow(A3): <reason>` at the call site."
            }
            ARule::A4LockOrderGraph => {
                "A4 — the workspace lock graph, not the per-file one.\n\
                 \n\
                 Rule R13 enforces `// lint: lock-order:` tables against acquisitions\n\
                 it can see in one file. Deadlocks do not respect file boundaries:\n\
                 holding `engine` while calling into another crate that takes\n\
                 `table` is a nesting R13 never sees. A4 merges every declared table\n\
                 into one workspace order, then walks the call graph from each call\n\
                 site made *while a lock is held* (4 hops): any lock acquired in a\n\
                 reached function is an observed nesting edge outer→inner.\n\
                 \n\
                 Findings: an observed edge that inverts the declared order; an\n\
                 observed edge between locks no table relates (declare the pair —\n\
                 silent nesting is how the next deadlock ships); a re-entrant\n\
                 acquisition of the same lock across the call chain (std::sync::Mutex\n\
                 self-deadlocks); and any cycle in the combined declared+observed\n\
                 graph. Observed-edge analysis runs only for crates that declare at\n\
                 least one table — opting in is the declaration itself. Same-file\n\
                 same-fn nesting stays R13's job. Suppress with\n\
                 `lint: allow(A4): <reason>` at the inner acquisition."
            }
        }
    }
}

/// One analysis finding (mirrors the lint engine's `Violation` shape so
/// render layers and CI artifacts stay uniform).
#[derive(Debug, Clone)]
pub struct AFinding {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based anchor start line.
    pub line: usize,
    /// 1-based anchor start column.
    pub col: usize,
    /// 1-based anchor end line.
    pub end_line: usize,
    /// 1-based anchor end column.
    pub end_col: usize,
    /// The violated rule.
    pub rule: ARule,
    /// Human-readable explanation, including the call path where relevant.
    pub message: String,
    /// The source line the finding anchors on.
    pub snippet: String,
    /// Suppressed by an attached `lint: allow(...)` marker?
    pub suppressed: bool,
    /// The suppressing comment's text, when suppressed.
    pub justification: Option<String>,
}

/// Workspace statistics for the report header.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Files indexed.
    pub files: usize,
    /// Functions in the call graph.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
}

/// A full analysis run: every finding (suppressed ones included) plus
/// index statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<AFinding>,
    /// Index statistics for the report footer.
    pub stats: Stats,
}

impl Report {
    /// Unsuppressed findings — the ones that gate CI.
    pub fn active(&self) -> impl Iterator<Item = &AFinding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

/// Collect `crates/*/src/**/*.rs` under `root` as `(unix-relative path,
/// source)` pairs, sorted by path. `vendor/` is deliberately excluded —
/// see the module docs.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for entry in fs::read_dir(root.join("crates"))? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, fs::read_to_string(&path)?));
    }
    Ok(out)
}

/// Index, build the graph, and run every rule over pre-read sources.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let ws = Workspace {
        files: sources
            .iter()
            .map(|(p, s)| FileFacts::extract(p, s))
            .collect(),
    };
    let graph = CallGraph::build(&ws);
    let srcs: Vec<&str> = sources.iter().map(|(_, s)| s.as_str()).collect();

    let mut findings = Vec::new();
    findings.extend(rule_a1(&ws, &graph, &srcs));
    findings.extend(rule_a2(&ws, &graph, &srcs));
    findings.extend(rule_a3(&ws, &graph, &srcs));
    findings.extend(rule_a4(&ws, &graph, &srcs));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Report {
        findings,
        stats: Stats {
            files: ws.files.len(),
            fns: graph.nodes.len(),
            edges: graph.edges.iter().map(Vec::len).sum(),
        },
    }
}

/// Run the full pass against a workspace root.
pub fn analyze_tree(root: &Path) -> io::Result<Report> {
    Ok(analyze_sources(&collect_workspace(root)?))
}

/// Build one finding anchored at `span` in file `fi`, resolving
/// suppression against the file's `allow` markers. `extra_allow` admits a
/// second accepted code (A2 honours R3's marker).
fn emit(
    ws: &Workspace,
    srcs: &[&str],
    fi: usize,
    span: (usize, usize),
    rule: ARule,
    extra_allow: Option<&str>,
    message: String,
) -> AFinding {
    let file = &ws.files[fi];
    let src = srcs[fi];
    let (line, col) = line_col(src, span.0);
    let (end_line, end_col) = line_col(src, span.1);
    let marker = file
        .allowed_at(rule.code(), span.0)
        .or_else(|| extra_allow.and_then(|code| file.allowed_at(code, span.0)));
    AFinding {
        file: file.path.clone(),
        line,
        col,
        end_line,
        end_col,
        rule,
        message,
        snippet: snippet_at(src, span.0),
        suppressed: marker.is_some(),
        justification: marker.map(|m| m.text.clone()),
    }
}

/// Human-readable `name (file:line)` for a graph node.
fn fn_label(ws: &Workspace, srcs: &[&str], fi: usize, fj: usize) -> String {
    let f = &ws.files[fi].fns[fj];
    let (line, _) = line_col(srcs[fi], f.span.0);
    format!("{} ({}:{})", f.name, ws.files[fi].path, line)
}

// ---------------------------------------------------------------------------
// A1 — hot-path purity
// ---------------------------------------------------------------------------

/// Call-hop budget for A1 reachability.
const A1_DEPTH: usize = 8;

#[derive(Clone, Copy, PartialEq)]
enum HotOrigin {
    /// R9 hot fns (crates/dram, crates/mc): allocation, locking, blocking
    /// at any depth; registry resolution one hop in (R9 owns depth 0);
    /// container growth exempt.
    R9,
    /// R14 SoA-core fns: everything at depth ≥ 1 (R14 owns depth 0).
    R14,
}

fn rule_a1(ws: &Workspace, g: &CallGraph, srcs: &[&str]) -> Vec<AFinding> {
    let mut origins: Vec<(usize, HotOrigin)> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let r9_scope = file.path.starts_with("crates/dram/") || file.path.starts_with("crates/mc/");
        let r14_scope = file.path == "crates/dram/src/soa.rs";
        for (fj, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(node) = g.node(fi, fj) else { continue };
            // A soa.rs fn named in both lists gets the stricter R9 origin.
            if r9_scope && R9_HOT_FNS.contains(&f.name.as_str()) {
                origins.push((node, HotOrigin::R9));
            } else if r14_scope && R14_HOT_FNS.contains(&f.name.as_str()) {
                origins.push((node, HotOrigin::R14));
            }
        }
    }

    let mut seen: std::collections::BTreeSet<(usize, usize, usize)> = Default::default();
    let mut out = Vec::new();
    for (origin, kind) in origins {
        let reach = g.reach(origin, A1_DEPTH);
        let (ofi, ofj) = g.nodes[origin];
        for &n in &reach.order {
            let d = reach.depth[n].unwrap_or(0);
            let (fi, fj) = g.nodes[n];
            for danger in &ws.files[fi].fns[fj].dangers {
                let flagged = match kind {
                    HotOrigin::R9 => match danger.kind {
                        DangerKind::AllocFresh | DangerKind::Lock | DangerKind::Blocking => true,
                        DangerKind::Registry => d >= 1,
                        DangerKind::AllocGrow => false,
                    },
                    HotOrigin::R14 => d >= 1,
                };
                if !flagged || !seen.insert((fi, danger.span.0, danger.span.1)) {
                    continue;
                }
                let path: Vec<String> = reach
                    .path_to(n)
                    .into_iter()
                    .map(|p| {
                        let (pf, pj) = g.nodes[p];
                        ws.files[pf].fns[pj].name.clone()
                    })
                    .collect();
                let via = if path.len() > 1 {
                    format!(" via {}", path.join(" -> "))
                } else {
                    String::new()
                };
                let what = &danger.what;
                out.push(emit(
                    ws,
                    srcs,
                    fi,
                    danger.span,
                    ARule::A1HotPathPurity,
                    None,
                    format!(
                        "hot fn `{}` reaches {what} in `{}`{via}: hot paths must stay \
                         allocation-, lock- and blocking-free (pre-resolve handles and \
                         reuse caller-owned scratch instead)",
                        fn_label(ws, srcs, ofi, ofj),
                        ws.files[fi].fns[fj].name,
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A2 — contract reachability
// ---------------------------------------------------------------------------

/// Call-hop budget for reaching a certifier.
const A2_DEPTH: usize = 3;

fn rule_a2(ws: &Workspace, g: &CallGraph, srcs: &[&str]) -> Vec<AFinding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !(file.crate_name == "core" || file.crate_name == "bwpartd") {
            continue;
        }
        for (fj, f) in file.fns.iter().enumerate() {
            if !f.is_pub || f.in_test || !crate::engine::is_share_producer_ret(&f.ret_text) {
                continue;
            }
            let certified = f.certifies
                || g.node(fi, fj).is_some_and(|node| {
                    let reach = g.reach(node, A2_DEPTH);
                    reach.order.iter().any(|&n| {
                        let (rf, rj) = g.nodes[n];
                        ws.files[rf].fns[rj].certifies
                    })
                });
            if certified {
                continue;
            }
            out.push(emit(
                ws,
                srcs,
                fi,
                f.span,
                ARule::A2ContractReachability,
                Some("R3"),
                format!(
                    "pub fn `{}` returns shares (Vec<f64> / Allocation / \
                     MultiAllocation / CoordOutcome) but neither it nor any callee \
                     within {A2_DEPTH} calls certifies them (validate_shares / \
                     ensures_simplex / ensures_capped / Allocation::certified / \
                     invariant!)",
                    f.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A3 — interprocedural unit flow
// ---------------------------------------------------------------------------

fn rule_a3(ws: &Workspace, g: &CallGraph, srcs: &[&str]) -> Vec<AFinding> {
    let mut out = Vec::new();
    for (node, &(fi, fj)) in g.nodes.iter().enumerate() {
        let caller = &ws.files[fi].fns[fj];
        if caller.in_test {
            continue;
        }
        for (ci, call) in caller.calls.iter().enumerate() {
            // Only calls resolving to exactly one workspace target are
            // checked — ambiguity must not manufacture findings.
            let targets: Vec<usize> = g.edges[node]
                .iter()
                .filter(|e| e.call_idx == ci)
                .map(|e| e.to)
                .collect();
            let [target] = targets.as_slice() else {
                continue;
            };
            let (tf, tj) = g.nodes[*target];
            let callee = &ws.files[tf].fns[tj];

            // Argument → parameter flow. Conversion fns are exempt.
            if !callee.name.contains("_to_") {
                for (arg, param) in call.arg_idents.iter().zip(&callee.params) {
                    let Some(arg_name) = arg else { continue };
                    let (Some(have), Some(want)) = (unit_class(arg_name), unit_class(&param.name))
                    else {
                        continue;
                    };
                    if have != want {
                        out.push(emit(
                            ws,
                            srcs,
                            fi,
                            call.span,
                            ARule::A3UnitFlow,
                            None,
                            format!(
                                "argument `{arg_name}` ({have}) flows into parameter \
                                 `{}` ({want}) of `{}`",
                                param.name,
                                fn_label(ws, srcs, tf, tj),
                            ),
                        ));
                    }
                }
            }

            // Result → binding flow: the callee's name suffix is its
            // promise about the returned unit.
            if let (Some(bound), Some(promised)) =
                (call.bound_to.as_deref(), unit_class(&callee.name))
            {
                if let Some(got) = unit_class(bound) {
                    if got != promised {
                        out.push(emit(
                            ws,
                            srcs,
                            fi,
                            call.span,
                            ARule::A3UnitFlow,
                            None,
                            format!(
                                "result of `{}` ({promised}) bound to `{bound}` ({got})",
                                callee.name
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A4 — workspace lock-order graph
// ---------------------------------------------------------------------------

/// Call-hop budget when tracing calls made under a held lock.
const A4_DEPTH: usize = 4;

fn rule_a4(ws: &Workspace, g: &CallGraph, srcs: &[&str]) -> Vec<AFinding> {
    // Merge declared tables; remember one anchor per table for cycle
    // findings.
    let mut tables: Vec<(Vec<String>, usize, usize)> = Vec::new(); // (names, file, offset)
    let mut opt_in: std::collections::BTreeSet<&str> = Default::default();
    for (fi, file) in ws.files.iter().enumerate() {
        for t in &file.lock_tables {
            tables.push((t.names.clone(), fi, t.offset));
            opt_in.insert(file.crate_name.as_str());
        }
    }
    let declared_before = |a: &str, b: &str| -> bool {
        tables.iter().any(|(names, _, _)| {
            let pa = names.iter().position(|n| n == a);
            let pb = names.iter().position(|n| n == b);
            matches!((pa, pb), (Some(x), Some(y)) if x < y)
        })
    };
    let declared_related = |a: &str, b: &str| declared_before(a, b) || declared_before(b, a);

    // Observed edges: (outer, inner) → first provenance.
    struct Observed {
        inner_file: usize,
        inner_span: (usize, usize),
        path: String,
    }
    let mut observed: std::collections::BTreeMap<(String, String), Observed> = Default::default();
    for (node, &(fi, fj)) in g.nodes.iter().enumerate() {
        if !opt_in.contains(ws.files[fi].crate_name.as_str()) {
            continue;
        }
        let caller = &ws.files[fi].fns[fj];
        if caller.in_test {
            continue;
        }
        for (ci, call) in caller.calls.iter().enumerate() {
            if call.under_locks.is_empty() {
                continue;
            }
            for e in g.edges[node].iter().filter(|e| e.call_idx == ci) {
                let reach = g.reach(e.to, A4_DEPTH);
                for &n in &reach.order {
                    let (mf, mj) = g.nodes[n];
                    let inner_fn = &ws.files[mf].fns[mj];
                    for acq in &inner_fn.locks {
                        for outer in &call.under_locks {
                            let key = (outer.clone(), acq.name.clone());
                            observed.entry(key).or_insert_with(|| {
                                let mut chain = vec![caller.name.clone()];
                                chain.extend(reach.path_to(n).into_iter().map(|p| {
                                    let (pf, pj) = g.nodes[p];
                                    ws.files[pf].fns[pj].name.clone()
                                }));
                                Observed {
                                    inner_file: mf,
                                    inner_span: acq.span,
                                    path: chain.join(" -> "),
                                }
                            });
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((outer, inner), prov) in &observed {
        let anchor = prov.inner_span;
        if outer == inner {
            out.push(emit(
                ws,
                srcs,
                prov.inner_file,
                anchor,
                ARule::A4LockOrderGraph,
                None,
                format!(
                    "lock `{inner}` re-acquired while already held (via {}): \
                     std::sync::Mutex self-deadlocks on re-entry",
                    prov.path
                ),
            ));
        } else if declared_before(inner, outer) {
            out.push(emit(
                ws,
                srcs,
                prov.inner_file,
                anchor,
                ARule::A4LockOrderGraph,
                None,
                format!(
                    "lock `{inner}` acquired while `{outer}` is held (via {}), \
                     inverting the declared order `{inner} < {outer}`",
                    prov.path
                ),
            ));
        } else if !declared_related(outer, inner) {
            out.push(emit(
                ws,
                srcs,
                prov.inner_file,
                anchor,
                ARule::A4LockOrderGraph,
                None,
                format!(
                    "lock `{inner}` acquired while `{outer}` is held (via {}), but no \
                     lock-order table relates them; declare `{outer} < {inner}`",
                    prov.path
                ),
            ));
        }
    }

    // Cycle detection over declared (consecutive-pair) ∪ observed edges.
    let mut adj: std::collections::BTreeMap<&str, Vec<&str>> = Default::default();
    for (names, _, _) in &tables {
        for pair in names.windows(2) {
            adj.entry(pair[0].as_str())
                .or_default()
                .push(pair[1].as_str());
        }
    }
    for (outer, inner) in observed.keys() {
        if outer != inner {
            adj.entry(outer.as_str()).or_default().push(inner.as_str());
        }
    }
    if let Some(cycle) = find_cycle(&adj) {
        let (anchor_file, anchor_offset) = tables
            .first()
            .map(|(_, fi, off)| (*fi, *off))
            .unwrap_or((0, 0));
        out.push(emit(
            ws,
            srcs,
            anchor_file,
            (anchor_offset, anchor_offset + 1),
            ARule::A4LockOrderGraph,
            None,
            format!(
                "lock-order cycle in the combined declared+observed graph: {}",
                cycle.join(" -> ")
            ),
        ));
    }
    out
}

/// First cycle in a name graph (iterative colored DFS), as the node list
/// `a -> b -> ... -> a`. Deterministic: neighbours explored in insertion
/// order, roots in sorted order.
fn find_cycle(adj: &std::collections::BTreeMap<&str, Vec<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: std::collections::BTreeMap<&str, Color> = Default::default();
    for &n in adj.keys() {
        color.insert(n, Color::White);
        for &m in &adj[n] {
            color.entry(m).or_insert(Color::White);
        }
    }
    let nodes: Vec<&str> = color.keys().copied().collect();
    for root in nodes {
        if color[root] != Color::White {
            continue;
        }
        // Stack of (node, next-neighbour-index); `path` mirrors the gray
        // chain for cycle reconstruction.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        let mut path: Vec<&str> = vec![root];
        color.insert(root, Color::Gray);
        while let Some(&mut (n, ref mut idx)) = stack.last_mut() {
            let neighbours: &[&str] = adj.get(n).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < neighbours.len() {
                let m = neighbours[*idx];
                *idx += 1;
                match color[m] {
                    Color::Gray => {
                        let start = path.iter().position(|&p| p == m).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(m.to_string());
                        return Some(cycle);
                    }
                    Color::White => {
                        color.insert(m, Color::Gray);
                        stack.push((m, 0));
                        path.push(m);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(n, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

/// Human-readable text report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    let mut active = 0usize;
    let mut suppressed = 0usize;
    for f in &report.findings {
        if f.suppressed {
            suppressed += 1;
            continue;
        }
        active += 1;
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n    {}\n",
            f.file,
            f.line,
            f.col,
            f.rule.code(),
            f.message,
            f.snippet
        ));
    }
    let s = &report.stats;
    out.push_str(&format!(
        "analyze: {} files, {} fns, {} call edges; {} finding(s), {} suppressed\n",
        s.files, s.fns, s.edges, active, suppressed
    ));
    out
}

/// Machine-readable JSON report (schema_version 1, tool
/// `bwpart-analyze`) — same shape as `cargo xtask lint --json`.
pub fn render_json(report: &Report) -> String {
    use crate::lint::json_escape as esc;
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"tool\": \"bwpart-analyze\",\n  \"rules\": [\n");
    for (i, rule) in ARule::ALL.iter().enumerate() {
        let sep = if i + 1 < ARule::ALL.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"code\": \"{}\", \"summary\": \"{}\"}}{sep}\n",
            rule.code(),
            esc(rule.describe())
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let justification = match &f.justification {
            Some(j) => format!("\"{}\"", esc(j)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"end_line\": {}, \"end_col\": {}, \"snippet\": \"{}\", \"message\": \"{}\", \
             \"suppressed\": {}, \"justification\": {justification}}}{sep}\n",
            f.rule.code(),
            esc(&f.file),
            f.line,
            f.col,
            f.end_line,
            f.end_col,
            esc(&f.snippet),
            esc(&f.message),
            f.suppressed,
        ));
    }
    let active = report.active().count();
    let total = report.findings.len();
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"total\": {total}, \"active\": {active}, \
         \"suppressed\": {}}},\n  \"stats\": {{\"files\": {}, \"fns\": {}, \"edges\": {}}}\n}}\n",
        total - active,
        report.stats.files,
        report.stats.fns,
        report.stats.edges,
    ));
    out
}

/// SARIF 2.1.0 report for code-scanning upload. Suppressed findings are
/// carried as `suppressions: [{kind: "inSource"}]`, matching how SARIF
/// consumers expect in-source waivers to be represented.
pub fn render_sarif(report: &Report) -> String {
    use crate::lint::json_escape as esc;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"bwpart-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/bwpart\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in ARule::ALL.iter().enumerate() {
        let sep = if i + 1 < ARule::ALL.len() { "," } else { "" };
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}}}{sep}\n",
            rule.code(),
            esc(rule.describe()),
            esc(rule.explain()),
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let rule_index = ARule::ALL.iter().position(|r| *r == f.rule).unwrap_or(0);
        let level = if f.suppressed { "note" } else { "error" };
        let suppressions = if f.suppressed {
            ",\n          \"suppressions\": [{\"kind\": \"inSource\"}]"
        } else {
            ""
        };
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": {rule_index},\n          \
             \"level\": \"{level}\",\n          \"message\": {{\"text\": \"{}\"}},\n          \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}, \"endLine\": {}, \
             \"endColumn\": {}}}}}}}]{suppressions}\n        }}{sep}\n",
            f.rule.code(),
            esc(&f.message),
            esc(&f.file),
            f.line,
            f.col,
            f.end_line,
            f.end_col,
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Warm-run cache
// ---------------------------------------------------------------------------

/// Bump when rule semantics or report formats change — stale caches must
/// miss, not lie.
const ANALYZE_VERSION: &str = "analyze-v1";

/// FNV-1a 64-bit.
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cache key over every indexed file (paths and contents) plus the
/// analyzer version.
pub fn cache_key(sources: &[(String, String)]) -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, ANALYZE_VERSION.as_bytes());
    for (path, src) in sources {
        h = fnv1a(h, path.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, src.as_bytes());
        h = fnv1a(h, &[0xff]);
    }
    h
}

/// One cached run: all three rendered outputs plus the gate status.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRun {
    /// The source-hash key the run was computed for.
    pub key: u64,
    /// Did the run have unsuppressed findings?
    pub failed: bool,
    /// Rendered text report.
    pub text: String,
    /// Rendered JSON report.
    pub json: String,
    /// Rendered SARIF report.
    pub sarif: String,
}

impl CachedRun {
    /// Serialize (length-prefixed sections; content-agnostic).
    pub fn to_bytes(&self) -> String {
        format!(
            "analyze-cache-v1\nkey: {:016x}\nfailed: {}\ntext: {}\n{}json: {}\n{}sarif: {}\n{}",
            self.key,
            self.failed,
            self.text.len(),
            self.text,
            self.json.len(),
            self.json,
            self.sarif.len(),
            self.sarif,
        )
    }

    /// Parse what [`CachedRun::to_bytes`] wrote; `None` on any mismatch
    /// (a malformed cache is a miss, never an error).
    pub fn from_bytes(data: &str) -> Option<CachedRun> {
        let rest = data.strip_prefix("analyze-cache-v1\n")?;
        let rest = rest.strip_prefix("key: ")?;
        let (key_hex, rest) = rest.split_once('\n')?;
        let key = u64::from_str_radix(key_hex, 16).ok()?;
        let rest = rest.strip_prefix("failed: ")?;
        let (failed, rest) = rest.split_once('\n')?;
        let failed = failed.parse::<bool>().ok()?;
        let mut sections = Vec::new();
        let mut cur = rest;
        for label in ["text: ", "json: ", "sarif: "] {
            cur = cur.strip_prefix(label)?;
            let (len, body) = cur.split_once('\n')?;
            let len = len.parse::<usize>().ok()?;
            let section = body.get(..len)?;
            sections.push(section.to_string());
            cur = body.get(len..)?;
        }
        let sarif = sections.pop()?;
        let json = sections.pop()?;
        let text = sections.pop()?;
        Some(CachedRun {
            key,
            failed,
            text,
            json,
            sarif,
        })
    }
}

/// The cache file location under a workspace root.
pub fn cache_path(root: &Path) -> std::path::PathBuf {
    root.join("target").join("analyze-cache.txt")
}

/// Output format selector for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable report (the default).
    Text,
    /// `--json`: schema-v1 findings.
    Json,
    /// `--sarif`: SARIF 2.1.0 for code-scanning upload.
    Sarif,
}

/// Full CLI flow: collect, hash, consult the cache, analyze on miss,
/// store, and return `(selected rendered output, failed)`.
pub fn run(root: &Path, format: Format, no_cache: bool) -> io::Result<(String, bool)> {
    let sources = collect_workspace(root)?;
    let key = cache_key(&sources);
    if !no_cache {
        if let Ok(data) = fs::read_to_string(cache_path(root)) {
            if let Some(cached) = CachedRun::from_bytes(&data) {
                if cached.key == key {
                    let out = match format {
                        Format::Text => cached.text,
                        Format::Json => cached.json,
                        Format::Sarif => cached.sarif,
                    };
                    return Ok((out, cached.failed));
                }
            }
        }
    }
    let report = analyze_sources(&sources);
    let cached = CachedRun {
        key,
        failed: report.active().count() > 0,
        text: render_text(&report),
        json: render_json(&report),
        sarif: render_sarif(&report),
    };
    // Best-effort store: a read-only target dir must not fail the run.
    let path = cache_path(root);
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let _ = fs::write(&path, cached.to_bytes());
    let out = match format {
        Format::Text => cached.text.clone(),
        Format::Json => cached.json.clone(),
        Format::Sarif => cached.sarif.clone(),
    };
    Ok((out, cached.failed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(files: &[(&str, &str)]) -> Report {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&sources)
    }

    fn active_codes(r: &Report) -> Vec<&'static str> {
        r.active().map(|f| f.rule.code()).collect()
    }

    #[test]
    fn a1_flags_allocation_behind_a_helper() {
        let r = report_for(&[(
            "crates/mc/src/controller.rs",
            "
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) { gather(); }
}
fn gather() -> Vec<u64> { let mut v = Vec::new(); v.push(1); v }
",
        )]);
        let codes = active_codes(&r);
        assert!(codes.contains(&"A1"), "{:?}", r.findings);
        let f = r.active().find(|f| f.rule.code() == "A1").unwrap();
        assert!(f.message.contains("tick"), "{}", f.message);
        assert!(f.message.contains("via"), "{}", f.message);
    }

    #[test]
    fn a1_respects_allow_marker() {
        let r = report_for(&[(
            "crates/mc/src/controller.rs",
            "
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) { cold(); }
}
fn cold() {
    // lint: allow(A1): once-per-run cold path, measured off the hot loop
    let v: Vec<u64> = Vec::new();
    drop(v);
}
",
        )]);
        assert!(active_codes(&r).is_empty(), "{:?}", r.findings);
        assert!(r.findings.iter().any(|f| f.suppressed));
    }

    #[test]
    fn a1_ignores_growth_from_r9_but_not_r14() {
        let r9 = report_for(&[(
            "crates/mc/src/queue.rs",
            "
pub struct Q;
impl Q { pub fn enqueue(&mut self) { grow(); } }
fn grow() { BUF.with(|b| b.push(1)); }
",
        )]);
        assert!(active_codes(&r9).is_empty(), "{:?}", r9.findings);
        let r14 = report_for(&[(
            "crates/dram/src/soa.rs",
            "
pub struct Grid;
impl Grid { pub fn bank_earliest(&self) { grow(); } }
fn grow() { BUF.with(|b| b.push(1)); }
",
        )]);
        assert_eq!(active_codes(&r14), vec!["A1"], "{:?}", r14.findings);
    }

    #[test]
    fn a2_accepts_certification_via_callee() {
        let r = report_for(&[(
            "crates/core/src/solver.rs",
            "
pub fn solve(n: usize) -> Vec<f64> {
    let shares = inner(n);
    finish(&shares);
    shares
}
fn inner(n: usize) -> Vec<f64> { vec![0.0; n] }
fn finish(shares: &[f64]) { validate_shares(shares); }
",
        )]);
        assert!(!active_codes(&r).contains(&"A2"), "{:?}", r.findings);
    }

    #[test]
    fn a2_flags_uncertified_producer() {
        let r = report_for(&[(
            "crates/core/src/solver.rs",
            "pub fn raw_shares(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
        )]);
        assert_eq!(active_codes(&r), vec!["A2"], "{:?}", r.findings);
    }

    #[test]
    fn a2_covers_owned_allocation_wrappers() {
        // An owned CoordOutcome producer passes when certification is
        // reachable through a callee (the thin-delegator shape)...
        let delegator = report_for(&[(
            "crates/core/src/coord.rs",
            "
pub fn solve(n: usize) -> Result<CoordOutcome, ModelError> {
    solve_scaled(n)
}
fn solve_scaled(n: usize) -> Result<CoordOutcome, ModelError> {
    let beta = vec![0.0; n];
    ensures_simplex(&beta);
    build(beta)
}
",
        )]);
        assert!(
            !active_codes(&delegator).contains(&"A2"),
            "{:?}",
            delegator.findings
        );
        // ...an owned MultiAllocation producer with no reachable
        // certifier trips A2...
        let bare = report_for(&[(
            "crates/core/src/resource.rs",
            "pub fn raw_split(n: usize) -> MultiAllocation { build(n) }\n",
        )]);
        assert_eq!(active_codes(&bare), vec!["A2"], "{:?}", bare.findings);
        // ...and a reference accessor is exempt.
        let accessor = report_for(&[(
            "crates/core/src/resource.rs",
            "pub fn get(m: &MultiAllocation) -> Option<&Allocation> { m.first() }\n",
        )]);
        assert!(
            active_codes(&accessor).is_empty(),
            "{:?}",
            accessor.findings
        );
    }

    #[test]
    fn a3_flags_unit_mismatch_and_exempts_conversions() {
        let r = report_for(&[(
            "crates/dram/src/lib.rs",
            "
pub fn probe(now_cycles: u64) -> u64 { now_cycles }
pub fn ns_to_cycles(t_ns: u64) -> u64 { t_ns * 2 }
pub fn caller(now_ns: u64) {
    probe(now_ns);
    ns_to_cycles(now_ns);
    let t_cycles = ns_to_cycles(now_ns);
    let _ = t_cycles;
}
",
        )]);
        let a3: Vec<&AFinding> = r.active().filter(|f| f.rule.code() == "A3").collect();
        assert_eq!(a3.len(), 1, "{:?}", r.findings);
        assert!(a3[0].message.contains("now_ns"), "{}", a3[0].message);
    }

    #[test]
    fn a3_flags_misbound_result() {
        let r = report_for(&[(
            "crates/dram/src/lib.rs",
            "
pub fn ns_to_cycles(t_ns: u64) -> u64 { t_ns * 2 }
pub fn caller(now_ns: u64) {
    let t_ns = ns_to_cycles(now_ns);
    let _ = t_ns;
}
",
        )]);
        assert_eq!(active_codes(&r), vec!["A3"], "{:?}", r.findings);
    }

    #[test]
    fn a4_flags_undeclared_cross_crate_nesting() {
        let r = report_for(&[(
            "crates/bwpartd/src/server.rs",
            "
// lint: lock-order: engine < table
fn lock_engine(m: &Mutex<Engine>) -> MutexGuard<'_, Engine> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
pub fn handle(engine: &Mutex<Engine>) {
    lock_engine(engine).trace_event();
}
pub struct Engine;
impl Engine {
    pub fn trace_event(&self) { obs_push(); }
}
fn obs_push() {
    let g = ring.lock().unwrap();
    drop(g);
}
",
        )]);
        let a4: Vec<&AFinding> = r.active().filter(|f| f.rule.code() == "A4").collect();
        assert!(!a4.is_empty(), "{:?}", r.findings);
        assert!(
            a4[0].message.contains("`ring`") && a4[0].message.contains("`engine`"),
            "{}",
            a4[0].message
        );
    }

    #[test]
    fn a4_accepts_declared_nesting_and_detects_cycles() {
        let clean = report_for(&[(
            "crates/bwpartd/src/server.rs",
            "
// lint: lock-order: engine < table
fn lock_engine(m: &Mutex<Engine>) -> MutexGuard<'_, Engine> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
pub fn handle(engine: &Mutex<Engine>) {
    lock_engine(engine).snapshot();
}
pub struct Engine;
impl Engine {
    pub fn snapshot(&self) { let g = table.lock().unwrap(); drop(g); }
}
",
        )]);
        assert!(active_codes(&clean).is_empty(), "{:?}", clean.findings);

        let cyclic = report_for(&[
            (
                "crates/bwpartd/src/a.rs",
                "// lint: lock-order: engine < table\n",
            ),
            (
                "crates/bwpartd/src/b.rs",
                "// lint: lock-order: table < engine\n",
            ),
        ]);
        let a4 = active_codes(&cyclic);
        assert!(a4.contains(&"A4"), "{:?}", cyclic.findings);
        assert!(
            cyclic.active().any(|f| f.message.contains("cycle")),
            "{:?}",
            cyclic.findings
        );
    }

    #[test]
    fn a4_non_declaring_crates_are_out_of_scope() {
        let r = report_for(&[(
            "crates/loomlite/src/sched.rs",
            "
pub fn lock_inner(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> { m.lock().unwrap() }
pub fn run(m: &Mutex<Inner>) { lock_inner(m).poke(); }
pub struct Inner;
impl Inner {
    pub fn poke(&self) { let g = other.lock().unwrap(); drop(g); }
}
",
        )]);
        assert!(active_codes(&r).is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn sarif_is_structurally_valid() {
        let r = report_for(&[(
            "crates/core/src/solver.rs",
            "pub fn raw_shares(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
        )]);
        let sarif = render_sarif(&r);
        let j = crate::json::Json::parse(&sarif).expect("sarif parses");
        assert_eq!(
            j.get("version").and_then(crate::json::Json::str),
            Some("2.1.0")
        );
        let results = j
            .path(&["runs", "0", "results"])
            .and_then(crate::json::Json::arr);
        assert_eq!(results.map(<[_]>::len), Some(1));
        let rules = j
            .path(&["runs", "0", "tool", "driver", "rules"])
            .and_then(crate::json::Json::arr);
        assert_eq!(rules.map(<[_]>::len), Some(4));
    }

    #[test]
    fn json_report_parses_and_counts() {
        let r = report_for(&[(
            "crates/core/src/solver.rs",
            "pub fn raw_shares(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
        )]);
        let j = crate::json::Json::parse(&render_json(&r)).expect("json parses");
        assert_eq!(
            j.get("tool").and_then(crate::json::Json::str),
            Some("bwpart-analyze")
        );
        assert_eq!(
            j.path(&["counts", "active"])
                .and_then(crate::json::Json::num),
            Some(1.0)
        );
    }

    #[test]
    fn cache_round_trips() {
        let run = CachedRun {
            key: 0xdead_beef_cafe_f00d,
            failed: true,
            text: "text with\nnewlines: 7\n".to_string(),
            json: "{\"a\": 1}\n".to_string(),
            sarif: "{}\n".to_string(),
        };
        let parsed = CachedRun::from_bytes(&run.to_bytes()).expect("parses");
        assert_eq!(parsed, run);
        assert!(CachedRun::from_bytes("garbage").is_none());
    }

    #[test]
    fn cache_key_is_content_sensitive() {
        let a = vec![("crates/a/src/lib.rs".to_string(), "fn a() {}".to_string())];
        let mut b = a.clone();
        b[0].1.push(' ');
        assert_ne!(cache_key(&a), cache_key(&b));
        assert_eq!(cache_key(&a), cache_key(&a.clone()));
    }
}
